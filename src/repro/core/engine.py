"""The :class:`Disambiguator` facade — the path-expression completion
module of the paper's Figure 1.

Bundles a compiled schema artifact, the path algebra configuration
(partial order, E, caution sets, inheritance criterion), and optional
domain knowledge into one object with a single entry point,
:meth:`Disambiguator.complete`:

* complete input expressions are validated and passed through;
* simple incomplete expressions (``s ~ N``) run Algorithm 2 directly;
* general incomplete expressions (multiple ``~``, mixed connectors)
  are delegated to :mod:`repro.core.multi`.

Since the compile-once/query-many refactor the engine holds no private
per-schema state: ``Disambiguator(schema)`` compiles through the
memoized :func:`repro.core.compiled.compile_schema` registry, and
``Disambiguator(compiled_schema)`` shares an explicit artifact.  Every
successful completion is stored in the artifact's bounded LRU cache, so
any engine, session, Fox query, or experiment sharing the artifact
reuses it; :meth:`Disambiguator.complete_batch` runs a workload through
the cache and reports hit/miss counters.
"""

from __future__ import annotations

import concurrent.futures
import contextvars
import dataclasses

from repro.algebra.order import PartialOrder
from repro.core.ast import ConcretePath, PathExpression
from repro.core.audit import get_audit
from repro.core.closure import resolve_pruning
from repro.core.compiled import CompiledSchema, compile_schema
from repro.core.completion import CompletionResult
from repro.core.domain import DomainKnowledge
from repro.core.kernel import resolve_kernel
from repro.core.multi import complete_general
from repro.core.parser import parse_path_expression
from repro.core.procpool import process_batch, resolve_executor
from repro.core.stats import TraversalStats
from repro.core.target import ClassTarget, RelationshipTarget, Target
from repro.errors import (
    BudgetExceededError,
    NoCompletionError,
    PathExpressionError,
)
from repro.model.schema import Schema
from repro.obs.metrics import get_metrics
from repro.obs.slowlog import get_slowlog
from repro.obs.tracer import get_tracer
from repro.resilience.budget import Budget, BudgetMeter, TruncationReason, get_budget
from typing import TYPE_CHECKING
from collections.abc import Iterable

if TYPE_CHECKING:  # pragma: no cover - circular at runtime
    from repro.core.explain import Explanation

__all__ = ["BatchCompletionResult", "Disambiguator"]


@dataclasses.dataclass(frozen=True)
class BatchCompletionResult:
    """Results of one :meth:`Disambiguator.complete_batch` call.

    ``stats`` aggregates the per-result traversal counters (cached
    results contribute the counters recorded by the run that produced
    them — the hardware-independent cost is reported identically warm
    and cold) plus the batch's own ``cache_hits`` / ``cache_misses``
    and the artifact's one-off ``compile_seconds``.
    """

    results: tuple[CompletionResult, ...]
    stats: TraversalStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def expressions(self) -> list[list[str]]:
        """Per-input completions rendered as expression strings."""
        return [result.expressions for result in self.results]


class Disambiguator:
    """Completes incomplete path expressions over one schema.

    Parameters
    ----------
    schema:
        The schema to disambiguate against — either a plain
        :class:`~repro.model.schema.Schema` (compiled internally through
        the memoized registry) or a prebuilt
        :class:`~repro.core.compiled.CompiledSchema` to share.
    order:
        Better-than partial order; defaults to the paper's Figure 3
        reconstruction.  Must not be combined with a prebuilt artifact
        (the artifact already fixes the order).
    e:
        AGG* relaxation parameter (Section 4.4); E=1 reproduces plain
        AGG.
    domain_knowledge:
        Optional :class:`~repro.core.domain.DomainKnowledge`
        (Section 5.2).  Like ``order``, baked into the artifact.
    use_caution_sets, apply_inheritance_criterion:
        Ablation switches; both on by default as in the paper.  These
        are per-engine (part of every cache key), so engines with
        different ablation settings can share one artifact safely.
    budget:
        Optional default :class:`~repro.resilience.budget.Budget`
        governing every completion this engine runs (per-call
        ``complete(..., budget=...)`` overrides it; with neither, the
        ambient :func:`~repro.resilience.budget.get_budget` applies).
        Governed cache misses run the degradation ladder: a tripped
        E=k search is retried at k-1, ..., 1 (each rung re-armed, with
        ``budget.degrades`` counted), and only if E=1 still trips does
        the policy decide between raising
        :class:`~repro.errors.BudgetExceededError` and returning the
        flagged partial.  Non-exhausted results are never cached.
    pruning:
        Search-pruning mode for every completion this engine runs:
        ``"closure"`` (the default) enables the compile-time closure
        cut rules (reachability and label-bound pruning, see
        :mod:`repro.core.closure`); ``"none"`` runs the paper's
        Algorithm 2 verbatim.  Both modes return byte-identical ranked
        paths; the mode is part of every cache key.  ``None`` defers to
        the ``REPRO_PRUNING`` environment variable, then the default.
    kernel:
        Search-kernel implementation for every completion this engine
        runs: ``"interpreted"`` (the default) is the reference
        Algorithm 2 loop over node objects; ``"flat"`` is the
        specialized integer-indexed kernel (see
        :mod:`repro.core.kernel`) — byte-identical ranked paths,
        materially faster cold.  Part of every cache key.  ``None``
        defers to the ``REPRO_KERNEL`` environment variable, then the
        default.

    Examples
    --------
    >>> from repro.schemas.university import build_university_schema
    >>> engine = Disambiguator(build_university_schema())
    >>> result = engine.complete("ta ~ name")
    >>> len(result.paths)
    2
    """

    def __init__(
        self,
        schema: Schema | CompiledSchema,
        order: PartialOrder | None = None,
        e: int = 1,
        domain_knowledge: DomainKnowledge | None = None,
        use_caution_sets: bool = True,
        apply_inheritance_criterion: bool = True,
        max_depth: int | None = None,
        budget: Budget | None = None,
        pruning: str | None = None,
        kernel: str | None = None,
    ) -> None:
        if isinstance(schema, CompiledSchema):
            if order is not None and order is not schema.order:
                raise ValueError(
                    "order is fixed by the compiled schema; compile a new "
                    "artifact instead of overriding it"
                )
            if (
                domain_knowledge is not None
                and domain_knowledge != schema.domain_knowledge
            ):
                raise ValueError(
                    "domain knowledge is fixed by the compiled schema; "
                    "compile a new artifact instead of overriding it"
                )
            self.compiled = schema
        else:
            self.compiled = compile_schema(
                schema, order=order, domain_knowledge=domain_knowledge
            )
        self.schema = self.compiled.schema
        self.order = self.compiled.order
        self.domain_knowledge = self.compiled.domain_knowledge
        self.graph = self.compiled.graph
        self.e = e
        self.use_caution_sets = use_caution_sets
        self.apply_inheritance_criterion = apply_inheritance_criterion
        self.max_depth = max_depth
        self.budget = budget
        self.pruning = resolve_pruning(pruning)
        self.kernel = resolve_kernel(kernel)
        self._search = self.compiled.searcher(
            e=e,
            use_caution_sets=use_caution_sets,
            apply_inheritance_criterion=apply_inheritance_criterion,
            max_depth=max_depth,
            pruning=self.pruning,
            kernel=self.kernel,
        )

    # ------------------------------------------------------------------
    # Completion entry points
    # ------------------------------------------------------------------

    def complete(
        self,
        expression: str | PathExpression,
        budget: Budget | None = None,
    ) -> CompletionResult:
        """Complete an expression given as text or AST.

        Returns a :class:`~repro.core.completion.CompletionResult` whose
        ``paths`` are the optimal completions the user is asked to
        approve (paper Figure 1's loop).  For already-complete input the
        result contains exactly that path, validated against the schema.

        Successful exhaustive results are cached on the shared artifact
        keyed by the normalized expression text (plus E, ablation
        flags, order, and knowledge); failures and anytime partial or
        degraded results are never cached.

        ``budget`` overrides the engine's default budget for this call
        (see the class docstring for the governance and degradation
        semantics); warm cache hits are served regardless of budget —
        the cache only ever holds exhaustive results.
        """
        slowlog = get_slowlog()
        if not slowlog.enabled:
            return self._complete_impl(expression, budget)
        # Tail-based slow-query logging: the observation records the
        # span tree (installing a private tracer when none is ambient),
        # elapsed time, and budget outcome; nested observations (e.g.
        # inside a session ask) no-op so the outermost owns the query.
        with slowlog.observe(
            "complete", str(expression), e=self.e, pruning=self.pruning
        ) as obs:
            result = self._complete_impl(expression, budget)
            obs.record_result(result)
            return result

    def _complete_impl(
        self,
        expression: str | PathExpression,
        budget: Budget | None = None,
    ) -> CompletionResult:
        """:meth:`complete` minus the slow-log hook (fast/traced paths)."""
        tracer = get_tracer()
        if not tracer.enabled:
            # Untraced fast path.  This method is the warm-cache hot
            # loop (microseconds per call), where even no-op span
            # plumbing is measurable; the traced branch below is the
            # same logic with spans.  Budget resolution happens after
            # the cache lookup so the warm path stays untouched.
            if isinstance(expression, str):
                expression = parse_path_expression(expression)
            key = self._cache_key(str(expression))
            cached = self.compiled.cache.get(key)
            audit = get_audit()
            if audit.enabled:
                self._audit_cache(audit, str(expression), cached, key)
            if cached is not None:
                get_metrics().record_completion(cached.stats, cached=True)
                return cached
            result = self._complete_governed(expression, budget)
            if result.exhausted:
                self.compiled.cache.put(key, result)
            get_metrics().record_completion(result.stats, cached=False)
            return result
        with tracer.span(
            "complete", expression=str(expression), e=self.e
        ) as span:
            if isinstance(expression, str):
                with tracer.span("parse"):
                    expression = parse_path_expression(expression)
                span.set(expression=str(expression))
            key = self._cache_key(str(expression))
            with tracer.span("cache_lookup") as lookup:
                cached = self.compiled.cache.get(key)
                lookup.set(hit=cached is not None)
            audit = get_audit()
            if audit.enabled:
                self._audit_cache(audit, str(expression), cached, key)
            if cached is not None:
                span.set(cache="hit")
                get_metrics().record_completion(cached.stats, cached=True)
                return cached
            result = self._complete_governed(expression, budget)
            if result.exhausted:
                self.compiled.cache.put(key, result)
            else:
                span.set(truncated=result.truncation_reason)
            span.set(cache="miss", paths=len(result.paths))
            get_metrics().record_completion(result.stats, cached=False)
            return result

    def complete_batch(
        self,
        expressions: Iterable[str | PathExpression],
        jobs: int = 1,
        executor: str | None = None,
    ) -> BatchCompletionResult:
        """Complete a workload of expressions through the shared cache.

        The aggregated stats carry the batch's cache hit/miss counters
        and the artifact's compile time, so benchmarks can report
        warm-vs-cold behavior directly.

        ``jobs > 1`` runs the cache misses on a worker pool.  The
        ``executor`` knob picks the backend (``None`` defers to the
        ``REPRO_EXECUTOR`` environment variable, then ``"thread"``):

        ``"thread"``
            Workers are threads; each runs in a copy of the submitting
            thread's context, so an ambient budget
            (:func:`repro.resilience.budget.use_budget`) or
            metrics/tracer installation governs the workers exactly as
            it would the sequential loop.  Cold completions are
            GIL-bound pure-Python loops, so threads mostly interleave —
            this backend wins on warm caches and tiny schemas where
            pool start-up dominates.
        ``"process"``
            Cache misses are sharded across worker *processes* (see
            :mod:`repro.core.procpool` for the hand-off protocol), so
            cold batches scale with cores.  Warm hits are still served
            from the shared parent cache, each worker's exhausted
            results are adopted back into it, and truncated results
            are never adopted.  When ambient state cannot cross the
            pickle boundary (live tracer/audit/slow-log, a budget with
            a cancel signal or injected clock) the call silently falls
            back to the thread backend, preserving semantics.

        Either way results come back in input order regardless of
        completion order, and each expression is governed
        independently — one input tripping its budget flags (or raises
        for) that input alone; with ``partial_ok=False`` budgets the
        exception surfacing is deterministic: the earliest failing
        input in submission order wins.
        """
        executor = resolve_executor(executor)
        expressions = list(expressions)
        hits_before = self.compiled.cache.hits
        misses_before = self.compiled.cache.misses
        results: tuple[CompletionResult, ...] | None = None
        if executor == "process" and jobs > 1 and len(expressions) > 1:
            results = self._complete_batch_process(expressions, jobs)
        if results is not None:
            pass
        elif jobs <= 1 or len(expressions) <= 1:
            results = tuple(
                self.complete(expression) for expression in expressions
            )
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="repro-batch"
            ) as pool:
                futures = [
                    pool.submit(
                        contextvars.copy_context().run,
                        self.complete,
                        expression,
                    )
                    for expression in expressions
                ]
                results = tuple(future.result() for future in futures)
        stats = TraversalStats()
        for result in results:
            stats.add(result.stats)
        stats.cache_hits = self.compiled.cache.hits - hits_before
        stats.cache_misses = self.compiled.cache.misses - misses_before
        stats.compile_seconds = self.compiled.compile_seconds
        return BatchCompletionResult(results=results, stats=stats)

    def _complete_batch_process(
        self, expressions: list[str | PathExpression], jobs: int
    ) -> tuple[CompletionResult, ...] | None:
        """Run a batch on the process backend; ``None`` → thread fallback.

        The parent parses every input first (parse errors are cheap and
        :class:`~repro.errors.PathSyntaxError` is not picklable, so
        they never cross the boundary — they join the outcome list at
        their position and obey the same earliest-error policy), then
        ships only the parseable texts to
        :func:`repro.core.procpool.process_batch`.  On the way back it
        adopts every worker's exhausted cache entries *before* raising
        any error, so one failing input does not discard its siblings'
        completed work.
        """
        budget = self._effective_budget(None)
        outcomes: list[tuple | None] = [None] * len(expressions)
        slots: list[int] = []
        texts: list[str] = []
        for position, expression in enumerate(expressions):
            try:
                if isinstance(expression, str):
                    expression = parse_path_expression(expression)
            except PathExpressionError as err:
                outcomes[position] = ("err", err)
                continue
            slots.append(position)
            texts.append(str(expression))
        shipped = process_batch(self, texts, jobs, budget)
        if shipped is None:
            return None
        for position, outcome in zip(slots, shipped):
            outcomes[position] = outcome
        metrics = get_metrics()
        cache = self.compiled.cache
        error: Exception | None = None
        results: list[CompletionResult] = []
        for outcome in outcomes:
            assert outcome is not None
            kind = outcome[0]
            if kind == "err":
                if error is None:
                    error = outcome[1]
                continue
            result = outcome[1]
            if kind == "ok":
                for key, value in outcome[2]:
                    cache.put(key, value)
                metrics.record_completion(result.stats, cached=False)
            else:  # parent-cache warm hit
                metrics.record_completion(result.stats, cached=True)
            results.append(result)
        if error is not None:
            raise error
        return tuple(results)

    def complete_between(self, root: str, target_class: str) -> CompletionResult:
        """Class-to-class completion (the formalization's node target)."""
        tracer = get_tracer()
        with tracer.span(
            "complete", expression=f"class:{root}->{target_class}", e=self.e
        ) as span:
            key = self._cache_key(f"class:{root}->{target_class}")
            with tracer.span("cache_lookup") as lookup:
                cached = self.compiled.cache.get(key)
                lookup.set(hit=cached is not None)
            audit = get_audit()
            if audit.enabled:
                self._audit_cache(
                    audit, f"class:{root}->{target_class}", cached, key
                )
            if cached is not None:
                span.set(cache="hit")
                get_metrics().record_completion(cached.stats, cached=True)
                return cached
            result = self._search.run(root, ClassTarget(target_class))
            if result.exhausted:
                self.compiled.cache.put(key, result)
            else:
                span.set(truncated=result.truncation_reason)
            span.set(cache="miss", paths=len(result.paths))
            get_metrics().record_completion(result.stats, cached=False)
            return result

    def complete_to_target(self, root: str, target: Target) -> CompletionResult:
        """Completion with an explicit target specification.

        Arbitrary :class:`~repro.core.target.Target` objects have no
        stable content key, so this entry point bypasses the cache.
        """
        with get_tracer().span(
            "complete", expression=f"{root} ~ {target.describe()}", e=self.e
        ):
            result = self._search.run(root, target)
        get_metrics().record_completion(result.stats)
        return result

    def cache_info(self) -> dict[str, float]:
        """Counters of the shared completion cache (plus compile time)."""
        return self.compiled.cache_info()

    def explain(
        self, query_text: str, candidate_text: str
    ) -> "Explanation":
        """Why is ``candidate_text`` (not) an answer to ``query_text``?

        Convenience wrapper over
        :func:`repro.core.explain.explain_candidate` bound to this
        engine's graph, order, and E.
        """
        from repro.core.explain import explain_candidate

        return explain_candidate(
            self.graph,
            query_text,
            candidate_text,
            e=self.e,
            order=self.order,
        )

    def with_e(self, e: int) -> "Disambiguator":
        """A copy of this engine with a different E (for sweeps).

        The copy shares this engine's compiled artifact — E is part of
        every cache key, so the sweep points coexist in one cache.
        """
        return Disambiguator(
            self.compiled,
            e=e,
            use_caution_sets=self.use_caution_sets,
            apply_inheritance_criterion=self.apply_inheritance_criterion,
            max_depth=self.max_depth,
            pruning=self.pruning,
            kernel=self.kernel,
        )

    def evolved(self, delta, mode: str | None = None) -> "Disambiguator":
        """An engine over this schema edited by ``delta``.

        Thin wrapper over :meth:`CompiledSchema.evolve
        <repro.core.compiled.CompiledSchema.evolve>`: the evolved
        artifact keeps every compiled piece the delta cannot affect
        (and, incrementally, the surviving completion-cache entries);
        the returned engine carries this one's E, ablation flags, depth
        bound, budget, and pruning mode.  This engine and its schema
        are untouched — sessions re-point to the returned engine.
        """
        return Disambiguator(
            self.compiled.evolve(delta, mode=mode),
            e=self.e,
            use_caution_sets=self.use_caution_sets,
            apply_inheritance_criterion=self.apply_inheritance_criterion,
            max_depth=self.max_depth,
            budget=self.budget,
            pruning=self.pruning,
            kernel=self.kernel,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _audit_cache(self, audit, query: str, cached, key: tuple) -> None:
        """One ``cache`` audit record with lineage provenance."""
        audit.record(
            "cache",
            scope="complete",
            query=query,
            outcome="hit" if cached is not None else "miss",
            fingerprint=self.compiled.fingerprint[:12],
            lineage_depth=len(self.compiled.lineage),
            provenance=(
                self.compiled.cache.provenance(key)
                if cached is not None
                else None
            ),
        )

    def _cache_key(self, text: str) -> tuple:
        return self.compiled.cache_key(
            text,
            self.e,
            self.use_caution_sets,
            self.apply_inheritance_criterion,
            self.max_depth,
            self.pruning,
            self.kernel,
        )

    def _effective_budget(self, budget: Budget | None) -> Budget | None:
        """Per-call override, else engine default, else ambient."""
        if budget is not None:
            return budget
        if self.budget is not None:
            return self.budget
        return get_budget()

    def _complete_governed(
        self, expression: PathExpression, budget: Budget | None
    ) -> CompletionResult:
        """Run one uncached completion under the effective budget.

        Ungoverned calls go straight to :meth:`_complete_uncached`.
        Governed calls walk the degradation ladder: every rung gets a
        freshly armed meter (the deadline restarts — the ladder trades
        total latency for the chance of *an* exhaustive answer), and a
        rung that finishes below the requested E returns its result
        flagged ``exhausted=False`` with reason ``degraded:e=k``.  If
        the E=1 rung still trips, ``partial_ok`` decides between
        returning the flagged best-so-far and raising
        :class:`~repro.errors.BudgetExceededError` around it.
        """
        budget = self._effective_budget(budget)
        if budget is None or budget.is_unlimited:
            return self._complete_uncached(expression)
        armed = budget.allowing_partial()
        metrics = get_metrics()
        tracer = get_tracer()
        e = self.e
        while True:
            result = self._complete_uncached(
                expression, e=e, meter=armed.start()
            )
            if result.exhausted:
                if e != self.e:
                    result = dataclasses.replace(
                        result,
                        exhausted=False,
                        truncation_reason=TruncationReason.degraded(e),
                    )
                return result
            if e > 1:
                # Rung down: a lower E prunes harder, so the same
                # budget may suffice for an exhaustive (if relaxed)
                # answer.
                with tracer.span(
                    "degrade",
                    expression=str(expression),
                    from_e=e,
                    to_e=e - 1,
                    reason=result.truncation_reason,
                ):
                    e -= 1
                    metrics.counter("budget.degrades").inc()
                continue
            if budget.partial_ok:
                return result
            raise BudgetExceededError(
                result.truncation_reason or TruncationReason.DEADLINE,
                partial=result,
            )

    def _complete_uncached(
        self,
        expression: PathExpression,
        e: int | None = None,
        meter: BudgetMeter | None = None,
    ) -> CompletionResult:
        """One completion straight through the search (no result cache).

        ``e`` overrides the engine's relaxation for one call (ladder
        rungs); ``meter`` is a shared armed budget meter — per the
        :meth:`CompletionSearch.run` contract it must come from an
        ``allowing_partial()`` budget, so trips surface as flags here.
        """
        e = self.e if e is None else e
        if expression.is_complete:
            return self._validate_complete(expression)
        if expression.is_simple_incomplete:
            search = (
                self._search
                if e == self.e
                else self.compiled.searcher(
                    e=e,
                    use_caution_sets=self.use_caution_sets,
                    apply_inheritance_criterion=self.apply_inheritance_criterion,
                    max_depth=self.max_depth,
                    pruning=self.pruning,
                    kernel=self.kernel,
                )
            )
            return search.run(
                expression.root,
                RelationshipTarget(expression.last_name),
                meter=meter,
            )
        general = complete_general(
            self.compiled,
            expression,
            e=e,
            use_caution_sets=self.use_caution_sets,
            apply_inheritance_criterion=self.apply_inheritance_criterion,
            meter=meter,
            pruning=self.pruning,
            kernel=self.kernel,
        )
        return CompletionResult(
            root=expression.root,
            target_description=f"pattern {expression}",
            paths=general.paths,
            labels=tuple(
                {path.label().key: path.label() for path in general.paths}.values()
            ),
            stats=general.stats,
            exhausted=general.exhausted,
            truncation_reason=general.truncation_reason,
        )

    def _validate_complete(
        self, expression: PathExpression
    ) -> CompletionResult:
        """Resolve a complete expression's steps to schema edges."""
        path = ConcretePath.start(expression.root)
        for step in expression.steps:
            anchor = path.target_class
            if not self.schema.has_relationship(anchor, step.name):
                raise NoCompletionError(
                    f"class {anchor!r} has no relationship {step.name!r} "
                    f"(in {expression})"
                )
            edge = next(
                (
                    candidate
                    for candidate in self.graph.edges_from(anchor)
                    if candidate.name == step.name
                ),
                None,
            )
            if edge is None:
                raise NoCompletionError(
                    f"relationship {anchor}.{step.name} is excluded by "
                    "domain knowledge"
                )
            if edge.connector is not step.connector:
                raise NoCompletionError(
                    f"step {step} uses connector {step.symbol!r} but "
                    f"{anchor}.{step.name} is a {edge.kind.name} "
                    "relationship"
                )
            path = path.extend(edge)
        label = path.label()
        return CompletionResult(
            root=expression.root,
            target_description="(already complete)",
            paths=(path,),
            labels=(label,),
            stats=TraversalStats(),
        )

    def __repr__(self) -> str:
        return (
            f"Disambiguator(schema={self.schema.name!r}, "
            f"order={self.order.name!r}, e={self.e}, "
            f"domain_knowledge={'yes' if not self.domain_knowledge.is_empty else 'no'})"
        )
