"""The compile-once / query-many layer.

The disambiguator is an optimal-path computation over a *fixed* schema
graph, yet the original seed had every :class:`Disambiguator`, Fox-query
evaluator, and experiment harness privately re-derive the same
per-schema structures (adjacency lists, partial-order closure, caution
sets) and re-run identical completions.  Following the precompiled
automaton/grammar designs of the best-path and context-free path-query
literature, this module splits the pipeline into

* **compile** — :class:`CompiledSchema`: one immutable artifact per
  ``(schema content, partial order, domain knowledge)`` holding the
  schema's content fingerprint, the frozen
  :class:`~repro.model.graph.SchemaGraph` adjacency, the shared
  :class:`~repro.algebra.caution.CautionSets`, memoized
  :class:`~repro.core.completion.CompletionSearch` instances, and a
  bounded LRU completion cache; and
* **query** — every engine, session, and experiment shares the artifact
  and consults the cache before traversing.

Cache entries are keyed by the full tuple
``(schema fingerprint, normalized expression text, order content key,
E, ablation flags, max depth, domain-knowledge key)`` so results can
never leak across schema mutations, order variants, E sweeps, ablation
settings, or knowledge declarations.

Compiles themselves are memoized: :func:`compile_schema` keeps a
module-level registry keyed by the same content triple, so
``Disambiguator(schema)`` constructed twice over an unchanged schema
reuses one artifact (and therefore one warm cache).  Mutating a schema
changes its fingerprint, which both misses the registry (a fresh
compile) and invalidates every old cache entry (stale artifacts are
also evicted eagerly on lookup).  :func:`invalidate` clears the
registry explicitly.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable

from repro.algebra.caution import CautionSets
from repro.algebra.order import DEFAULT_ORDER, PartialOrder
from repro.core.closure import SchemaClosure, resolve_pruning
from repro.core.completion import CompletionResult, CompletionSearch
from repro.core.domain import DomainKnowledge
from repro.core.target import RelationshipTarget
from repro.errors import EvaluationError
from repro.model.graph import SchemaGraph
from repro.model.schema import Schema
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.budget import Budget, BudgetMeter

__all__ = [
    "CompiledSchema",
    "CompletionCache",
    "compile_schema",
    "domain_knowledge_key",
    "invalidate",
    "registry_size",
]

#: Default bound on the number of cached completion results per artifact.
DEFAULT_CACHE_SIZE = 1024


def domain_knowledge_key(knowledge: DomainKnowledge) -> str:
    """A stable digest of a domain-knowledge declaration's content."""
    hasher = hashlib.sha256()
    for name in sorted(knowledge.excluded_classes):
        hasher.update(f"XC|{name}\n".encode())
    for source, rel_name in sorted(knowledge.excluded_relationships):
        hasher.update(f"XR|{source}|{rel_name}\n".encode())
    for name, penalty in sorted(knowledge.class_penalties):
        hasher.update(f"P|{name}|{penalty}\n".encode())
    return hasher.hexdigest()


class CompletionCache:
    """A bounded, thread-safe LRU cache of completion results.

    Values are the frozen :class:`CompletionResult` objects themselves —
    a warm lookup hands back the very object the cold run produced,
    which is what guarantees byte-identical ranked paths.  ``hits`` and
    ``misses`` are cumulative counters the batch entry points snapshot
    to report warm-vs-cold behavior.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[tuple, CompletionResult] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: tuple) -> CompletionResult | None:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: tuple, value: CompletionResult) -> None:
        # The resilience hard invariant: anytime partial results (budget
        # truncations, degraded-E answers) must never be served warm —
        # a later un-governed query would silently inherit the
        # truncation.  Callers check ``exhausted`` first; this raise is
        # the backstop the chaos suite leans on.
        if not getattr(value, "exhausted", True):
            raise ValueError(
                "refusing to cache a partial completion result "
                f"(truncation_reason={value.truncation_reason!r})"
            )
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def info(self) -> dict[str, int]:
        """Counter snapshot for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }

    def __repr__(self) -> str:
        return (
            f"CompletionCache(size={len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class CompiledSchema:
    """One immutable compilation artifact for a schema.

    Construct directly for an unshared artifact (benchmarks measuring
    true cold cost do this); everyday code should go through
    :func:`compile_schema`, which memoizes by content.

    Parameters
    ----------
    schema:
        The schema to compile.  The artifact snapshots its content; the
        stored :attr:`fingerprint` is the mutation detector.
    order:
        Better-than partial order; defaults to the paper's Figure 3
        reconstruction.
    domain_knowledge:
        Optional Section 5.2 knowledge; its exclusions are baked into
        the frozen traversal graph.
    cache_size:
        Bound of the completion LRU cache.
    """

    def __init__(
        self,
        schema: Schema,
        order: PartialOrder | None = None,
        domain_knowledge: DomainKnowledge | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        started = time.perf_counter()
        with get_tracer().span("compile", schema=schema.name) as span:
            self.schema = schema
            self.order = order if order is not None else DEFAULT_ORDER
            self.domain_knowledge = (
                domain_knowledge
                if domain_knowledge is not None
                else DomainKnowledge.none()
            )
            problems = self.domain_knowledge.validate_against(schema)
            if problems:
                raise EvaluationError(
                    "domain knowledge does not match schema: "
                    + "; ".join(problems)
                )
            self.fingerprint = schema.fingerprint()
            self.order_key = self.order.content_key()
            self.knowledge_key = domain_knowledge_key(self.domain_knowledge)
            self.graph = self.domain_knowledge.restrict(SchemaGraph(schema))
            self.caution_sets = CautionSets(self.order)
            # The Carré label closure (all-pairs reachability + label
            # lower bounds) shared by every search over this artifact.
            # Construction is cheap: the reachability matrix and the
            # per-target tables are built lazily on first use, so
            # compile_seconds stays dominated by the caution-set
            # brute force.
            self.closure = SchemaClosure.for_graph(self.graph)
            self.cache = CompletionCache(cache_size)
            self._searches: dict[tuple, CompletionSearch] = {}
            self._lock = threading.Lock()
            self.compile_seconds = time.perf_counter() - started
            span.set(
                fingerprint=self.fingerprint[:16],
                order=self.order.name,
                seconds=self.compile_seconds,
            )
        get_metrics().record_compile(self.compile_seconds)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def key(self) -> tuple[str, str, str]:
        """The registry identity: (fingerprint, order key, knowledge key)."""
        return (self.fingerprint, self.order_key, self.knowledge_key)

    def is_stale(self) -> bool:
        """True when the underlying schema mutated after compilation."""
        return self.schema.fingerprint() != self.fingerprint

    # ------------------------------------------------------------------
    # Shared search instances and the completion cache
    # ------------------------------------------------------------------

    def searcher(
        self,
        e: int = 1,
        use_caution_sets: bool = True,
        apply_inheritance_criterion: bool = True,
        max_depth: int | None = None,
        pruning: str | None = None,
    ) -> CompletionSearch:
        """The shared Algorithm 2 instance for one (E, flags) setting."""
        pruning = resolve_pruning(pruning)
        key = (
            e,
            use_caution_sets,
            apply_inheritance_criterion,
            max_depth,
            pruning,
        )
        with self._lock:
            search = self._searches.get(key)
            if search is None:
                search = CompletionSearch(
                    self.graph,
                    order=self.order,
                    e=e,
                    use_caution_sets=use_caution_sets,
                    apply_inheritance_criterion=apply_inheritance_criterion,
                    max_depth=max_depth,
                    caution_sets=self.caution_sets,
                    pruning=pruning,
                    closure=self.closure if pruning == "closure" else None,
                )
                self._searches[key] = search
            return search

    def cache_key(
        self,
        text: str,
        e: int,
        use_caution_sets: bool,
        apply_inheritance_criterion: bool,
        max_depth: int | None,
        pruning: str | None = None,
    ) -> tuple:
        """The full cache key for one normalized expression text.

        ``text`` must be the *normalized* rendering (``str()`` of the
        parsed expression, or the ``"class:"``-prefixed form for
        class-target completions) so spelling variants of one
        expression share an entry.

        The pruning mode is part of the key even though the closure cut
        rules are answer-preserving: A/B comparisons (equivalence tests,
        benchmarks) must never have one mode served warm from the
        other's cold run.
        """
        return (
            self.fingerprint,
            text,
            self.order_key,
            e,
            use_caution_sets,
            apply_inheritance_criterion,
            max_depth,
            self.knowledge_key,
            resolve_pruning(pruning),
        )

    def complete_simple(
        self,
        root: str,
        relationship_name: str,
        e: int = 1,
        use_caution_sets: bool = True,
        apply_inheritance_criterion: bool = True,
        max_depth: int | None = None,
        budget: "Budget | None" = None,
        meter: "BudgetMeter | None" = None,
        pruning: str | None = None,
    ) -> CompletionResult:
        """Cached single-gap completion ``root ~ relationship_name``.

        This is both the engine's fast path for the paper's focus form
        and the sub-completion entry :mod:`repro.core.multi` uses for
        each ``~`` segment of a general expression — so tilde segments
        shared across different queries hit the same cache entries.

        ``budget``/``meter`` govern a cache *miss* exactly as in
        :meth:`~repro.core.completion.CompletionSearch.run`; only
        exhausted results enter the cache, so a budget can shrink what
        gets cached but never poison it.  A warm hit is returned as-is
        (cached results are exhaustive by invariant).
        """
        text = f"{root}~{relationship_name}"
        key = self.cache_key(
            text,
            e,
            use_caution_sets,
            apply_inheritance_criterion,
            max_depth,
            pruning,
        )
        with get_tracer().span("cache_lookup", expression=text) as lookup:
            cached = self.cache.get(key)
            lookup.set(hit=cached is not None)
        if cached is not None:
            get_metrics().record_cache(hit=True)
            return cached
        result = self.searcher(
            e=e,
            use_caution_sets=use_caution_sets,
            apply_inheritance_criterion=apply_inheritance_criterion,
            max_depth=max_depth,
            pruning=pruning,
        ).run(root, RelationshipTarget(relationship_name), budget=budget, meter=meter)
        if result.exhausted:
            self.cache.put(key, result)
        get_metrics().record_cache(hit=False)
        return result

    def cache_info(self) -> dict[str, float]:
        """Cache counters plus the one-off compile cost."""
        return self.cache.info() | {"compile_seconds": self.compile_seconds}

    def __repr__(self) -> str:
        return (
            f"CompiledSchema(schema={self.schema.name!r}, "
            f"fingerprint={self.fingerprint[:12]}..., "
            f"order={self.order.name!r}, cache={self.cache!r})"
        )


# ----------------------------------------------------------------------
# The module-level compile registry
# ----------------------------------------------------------------------

_REGISTRY: dict[tuple[str, str, str], CompiledSchema] = {}
_REGISTRY_LOCK = threading.Lock()


def compile_schema(
    schema: Schema | CompiledSchema,
    order: PartialOrder | None = None,
    domain_knowledge: DomainKnowledge | None = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> CompiledSchema:
    """Compile a schema, reusing a content-equal artifact if one exists.

    Passing an existing :class:`CompiledSchema` returns it unchanged
    (so call sites can accept either form).  The registry key is the
    content triple, so two different-but-equal schema objects share one
    artifact and therefore one warm cache; a registered artifact whose
    schema has since mutated is evicted and recompiled from the schema
    handed in.
    """
    if isinstance(schema, CompiledSchema):
        return schema
    order = order if order is not None else DEFAULT_ORDER
    knowledge = (
        domain_knowledge
        if domain_knowledge is not None
        else DomainKnowledge.none()
    )
    key = (
        schema.fingerprint(),
        order.content_key(),
        domain_knowledge_key(knowledge),
    )
    with _REGISTRY_LOCK:
        compiled = _REGISTRY.get(key)
        if compiled is not None and not compiled.is_stale():
            return compiled
    # Compile outside the lock (brute-forcing caution sets and freezing
    # adjacency can take a while on large schemas); last writer wins.
    compiled = CompiledSchema(
        schema,
        order=order,
        domain_knowledge=knowledge,
        cache_size=cache_size,
    )
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(key)
        if existing is not None and not existing.is_stale():
            return existing  # a concurrent compile won the race
        _REGISTRY[key] = compiled
        return compiled


def invalidate(schema: Schema | None = None) -> int:
    """Drop registry entries; returns how many were removed.

    With a schema, only artifacts compiled from content equal to its
    *current* content are dropped; without one, the whole registry is
    cleared.
    """
    with _REGISTRY_LOCK:
        if schema is None:
            removed = len(_REGISTRY)
            _REGISTRY.clear()
            return removed
        fingerprint = schema.fingerprint()
        stale = [key for key in _REGISTRY if key[0] == fingerprint]
        for key in stale:
            del _REGISTRY[key]
        return len(stale)


def registry_size() -> int:
    """Number of live registry entries (for tests and diagnostics)."""
    return len(_REGISTRY)


def registered_artifacts() -> Iterable[CompiledSchema]:
    """Snapshot of the registered artifacts (for diagnostics)."""
    with _REGISTRY_LOCK:
        return list(_REGISTRY.values())
