"""Path-expression evaluation over an instance database (paper Fig. 1).

A complete path expression, when evaluated, returns all objects (or
primitive values) reachable from each object in the path-expression
root.  Step semantics per relationship kind:

* ``@>`` (Isa): identity — every instance of the subclass *is* an
  instance of the superclass;
* ``<@`` (May-Be): filter — keep the objects that are also instances of
  the subclass;
* ``$>``, ``<$``, ``.``: follow the stored relationship links;
* a final association into a primitive class yields attribute values.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.ast import ConcretePath, PathExpression
from repro.core.parser import parse_path_expression
from repro.errors import EvaluationError
from repro.model.graph import SchemaGraph
from repro.model.instances import Database, DBObject
from repro.model.kinds import RelationshipKind

__all__ = ["evaluate", "evaluate_from"]


def _resolve_to_concrete(
    database: Database, expression: PathExpression
) -> ConcretePath:
    """Bind a complete expression's steps to schema edges."""
    if expression.is_incomplete:
        raise EvaluationError(
            f"cannot evaluate incomplete expression {expression}; "
            "complete it first with repro.core.Disambiguator"
        )
    graph = SchemaGraph(database.schema)
    path = ConcretePath.start(expression.root)
    for step in expression.steps:
        anchor = path.target_class
        edge = next(
            (e for e in graph.edges_from(anchor) if e.name == step.name),
            None,
        )
        if edge is None:
            raise EvaluationError(
                f"class {anchor!r} has no relationship {step.name!r}"
            )
        if edge.connector is not step.connector:
            raise EvaluationError(
                f"step {step} disagrees with schema kind "
                f"{edge.kind.symbol} for {anchor}.{step.name}"
            )
        path = path.extend(edge)
    return path


def evaluate(
    database: Database, expression: str | PathExpression | ConcretePath
) -> set[DBObject] | set[object]:
    """Evaluate a complete path expression over the root class extent.

    Returns a set of :class:`~repro.model.instances.DBObject` — or a set
    of primitive values when the last step is an attribute.
    """
    path = _as_concrete(database, expression)
    return evaluate_from(database, path, database.extent(path.root))


def evaluate_from(
    database: Database,
    expression: str | PathExpression | ConcretePath,
    roots: Iterable[DBObject],
) -> set[DBObject] | set[object]:
    """Evaluate starting from an explicit set of root objects."""
    path = _as_concrete(database, expression)
    current: set[DBObject] = set(roots)
    for index, edge in enumerate(path.edges):
        is_last = index == len(path.edges) - 1
        target_primitive = database.schema.get_class(edge.target).primitive
        if target_primitive:
            if not is_last:
                raise EvaluationError(
                    f"attribute step {edge.name!r} must be last in {path}"
                )
            return database.attribute_values(current, edge.name)
        if edge.kind is RelationshipKind.ISA:
            # Inclusion: the same objects, now viewed as the superclass.
            continue
        if edge.kind is RelationshipKind.MAY_BE:
            current = {
                obj
                for obj in current
                if database.is_instance(obj, edge.target)
            }
            continue
        next_objects: set[DBObject] = set()
        for obj in current:
            next_objects |= database.linked(obj, edge.name)
        current = next_objects
        if not current:
            break
    return current


def _as_concrete(
    database: Database, expression: str | PathExpression | ConcretePath
) -> ConcretePath:
    if isinstance(expression, ConcretePath):
        return expression
    if isinstance(expression, str):
        expression = parse_path_expression(expression)
    return _resolve_to_concrete(database, expression)
