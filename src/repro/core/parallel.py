"""Thread-pool helpers for fanning a completion workload out.

:meth:`Disambiguator.complete_batch` is the strict entry point — input
order, one result per input, exceptions propagated.  This module holds
the forgiving variant the query evaluators and experiment harness use:
:func:`prewarm` runs a set of expressions through an engine purely to
fill the artifact's shared completion cache, swallowing per-expression
:class:`~repro.errors.ReproError` so the failure surfaces later at the
point of use, exactly where the sequential code would have raised it.

Threads (not processes) are the right pool here: a completion is pure
Python over shared immutable structures, the artifact cache is
thread-safe, and the closure-pruned cold searches are short enough that
process spawn plus schema pickling would dominate.  See the ROADMAP
open item on process-pool escalation for when that trade-off flips.
"""

from __future__ import annotations

import concurrent.futures
import contextvars
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - circular at runtime
    from repro.core.ast import PathExpression
    from repro.core.engine import Disambiguator

__all__ = ["prewarm"]


def prewarm(
    engine: "Disambiguator",
    expressions: Iterable["str | PathExpression"],
    jobs: int,
) -> int:
    """Complete ``expressions`` concurrently to warm the shared cache.

    Returns the number of expressions that completed (exhaustively or
    not); expressions raising a :class:`~repro.errors.ReproError` are
    skipped — a caller's own sequential pass will hit the same error at
    its usual place with its usual handling (retries, per-query error
    records, ...).  Duplicate expressions are submitted once.  Each
    worker runs in a copy of the calling thread's context, so ambient
    budgets, metrics, and tracers govern the warming runs too.

    With ``jobs <= 1`` this is a no-op returning 0: the sequential pass
    is about to do the same work anyway, so there is nothing to overlap.
    """
    if jobs <= 1:
        return 0
    unique = list(dict.fromkeys(expressions))
    if not unique:
        return 0

    def complete_one(expression) -> bool:
        try:
            engine.complete(expression)
        except ReproError:
            return False
        return True

    with concurrent.futures.ThreadPoolExecutor(
        max_workers=jobs, thread_name_prefix="repro-prewarm"
    ) as pool:
        futures = [
            pool.submit(
                contextvars.copy_context().run, complete_one, expression
            )
            for expression in unique
        ]
        return sum(future.result() for future in futures)
