"""A small mechanical part-whole schema.

Exercises the Has-Part/Is-Part-Of side of the algebra; the paper's
Section 3.3.1 sharing examples come from exactly this domain::

    engine Has-Part screw,  screw Is-Part-Of chassis
        => engine Shares-SubParts-With chassis
    motor Is-Part-Of assembly,  assembly Has-Part shaft
        => motor Shares-SuperParts-With shaft

Used by the algebra integration tests and the worked-examples bench.
"""

from __future__ import annotations

from repro.model.builder import SchemaBuilder
from repro.model.schema import Schema

__all__ = ["build_parts_schema"]


def build_parts_schema() -> Schema:
    """Build the vehicle part-whole schema (fresh instance per call)."""
    builder = SchemaBuilder("parts")

    builder.cls("vehicle").attr("model").attr("weight", "R")
    builder.cls("vehicle").has_part("engine", inverse_name="vehicle")
    builder.cls("vehicle").has_part("chassis", inverse_name="vehicle")

    builder.cls("engine").attr("displacement", "R")
    builder.cls("engine").has_part("screw", inverse_name="engine")
    builder.cls("engine").has_part("motor", inverse_name="engine")
    builder.cls("chassis").has_part("screw", inverse_name="chassis")

    builder.cls("assembly").attr("serial")
    builder.cls("motor").part_of("assembly", inverse_name="motor")
    builder.cls("assembly").has_part("shaft", inverse_name="assembly")

    builder.cls("screw").attr("gauge", "I")
    builder.cls("shaft").attr("length", "R")

    # A supplier association crossing the part hierarchy.
    builder.cls("supplier").attr("name")
    builder.cls("supplier").assoc("screw", name="supplies", inverse_name="supplier")
    builder.cls("supplier").assoc("shaft", name="ships", inverse_name="supplier")

    return builder.build()
