"""The connector alphabet Sigma of the path algebra (paper Section 3.3.1).

Primary connectors label single schema edges:

=========  =======================================
``@>``     Isa
``<@``     May-Be
``$>``     Has-Part
``<$``     Is-Part-Of
``.``      Is-Associated-With
=========  =======================================

Composing primary connectors with ``CON_c`` escapes this set, so the
paper introduces *secondary* connectors for the indirect relationships
that arise:

=========  =======================================
``.SB``    Shares-SubParts-With
``.SP``    Shares-SuperParts-With
``..``     Is-Indirectly-Associated-With
=========  =======================================

Finally, every connector except Isa and May-Be has a *Possibly* version,
written with a trailing ``*`` (the paper uses a star glyph): once any
composition step involves a May-Be, the relationship only *possibly*
holds.  The closed alphabet Sigma therefore has 14 members.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.errors import UnknownConnectorError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (model imports us)
    from repro.model.kinds import RelationshipKind

__all__ = [
    "Connector",
    "PRIMARY_CONNECTORS",
    "SECONDARY_CONNECTORS",
    "ALL_CONNECTORS",
    "connector_for_kind",
    "parse_connector",
]


class Connector(enum.Enum):
    """A member of the closed connector alphabet Sigma."""

    # -- primary (label single schema edges) ---------------------------
    ISA = "@>"
    MAY_BE = "<@"
    HAS_PART = "$>"
    IS_PART_OF = "<$"
    ASSOC = "."
    # -- secondary (arise from composition) ----------------------------
    SHARES_SUBPARTS = ".SB"
    SHARES_SUPERPARTS = ".SP"
    INDIRECT_ASSOC = ".."
    # -- Possibly versions ----------------------------------------------
    POSSIBLY_HAS_PART = "$>*"
    POSSIBLY_IS_PART_OF = "<$*"
    POSSIBLY_ASSOC = ".*"
    POSSIBLY_SHARES_SUBPARTS = ".SB*"
    POSSIBLY_SHARES_SUPERPARTS = ".SP*"
    POSSIBLY_INDIRECT_ASSOC = "..*"

    # ------------------------------------------------------------------
    # Classification.
    #
    # These are *plain attributes*, precomputed once at import time (see
    # ``_finalize_members`` below) because they sit on the completion
    # algorithm's innermost loop where property-call overhead dominates:
    #
    # ``symbol``        textual symbol (paper notation, ``*`` = star)
    # ``is_possibly``   True for the Possibly variants
    # ``is_primary``    True for the five edge-labeling connectors
    # ``is_taxonomic``  True for Isa / May-Be (semantic length 0)
    # ``base``          the plain (non-Possibly) version
    # ``inverse_base``  base connector of the inverse relationship
    # ``strength_rank`` cognitive strength of the base (0 strongest):
    #                   taxonomic < part-whole < association < sharing
    #                   < indirect association (see DESIGN.md Section 4)
    # ``sort_rank``     ``2*strength + possibly``: deterministic total
    #                   sorting key (NOT the better-than partial order)
    # ------------------------------------------------------------------

    index: int
    symbol: str
    is_possibly: bool
    is_primary: bool
    is_taxonomic: bool
    base: "Connector"
    inverse_base: "Connector"
    strength_rank: int
    sort_rank: int

    @property
    def possibly(self) -> "Connector":
        """The Possibly version of this connector.

        Isa and May-Be have no Possibly version (paper Section 3.3.1);
        requesting one raises :class:`ValueError`.
        """
        if self.is_possibly:
            return self
        if self.is_taxonomic:
            raise ValueError(f"{self.symbol} has no Possibly version")
        return _POSSIBLY_OF[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Connector({self.value!r})"

    def __str__(self) -> str:
        return self.value


#: The five primary connectors, in the paper's Sigma' order.
PRIMARY_CONNECTORS = (
    Connector.ISA,
    Connector.MAY_BE,
    Connector.HAS_PART,
    Connector.IS_PART_OF,
    Connector.ASSOC,
)

#: The secondary connectors Sigma'' (including the Possibly variants).
SECONDARY_CONNECTORS = tuple(
    c for c in Connector if c not in PRIMARY_CONNECTORS
)

#: The full closed alphabet Sigma (14 connectors).
ALL_CONNECTORS = tuple(Connector)

_POSSIBLY_OF = {
    Connector.HAS_PART: Connector.POSSIBLY_HAS_PART,
    Connector.IS_PART_OF: Connector.POSSIBLY_IS_PART_OF,
    Connector.ASSOC: Connector.POSSIBLY_ASSOC,
    Connector.SHARES_SUBPARTS: Connector.POSSIBLY_SHARES_SUBPARTS,
    Connector.SHARES_SUPERPARTS: Connector.POSSIBLY_SHARES_SUPERPARTS,
    Connector.INDIRECT_ASSOC: Connector.POSSIBLY_INDIRECT_ASSOC,
}

_BASE_OF = {possibly: base for base, possibly in _POSSIBLY_OF.items()}

_INVERSE_BASE = {
    Connector.ISA: Connector.MAY_BE,
    Connector.MAY_BE: Connector.ISA,
    Connector.HAS_PART: Connector.IS_PART_OF,
    Connector.IS_PART_OF: Connector.HAS_PART,
    Connector.ASSOC: Connector.ASSOC,
    Connector.SHARES_SUBPARTS: Connector.SHARES_SUPERPARTS,
    Connector.SHARES_SUPERPARTS: Connector.SHARES_SUBPARTS,
    Connector.INDIRECT_ASSOC: Connector.INDIRECT_ASSOC,
}

_RANK = {
    Connector.ISA: 0,
    Connector.MAY_BE: 0,
    Connector.HAS_PART: 1,
    Connector.IS_PART_OF: 1,
    Connector.ASSOC: 2,
    Connector.SHARES_SUBPARTS: 3,
    Connector.SHARES_SUPERPARTS: 3,
    Connector.INDIRECT_ASSOC: 4,
}

def _finalize_members() -> None:
    """Precompute the hot-path attributes on every member (import time)."""
    taxonomic = (Connector.ISA, Connector.MAY_BE)
    for position, connector in enumerate(Connector):
        connector.index = position  # stable small-int id for bitmask use
        connector.symbol = connector.value
        connector.is_possibly = connector.value.endswith("*")
        connector.is_primary = connector in PRIMARY_CONNECTORS
        connector.is_taxonomic = connector in taxonomic
        connector.base = _BASE_OF.get(connector, connector)
    for connector in Connector:
        connector.inverse_base = _INVERSE_BASE[connector.base]
        connector.strength_rank = _RANK[connector.base]
        connector.sort_rank = 2 * connector.strength_rank + (
            1 if connector.is_possibly else 0
        )


_finalize_members()

# Keyed by RelationshipKind.name to avoid importing repro.model here
# (repro.model.graph imports this module; a value-level import would be
# circular).  The two enums share their member names by construction.
_KIND_NAME_TO_CONNECTOR = {
    "ISA": Connector.ISA,
    "MAY_BE": Connector.MAY_BE,
    "HAS_PART": Connector.HAS_PART,
    "IS_PART_OF": Connector.IS_PART_OF,
    "IS_ASSOCIATED_WITH": Connector.ASSOC,
}

_BY_SYMBOL = {c.value: c for c in Connector}


def connector_for_kind(kind: "RelationshipKind") -> Connector:
    """The primary connector labeling edges of the given kind."""
    return _KIND_NAME_TO_CONNECTOR[kind.name]


def parse_connector(symbol: str) -> Connector:
    """Parse a connector symbol, raising on unknown input."""
    try:
        return _BY_SYMBOL[symbol]
    except KeyError:
        raise UnknownConnectorError(symbol) from None
