"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.model.instances import Database
from repro.model.persistence import save_database
from repro.model.serialization import save_schema
from repro.schemas.university import build_university_schema


class TestComplete:
    def test_builtin_university(self, capsys):
        code = main(["complete", "--builtin", "university", "ta ~ name"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ta@>grad@>student@>person.name" in out
        assert "2 completion(s)" in out

    def test_verbose(self, capsys):
        main(["complete", "--builtin", "university", "--verbose", "ta ~ name"])
        assert "semantic length" in capsys.readouterr().out

    def test_e_parameter(self, capsys):
        main(["complete", "--builtin", "university", "-e", "3",
              "department ~ ssn"])
        out = capsys.readouterr().out
        assert "4 completion(s)" in out

    def test_exclusions(self, capsys):
        code = main(
            [
                "complete",
                "--builtin",
                "university",
                "--exclude",
                "person",
                "ta ~ name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "person" not in out.splitlines()[1]

    def test_no_completion_exit_code(self, capsys):
        code = main(["complete", "--builtin", "university", "ta ~ ghost"])
        assert code == 1

    def test_schema_file_json(self, tmp_path, capsys):
        path = tmp_path / "uni.json"
        save_schema(build_university_schema(), path)
        code = main(["complete", "--schema", str(path), "ta ~ name"])
        assert code == 0

    def test_schema_file_dsl(self, tmp_path, capsys):
        path = tmp_path / "tiny.dsl"
        path.write_text(
            "schema tiny\nclass person\n    attr name\n"
            "class student isa person\n"
        )
        code = main(["complete", "--schema", str(path), "student ~ name"])
        out = capsys.readouterr().out
        assert code == 0
        assert "student@>person.name" in out

    def test_parse_error_is_reported(self, capsys):
        code = main(["complete", "--builtin", "university", "ta !! name"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestEnumerate:
    def test_lists_and_counts(self, capsys):
        code = main(
            ["enumerate", "--builtin", "university", "--limit", "10",
             "ta ~ name"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "consistent acyclic path(s)" in out
        assert out.count("\n") >= 3

    def test_rejects_general_expressions(self, capsys):
        code = main(["enumerate", "--builtin", "university", "ta~x~y"])
        assert code == 2


class TestProfile:
    def test_profile_output(self, capsys):
        code = main(["profile", "--builtin", "cupid", "--suggest-hubs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "user classes:        92" in out
        assert "units_registry" in out

    def test_profile_without_suggestions(self, capsys):
        main(["profile", "--builtin", "university"])
        out = capsys.readouterr().out
        assert "suggested" not in out


class TestQuery:
    def test_query_saved_database(self, tmp_path, capsys):
        schema = build_university_schema()
        db = Database(schema)
        bob = db.create("ta")
        db.set_attribute(bob, "name", "bob")
        path = tmp_path / "db.json"
        save_database(db, path)

        code = main(["query", "--db", str(path), "get ta ~ name"])
        out = capsys.readouterr().out
        assert code == 0
        assert "'bob'" in out

    def test_missing_db_file(self, capsys):
        code = main(["query", "--db", "/nonexistent.json", "get a.b"])
        assert code == 2


class TestExplain:
    def test_explain_returned(self, capsys):
        code = main(
            [
                "explain",
                "--builtin",
                "university",
                "ta ~ name",
                "ta@>grad@>student@>person.name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[returned]" in out

    def test_explain_dominated(self, capsys):
        main(
            [
                "explain",
                "--builtin",
                "university",
                "ta ~ name",
                "ta@>grad@>student.take.name",
            ]
        )
        out = capsys.readouterr().out
        assert "[connector_dominated]" in out
        assert "stronger" in out


class TestFox:
    def test_fox_query(self, tmp_path, capsys):
        schema = build_university_schema()
        db = Database(schema)
        bob = db.create("ta")
        db.set_attribute(bob, "name", "bob")
        alice = db.create("student")
        db.set_attribute(alice, "name", "alice")
        path = tmp_path / "db.json"
        save_database(db, path)

        code = main(
            [
                "fox",
                "--db",
                str(path),
                "for s in student select s@>person.name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 row(s)" in out
        assert "alice" in out and "bob" in out

    def test_fox_syntax_error(self, tmp_path, capsys):
        schema = build_university_schema()
        path = tmp_path / "db.json"
        save_database(Database(schema), path)
        code = main(["fox", "--db", str(path), "nonsense"])
        assert code == 2


class TestConvert:
    def test_dsl_to_json_and_back(self, tmp_path, capsys):
        dsl = tmp_path / "s.dsl"
        dsl.write_text("schema s\nclass a\n    attr x\n")
        as_json = tmp_path / "s.json"
        assert main(["convert", str(dsl), str(as_json)]) == 0
        document = json.loads(as_json.read_text())
        assert document["format"] == "repro-schema"

        back = tmp_path / "back.dsl"
        assert main(["convert", str(as_json), str(back)]) == 0
        assert "class a" in back.read_text()


class TestParser:
    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_schema_and_builtin_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(
                ["complete", "--builtin", "university", "--schema", "x",
                 "a ~ b"]
            )


class TestObservabilityFlags:
    def test_trace_prints_span_tree(self, capsys):
        # A bare --trace must come after the expression (or use
        # --trace=FILE): argparse's nargs="?" would otherwise swallow
        # the positional.
        # Drop memoized artifacts so the completion cache starts cold
        # and the trace shows a full run (traverse/rank), regardless of
        # what other tests completed on the shared university artifact.
        from repro.core.compiled import invalidate

        invalidate()
        code = main(
            ["complete", "--builtin", "university", "ta ~ name", "--trace"]
        )
        out = capsys.readouterr().out
        assert code == 0
        lines = out.splitlines()
        assert any(line.startswith("complete") and "ms" in line
                   for line in lines)
        assert any("traverse" in line for line in lines)
        assert any("rank" in line for line in lines)

    def test_trace_to_file_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs.schema import validate_trace_events

        target = tmp_path / "trace.jsonl"
        code = main(
            [
                "complete",
                "--builtin",
                "university",
                f"--trace={target}",
                "ta ~ name",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"event(s) written to {target}" in out
        records = [
            json.loads(line)
            for line in target.read_text().splitlines()
            if line
        ]
        assert records
        validate_trace_events(records)

    def test_metrics_prints_valid_summary(self, capsys):
        from repro.obs.schema import validate_metrics_summary

        code = main(
            ["complete", "--builtin", "university", "--metrics", "ta ~ name"]
        )
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out[out.index("{"):])
        validate_metrics_summary(summary)
        assert summary["counters"]["completions"] == 1

    def test_verbose_reports_cache_info(self, capsys):
        main(
            ["complete", "--builtin", "university", "--verbose", "ta ~ name"]
        )
        out = capsys.readouterr().out
        assert "[cache:" in out
        assert "hit(s)" in out

    def test_query_supports_trace(self, tmp_path, capsys):
        schema = build_university_schema()
        db = Database(schema)
        bob = db.create("ta")
        db.set_attribute(bob, "name", "bob")
        path = tmp_path / "db.json"
        save_database(db, path)

        code = main(["query", "--db", str(path), "get ta ~ name", "--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert any(line.startswith("query") for line in out.splitlines())
        assert "evaluate" in out
