"""Tests for Schema's removal mutators, copy(), and apply() (delta PR)."""

import pytest

from repro.errors import (
    PrimitiveClassError,
    SchemaError,
    UnknownClassError,
    UnknownRelationshipError,
)
from repro.model.delta import AddClass, SchemaDelta
from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema


@pytest.fixture()
def schema():
    s = Schema("mutators")
    s.add_classes(["person", "company", "city"])
    s.add_relationship(
        "person", "company", RelationshipKind.IS_ASSOCIATED_WITH, name="employer"
    )
    s.add_attribute("person", "name")
    return s


class TestRemoveRelationship:
    def test_removes_one_directed_edge(self, schema):
        removed = schema.remove_relationship("person", "employer")
        assert removed.target == "company"
        with pytest.raises(UnknownRelationshipError):
            schema.get_relationship("person", "employer")
        # The auto-installed inverse stays — single-edge granularity.
        assert schema.get_relationship("company", "person").target == "person"

    def test_changes_fingerprint(self, schema):
        before = schema.fingerprint()
        schema.remove_relationship("person", "employer")
        assert schema.fingerprint() != before

    def test_unknown_relationship_raises(self, schema):
        with pytest.raises(UnknownRelationshipError):
            schema.remove_relationship("person", "ghost")


class TestRemoveAttribute:
    def test_removes_and_changes_fingerprint(self, schema):
        before = schema.fingerprint()
        schema.remove_attribute("person", "name")
        assert schema.fingerprint() != before
        with pytest.raises(UnknownRelationshipError):
            schema.get_relationship("person", "name")

    def test_refuses_non_attribute_relationship(self, schema):
        # "employer" targets a user class, not a primitive.
        with pytest.raises(SchemaError):
            schema.remove_attribute("person", "employer")
        assert schema.get_relationship("person", "employer")


class TestRemoveClass:
    def test_dangling_references_block_removal(self, schema):
        with pytest.raises(SchemaError) as excinfo:
            schema.remove_class("company")
        # The error names the dangling relationships in both directions.
        message = str(excinfo.value)
        assert "employer" in message
        assert schema.has_class("company")

    def test_cascade_removes_incident_relationships(self, schema):
        schema.remove_class("company", cascade=True)
        assert not schema.has_class("company")
        with pytest.raises(UnknownRelationshipError):
            schema.get_relationship("person", "employer")

    def test_isolated_class_removal_changes_fingerprint(self, schema):
        before = schema.fingerprint()
        schema.remove_class("city")
        assert not schema.has_class("city")
        assert schema.fingerprint() != before

    def test_primitives_protected(self, schema):
        with pytest.raises(PrimitiveClassError):
            schema.remove_class("C")

    def test_unknown_class_raises(self, schema):
        with pytest.raises(UnknownClassError):
            schema.remove_class("ghost")


class TestCopyAndApply:
    def test_copy_is_independent(self, schema):
        clone = schema.copy()
        assert clone.fingerprint() == schema.fingerprint()
        clone.add_class("country")
        clone.remove_relationship("person", "employer")
        assert not schema.has_class("country")
        assert schema.get_relationship("person", "employer")

    def test_copy_preserves_declaration_order(self, schema):
        clone = schema.copy()
        assert [c.name for c in clone] == [c.name for c in schema]
        assert [r.key for r in clone.relationships()] == [
            r.key for r in schema.relationships()
        ]

    def test_apply_delegates_and_chains(self, schema):
        result = schema.apply(SchemaDelta.of(AddClass("country")))
        assert result is schema
        assert schema.has_class("country")
