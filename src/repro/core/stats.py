"""Traversal statistics (paper Section 5.4).

The paper measures algorithm cost in *recursive calls* (each call is one
class-node exploration; 0.17 ms each on the original DecStation) plus
wall-clock response time.  :class:`TraversalStats` records those and the
pruning breakdown, so the benchmarks can report both the
hardware-independent and the wall-clock views.
"""

from __future__ import annotations

import dataclasses

__all__ = ["TraversalStats"]


@dataclasses.dataclass
class TraversalStats:
    """Counters collected by one run of a completion traversal.

    The ``cache_*`` and ``compile_seconds`` fields belong to the
    compile-once/query-many layer (:mod:`repro.core.compiled`): they
    stay zero on raw :class:`~repro.core.completion.CompletionSearch`
    runs and are filled in by batch entry points such as
    :meth:`repro.core.engine.Disambiguator.complete_batch`, so warm/cold
    benchmark reports can show how much traversal work the shared
    completion cache absorbed.
    """

    recursive_calls: int = 0
    edges_considered: int = 0
    complete_paths_found: int = 0
    pruned_visited: int = 0
    pruned_target_bound: int = 0
    pruned_best_bound: int = 0
    rescued_by_caution: int = 0
    preempted_paths: int = 0
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    compile_seconds: float = 0.0

    def add(self, other: "TraversalStats") -> None:
        """Accumulate another run's counters into this one."""
        for field in dataclasses.fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )

    @property
    def seconds_per_call(self) -> float:
        """Average cost of one recursive call (the paper's 0.17 ms
        figure, on our hardware)."""
        if self.recursive_calls == 0:
            return 0.0
        return self.elapsed_seconds / self.recursive_calls

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return dataclasses.asdict(self) | {
            "seconds_per_call": self.seconds_per_call
        }

    def __str__(self) -> str:
        return (
            f"calls={self.recursive_calls} edges={self.edges_considered} "
            f"complete={self.complete_paths_found} "
            f"pruned(visited/target/best)="
            f"{self.pruned_visited}/{self.pruned_target_bound}/"
            f"{self.pruned_best_bound} "
            f"caution-rescues={self.rescued_by_caution} "
            f"time={self.elapsed_seconds * 1000:.2f}ms"
        )
