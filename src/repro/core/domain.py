"""Domain-specific knowledge (paper Sections 5.2, 7).

The paper's second experiment let the schema designer declare that
certain *auxiliary* classes — connected to a plethora of other classes
but without much inherent semantic content — should never appear inside
any completion.  That single, easily-specified form of knowledge raised
precision from 55% to 93% at large E.

:class:`DomainKnowledge` generalizes slightly (also per the paper's
future-work list): excluded classes, individually excluded
relationships, and optional per-class *penalties* added to the semantic
length of paths passing through them (a mild, tunable discouragement —
disabled unless set).
"""

from __future__ import annotations

import dataclasses

from repro.model.graph import SchemaGraph
from repro.model.schema import Schema

__all__ = ["DomainKnowledge"]


@dataclasses.dataclass(frozen=True)
class DomainKnowledge:
    """Declarative, schema-level domain knowledge.

    Parameters
    ----------
    excluded_classes:
        Classes that must never appear *inside* a completion (as an
        intermediate or final class).  The paper's Section 5.2 form.
    excluded_relationships:
        Individual ``(source class, relationship name)`` pairs to drop.
    class_penalties:
        Extra semantic-length units charged for visiting a class.  Used
        by the ranking extensions; 0/absent means no penalty.
    """

    excluded_classes: frozenset[str] = frozenset()
    excluded_relationships: frozenset[tuple[str, str]] = frozenset()
    class_penalties: tuple[tuple[str, int], ...] = ()

    @classmethod
    def none(cls) -> "DomainKnowledge":
        """The empty knowledge (the domain-independent baseline)."""
        return cls()

    @classmethod
    def excluding(cls, *class_names: str) -> "DomainKnowledge":
        """Convenience constructor for the paper's excluded-class form."""
        return cls(excluded_classes=frozenset(class_names))

    @property
    def is_empty(self) -> bool:
        return (
            not self.excluded_classes
            and not self.excluded_relationships
            and not self.class_penalties
        )

    def penalties(self) -> dict[str, int]:
        """Class-penalty mapping as a dict."""
        return dict(self.class_penalties)

    def validate_against(self, schema: Schema) -> list[str]:
        """Names referencing classes the schema lacks (likely typos)."""
        problems = [
            f"excluded class {name!r} not in schema"
            for name in sorted(self.excluded_classes)
            if not schema.has_class(name)
        ]
        for source, rel_name in sorted(self.excluded_relationships):
            if not schema.has_class(source) or not schema.has_relationship(
                source, rel_name
            ):
                problems.append(
                    f"excluded relationship {source}.{rel_name} not in schema"
                )
        for name, _ in self.class_penalties:
            if not schema.has_class(name):
                problems.append(f"penalized class {name!r} not in schema")
        return problems

    def restrict(self, graph: SchemaGraph) -> SchemaGraph:
        """Apply the exclusions to a schema graph.

        Note that the *root* of a completion may still be an excluded
        class from the user's perspective; exclusion removes the class
        from the traversal view entirely, which also prevents rooting
        there — matching the paper's "never a part of the completion of
        any incomplete path expression".
        """
        if not self.excluded_classes and not self.excluded_relationships:
            return graph
        return graph.restricted(
            exclude_classes=self.excluded_classes,
            exclude_relationships=self.excluded_relationships,
        )

    def merged_with(self, other: "DomainKnowledge") -> "DomainKnowledge":
        """Union of two knowledge declarations."""
        penalties = dict(self.class_penalties)
        for name, penalty in other.class_penalties:
            penalties[name] = max(penalty, penalties.get(name, 0))
        return DomainKnowledge(
            excluded_classes=self.excluded_classes | other.excluded_classes,
            excluded_relationships=(
                self.excluded_relationships | other.excluded_relationships
            ),
            class_penalties=tuple(sorted(penalties.items())),
        )
