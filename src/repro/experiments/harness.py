"""Shared experiment runner: execute a workload at a given E, with or
without domain knowledge, and collect recall/precision/cost per query.

Every figure module (:mod:`figure5`, :mod:`figure6`, :mod:`figure7`) and
the in-text statistics module build on :func:`run_workload` /
:func:`sweep_e`.
"""

from __future__ import annotations

import dataclasses

from repro.core.compiled import CompiledSchema, compile_schema
from repro.core.domain import DomainKnowledge
from repro.core.engine import Disambiguator
from repro.core.parallel import prewarm
from repro.errors import ReproError
from repro.experiments.metrics import average, precision, recall
from repro.experiments.oracle import DesignerOracle, WorkloadQuery
from repro.model.schema import Schema
from repro.obs.metrics import get_metrics
from repro.obs.slowlog import get_slowlog
from repro.obs.tracer import get_tracer

__all__ = ["QueryOutcome", "SweepPoint", "run_workload", "sweep_e"]


@dataclasses.dataclass(frozen=True)
class QueryOutcome:
    """Result of running one workload query at one setting.

    ``error`` is ``None`` on success; when
    :func:`run_workload` runs with ``continue_on_error`` and a query
    keeps failing through its retries, the outcome records the final
    error text here (with empty ``returned`` and zero scores) so the
    sweep's averages and the runner's failure report both see it.
    """

    query: WorkloadQuery
    e: int
    returned: tuple[str, ...]
    intent: frozenset[str]
    recall: float
    precision: float
    recursive_calls: int
    elapsed_seconds: float
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def returned_count(self) -> int:
        return len(self.returned)

    @property
    def mean_returned_length(self) -> float:
        """Average edge count of the returned completions.

        Length is recovered from the expression text by counting steps
        (each connector introduces one step).
        """
        if not self.returned:
            return 0.0
        import re

        counts = [
            len(re.findall(r"@>|<@|\$>|<\$|\.", text))
            for text in self.returned
        ]
        return sum(counts) / len(counts)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """Workload averages at one E setting (a point on Figures 5/6)."""

    e: int
    average_recall: float
    average_precision: float
    average_returned: float
    outcomes: tuple[QueryOutcome, ...]


def run_workload(
    schema: Schema,
    oracle: DesignerOracle,
    e: int = 1,
    domain_knowledge: DomainKnowledge | None = None,
    compiled: CompiledSchema | None = None,
    continue_on_error: bool = False,
    retries: int = 0,
    jobs: int = 1,
) -> list[QueryOutcome]:
    """Run every workload query once and score it against the oracle.

    ``compiled`` shares an explicit compilation artifact (its completion
    cache makes repeated runs warm); without it the engine compiles
    through the memoized registry, so repeated runs over an unchanged
    schema still share one artifact.

    ``jobs > 1`` runs the cold completions on a thread pool up front
    (:func:`repro.core.parallel.prewarm`), then scores the outcomes from
    the warm cache in workload order.  Scores and reported per-query
    stats are unchanged: a cached result carries the counters of the
    cold run that produced it, and a query failing during the warm-up
    re-raises at its usual place in the loop with the usual
    retry/continue-on-error handling.

    A query raising a :class:`~repro.errors.ReproError` is retried up to
    ``retries`` more times (transient faults — an injected chaos fault,
    a tripped deadline under load — often clear on retry).  If it still
    fails: with ``continue_on_error`` the workload records a failed
    :class:`QueryOutcome` (zero scores, the error text in ``.error``)
    and moves on; otherwise the error propagates as before.
    """
    if compiled is None:
        compiled = compile_schema(schema, domain_knowledge=domain_knowledge)
    engine = Disambiguator(compiled, e=e)
    metrics = get_metrics()
    outcomes: list[QueryOutcome] = []
    with get_tracer().span(
        "workload",
        e=e,
        knowledge=domain_knowledge is not None,
        jobs=jobs,
    ) as span:
        if jobs > 1:
            prewarm(engine, (query.text for query in oracle), jobs)
        for query in oracle:
            result = None
            failure: ReproError | None = None
            # One slow-log observation per workload query (kind
            # "experiment"): nested engine observations no-op, so a
            # retained entry covers the retry loop end to end.
            with get_slowlog().observe(
                "experiment", query.text, e=e, pruning=engine.pruning
            ) as observation:
                for attempt in range(retries + 1):
                    try:
                        result = engine.complete(query.text)
                        failure = None
                        break
                    except ReproError as error:
                        failure = error
                        if attempt < retries:
                            metrics.counter("workload.retries").inc()
                if result is not None:
                    observation.record_result(result)
            if failure is not None:
                if not continue_on_error:
                    raise failure
                metrics.counter("workload.failures").inc()
                outcomes.append(
                    QueryOutcome(
                        query=query,
                        e=e,
                        returned=(),
                        intent=frozenset(query.final_intent(())),
                        recall=0.0,
                        precision=0.0,
                        recursive_calls=0,
                        elapsed_seconds=0.0,
                        error=f"{type(failure).__name__}: {failure}",
                    )
                )
                continue
            returned = tuple(result.expressions)
            intent = frozenset(query.final_intent(returned))
            outcome = QueryOutcome(
                query=query,
                e=e,
                returned=returned,
                intent=intent,
                recall=recall(intent, returned),
                precision=precision(intent, returned),
                recursive_calls=result.stats.recursive_calls,
                elapsed_seconds=result.stats.elapsed_seconds,
            )
            outcomes.append(outcome)
            # The per-completion traversal feed happens inside
            # engine.complete; the workload-level quality series is
            # recorded here, where the oracle's scoring lives.
            metrics.histogram("workload.recall").observe(outcome.recall)
            metrics.histogram("workload.precision").observe(outcome.precision)
            metrics.histogram("workload.returned").observe(len(returned))
        span.set(queries=len(outcomes))
    return outcomes


def sweep_e(
    schema: Schema,
    oracle: DesignerOracle,
    e_values: tuple[int, ...] = (1, 2, 3, 4, 5),
    domain_knowledge: DomainKnowledge | None = None,
    compiled: CompiledSchema | None = None,
    continue_on_error: bool = False,
    retries: int = 0,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Run the workload across E settings (the Figures 5/6 x-axis).

    The schema is compiled exactly once for the whole sweep; E is part
    of every completion cache key, so the points coexist in one cache.
    ``continue_on_error``/``retries``/``jobs`` pass through to
    :func:`run_workload`.
    """
    if compiled is None:
        compiled = compile_schema(schema, domain_knowledge=domain_knowledge)
    points: list[SweepPoint] = []
    for e in e_values:
        outcomes = run_workload(
            schema,
            oracle,
            e=e,
            domain_knowledge=domain_knowledge,
            compiled=compiled,
            continue_on_error=continue_on_error,
            retries=retries,
            jobs=jobs,
        )
        points.append(
            SweepPoint(
                e=e,
                average_recall=average([o.recall for o in outcomes]),
                average_precision=average([o.precision for o in outcomes]),
                average_returned=average(
                    [float(o.returned_count) for o in outcomes]
                ),
                outcomes=tuple(outcomes),
            )
        )
    return points
