"""Tests for inheritance semantics (ancestor closures, shadowing)."""

import pytest

from repro.model.inheritance import (
    ancestors,
    descendants,
    effective_relationships,
    inheritance_depth,
    is_subclass_of,
    resolve_inherited,
)
from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema


@pytest.fixture()
def diamond():
    """ta multiply inherits from grad and instructor (paper Fig. 2)."""
    s = Schema("diamond")
    s.add_classes(
        ["person", "student", "grad", "employee", "teacher", "instructor", "ta"]
    )
    s.add_relationship("student", "person", RelationshipKind.ISA)
    s.add_relationship("grad", "student", RelationshipKind.ISA)
    s.add_relationship("employee", "person", RelationshipKind.ISA)
    s.add_relationship("teacher", "employee", RelationshipKind.ISA)
    s.add_relationship("instructor", "teacher", RelationshipKind.ISA)
    s.add_relationship("ta", "grad", RelationshipKind.ISA)
    s.add_relationship("ta", "instructor", RelationshipKind.ISA)
    s.add_attribute("person", "name")
    return s


class TestClosures:
    def test_ancestors_bfs_order(self, diamond):
        assert ancestors(diamond, "ta") == [
            "grad",
            "instructor",
            "student",
            "teacher",
            "person",
            "employee",
        ]

    def test_ancestors_of_root_class(self, diamond):
        assert ancestors(diamond, "person") == []

    def test_descendants(self, diamond):
        assert set(descendants(diamond, "person")) == {
            "student",
            "grad",
            "employee",
            "teacher",
            "instructor",
            "ta",
        }

    def test_is_subclass_of_is_reflexive(self, diamond):
        assert is_subclass_of(diamond, "ta", "ta")

    def test_is_subclass_of_transitive(self, diamond):
        assert is_subclass_of(diamond, "ta", "person")
        assert not is_subclass_of(diamond, "person", "ta")


class TestDepth:
    def test_depth_zero_for_self(self, diamond):
        assert inheritance_depth(diamond, "ta", "ta") == 0

    def test_shortest_chain_wins(self, diamond):
        # ta -> grad -> student -> person (3) vs
        # ta -> instructor -> teacher -> employee -> person (4)
        assert inheritance_depth(diamond, "ta", "person") == 3

    def test_none_for_non_ancestor(self, diamond):
        assert inheritance_depth(diamond, "person", "ta") is None


class TestEffectiveRelationships:
    def test_attribute_inherited_through_the_chain(self, diamond):
        rel = resolve_inherited(diamond, "ta", "name")
        assert rel is not None
        assert rel.source == "person"

    def test_own_declaration_shadows_inherited(self, diamond):
        diamond.add_attribute("ta", "name")
        rel = resolve_inherited(diamond, "ta", "name")
        assert rel.source == "ta"

    def test_nearer_ancestor_shadows_farther(self, diamond):
        diamond.add_attribute("grad", "name")
        rel = resolve_inherited(diamond, "ta", "name")
        assert rel.source == "grad"

    def test_unknown_relationship_resolves_to_none(self, diamond):
        assert resolve_inherited(diamond, "ta", "ghost") is None

    def test_effective_set_includes_own_and_inherited(self, diamond):
        diamond.add_attribute("ta", "stipend", "R")
        effective = effective_relationships(diamond, "ta")
        assert {"name", "stipend"} <= set(effective)
