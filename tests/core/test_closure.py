"""The compile-time Carré label closure and its cut rules.

The contract under test is absolute: closure-guided pruning is an
*admissible* optimization — for every schema, root, target, and E the
pruned search must return byte-identical results (paths, labels,
exhausted flag) to the paper's Algorithm 2, while visiting fewer nodes.
"""

import pytest

from repro.core.closure import (
    PRUNING_MODES,
    SchemaClosure,
    has_static_adjacency,
    resolve_pruning,
)
from repro.core.compiled import CompiledSchema
from repro.core.completion import CompletionSearch, complete_paths
from repro.core.engine import Disambiguator
from repro.core.target import ClassTarget, RelationshipTarget, Target
from repro.model.graph import SchemaGraph
from repro.schemas.generator import GeneratorConfig, generate_schema


def _snapshot(result):
    """Everything a caller can observe about a completion result."""
    return (
        tuple(str(path) for path in result.paths),
        tuple(label.key for label in result.labels),
        tuple(str(label) for label in result.labels),
        result.exhausted,
        result.truncation_reason,
    )


class TestReachability:
    def test_matches_bfs_on_cupid(self, cupid_graph):
        closure = SchemaClosure.for_graph(cupid_graph)
        nodes = cupid_graph.nodes()
        for source_i, source in enumerate(nodes):
            # The stored matrix is the *reflexive* transitive closure —
            # a node always reaches itself (a completing edge may leave
            # from the current node).
            expected = {source}
            frontier = [source]
            while frontier:
                node = frontier.pop()
                for edge in cupid_graph.edges_from(node):
                    if edge.target not in expected:
                        expected.add(edge.target)
                        frontier.append(edge.target)
            mask = closure.reach[source_i]
            actual = {
                name
                for name_i, name in enumerate(nodes)
                if mask >> name_i & 1
            }
            assert actual == expected, f"reachability from {source}"

    def test_closure_is_cached_by_graph_fingerprint(self, cupid_graph):
        first = SchemaClosure.for_graph(cupid_graph)
        second = SchemaClosure.for_graph(SchemaGraph(cupid_graph.schema))
        assert first is second


class TestKnobResolution:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRUNING", "none")
        assert resolve_pruning("closure") == "closure"

    def test_env_var_fills_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRUNING", "none")
        assert resolve_pruning(None) == "none"
        monkeypatch.delenv("REPRO_PRUNING")
        assert resolve_pruning(None) == "closure"

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="pruning must be one of"):
            resolve_pruning("aggressive")

    def test_engine_honors_env_override(self, cupid, monkeypatch):
        monkeypatch.setenv("REPRO_PRUNING", "none")
        engine = Disambiguator(CompiledSchema(cupid))
        assert engine.pruning == "none"
        assert engine._search.closure is None

    def test_every_mode_is_constructible(self, university_graph):
        for mode in PRUNING_MODES:
            search = CompletionSearch(university_graph, pruning=mode)
            result = search.run("ta", RelationshipTarget("name"))
            assert result.paths


class TestStaticAdjacency:
    def test_plain_graph_qualifies(self, cupid_graph):
        assert has_static_adjacency(cupid_graph)

    def test_monkeypatched_graph_falls_back(self, cupid):
        graph = SchemaGraph(cupid)
        original = graph.edges_from
        graph.edges_from = lambda node: original(node)
        assert not has_static_adjacency(graph)
        search = CompletionSearch(graph, pruning="closure")
        assert search.closure is None  # reference loop despite the knob

    def test_proxy_class_falls_back(self, cupid):
        class Proxy:
            def __init__(self, inner):
                self._inner = inner

            def edges_from(self, node):
                return self._inner.edges_from(node)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        assert not has_static_adjacency(Proxy(SchemaGraph(cupid)))


class TestEquivalenceOnFixtures:
    """Pruned == unpruned on the repo's hand-built schemas."""

    @pytest.mark.parametrize("e", [1, 2, 3])
    def test_university_flagship(self, university_graph, e):
        target = RelationshipTarget("name")
        reference = complete_paths(
            university_graph, "ta", target, e=e, pruning="none"
        )
        pruned = complete_paths(
            university_graph, "ta", target, e=e, pruning="closure"
        )
        assert _snapshot(pruned) == _snapshot(reference)

    @pytest.mark.parametrize("e", [1, 2, 3])
    def test_cupid_acceptance_query(self, cupid_graph, e):
        target = RelationshipTarget("conductance")
        reference = complete_paths(
            cupid_graph, "experiment", target, e=e, pruning="none"
        )
        pruned = complete_paths(
            cupid_graph, "experiment", target, e=e, pruning="closure"
        )
        assert _snapshot(pruned) == _snapshot(reference)
        assert (
            pruned.stats.recursive_calls < reference.stats.recursive_calls
        )
        assert (
            pruned.stats.nodes_pruned_reachability
            + pruned.stats.nodes_pruned_bound
            > 0
        )

    def test_class_target_equivalence(self, cupid_graph):
        target = ClassTarget("field")
        reference = complete_paths(
            cupid_graph, "experiment", target, e=2, pruning="none"
        )
        pruned = complete_paths(
            cupid_graph, "experiment", target, e=2, pruning="closure"
        )
        assert reference.paths  # a meaningful, non-empty comparison
        assert _snapshot(pruned) == _snapshot(reference)

    def test_unreachable_target_is_empty_in_both_modes(self, cupid_graph):
        target = RelationshipTarget("no_such_relationship")
        for mode in PRUNING_MODES:
            result = complete_paths(
                cupid_graph, "experiment", target, pruning=mode
            )
            assert result.paths == ()

    def test_exotic_target_falls_back_unpruned(self, cupid_graph):
        class EveryEdge(Target):
            def is_completing_edge(self, edge):
                return True

            def describe(self):
                return "any edge"

        search = CompletionSearch(cupid_graph, pruning="closure")
        assert search.closure is not None
        assert search.closure.tables_for(EveryEdge()) is None
        result = search.run("experiment", EveryEdge())
        assert result.stats.nodes_pruned_reachability == 0
        assert result.stats.nodes_pruned_bound == 0


class TestEquivalenceOnRandomSchemas:
    """The property test: the closure cuts are admissible on schemas
    nobody hand-tuned them for."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("e", [1, 2, 3])
    def test_pruned_equals_unpruned(self, seed, e):
        schema = generate_schema(
            GeneratorConfig(classes=22, seed=seed, association_factor=1.2)
        )
        graph = SchemaGraph(schema)
        # The generator gives ~10% of classes a shared "label" attribute
        # and names associations rel_NNN; between them the queries below
        # exercise hits, misses, and multi-path fans.
        targets = [
            RelationshipTarget("label"),
            RelationshipTarget("rel_000"),
            RelationshipTarget("rel_005"),
        ]
        roots = [name for name in graph.nodes() if name.startswith("cls_")][
            ::7
        ]
        assert roots
        compared = 0
        for root in roots:
            for target in targets:
                reference = complete_paths(
                    graph, root, target, e=e, pruning="none"
                )
                pruned = complete_paths(
                    graph, root, target, e=e, pruning="closure"
                )
                assert _snapshot(pruned) == _snapshot(reference), (
                    f"seed={seed} e={e} root={root} "
                    f"target={target.describe()}"
                )
                assert (
                    pruned.stats.recursive_calls
                    <= reference.stats.recursive_calls
                )
                compared += 1
        assert compared >= 6


class TestCautionExemption:
    """The bound cut must honor the caution-set exemption.

    ``output_spec ~ capacity`` on CUPID is the repo's canonical rescue
    case (see ``TestCautionSetsRescue`` in ``test_completion.py``): its
    plausible completion survives only because a beaten label is
    rescued by a caution set.  The bound cut fires thousands of times
    on this query, so if it ever discarded a subtree whose composed
    connector sits in an active caution set, the rescued path — and
    equivalence with the reference — would be lost.
    """

    GOOD = (
        "output_spec<$simulation$>management$>irrigation_system.capacity"
    )

    @pytest.mark.parametrize("e", [1, 2, 3])
    def test_rescued_path_survives_the_bound_cut(self, cupid_graph, e):
        target = RelationshipTarget("capacity")
        reference = complete_paths(
            cupid_graph, "output_spec", target, e=e, pruning="none"
        )
        pruned = complete_paths(
            cupid_graph, "output_spec", target, e=e, pruning="closure"
        )
        assert _snapshot(pruned) == _snapshot(reference)
        assert self.GOOD in pruned.expressions
        # The scenario is only a real test of the exemption while both
        # mechanisms actually fire.
        assert pruned.stats.nodes_pruned_bound > 0
        assert pruned.stats.rescued_by_caution > 0


class TestStatsAndObservability:
    def test_counters_live_in_stats_rendering(self, cupid_graph):
        result = complete_paths(
            cupid_graph,
            "experiment",
            RelationshipTarget("conductance"),
            e=2,
            pruning="closure",
        )
        rendered = str(result.stats)
        assert "closure(reach/bound)=" in rendered

    def test_prune_counters_reach_metrics(self, cupid_graph):
        from repro.obs.metrics import MetricsRegistry, use_metrics

        registry = MetricsRegistry()
        with use_metrics(registry):
            engine = Disambiguator(
                CompiledSchema(cupid_graph.schema), e=2, pruning="closure"
            )
            engine.complete("experiment ~ conductance")
        assert registry.counter("prune.reachability").value > 0
        assert registry.counter("prune.bound").value > 0

    def test_pruning_modes_have_disjoint_cache_keys(self, cupid):
        compiled = CompiledSchema(cupid)
        closure_key = compiled.cache_key(
            "experiment~conductance", 1, True, True, None, "closure"
        )
        none_key = compiled.cache_key(
            "experiment~conductance", 1, True, True, None, "none"
        )
        assert closure_key != none_key

    def test_compiled_artifact_shares_one_closure(self, cupid):
        compiled = CompiledSchema(cupid)
        search = compiled.searcher(e=1, pruning="closure")
        assert search.closure is compiled.closure
        reference = compiled.searcher(e=1, pruning="none")
        assert reference.closure is None
        assert search is not reference
