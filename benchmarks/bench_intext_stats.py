"""Bench E4 — regenerates the in-text statistics of Section 5.3.

Paper: >500 acyclic consistent path expressions per query on average;
only 2-3 returned at E=1; average answer length ~15 edges; schema of 92
classes / 364 relationships.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.intext import render_intext_stats, run_intext_stats


@pytest.mark.benchmark(group="intext")
def test_intext_statistics(benchmark, cupid, oracle):
    stats = benchmark.pedantic(
        run_intext_stats,
        args=(cupid, oracle),
        kwargs={"enumeration_cap": 200_000},
        rounds=1,
        iterations=1,
    )
    emit("In-text statistics (Section 5.3)", render_intext_stats(stats))

    assert stats.classes == 92
    assert stats.relationships == 364
    assert stats.consistent_exceeds_500
    assert 1.0 <= stats.average_returned_e1 <= 3.0
