"""End-to-end integration: build schema -> populate database -> ask an
incomplete query -> approve -> evaluate (the full Figure 1 loop)."""

import pytest

from repro import (
    CompletionSession,
    Database,
    Disambiguator,
    DomainKnowledge,
    build_university_schema,
    evaluate,
    parse_schema_dsl,
    run_query,
)
from repro.query.session import approve_first


class TestFigureOneLoop:
    def test_full_loop_on_university(self):
        schema = build_university_schema()
        db = Database(schema)
        bob = db.create("ta")
        db.set_attribute(bob, "name", "bob")
        db.set_attribute(bob, "ssn", 42)

        session = CompletionSession(db)
        interaction = session.ask("ta ~ name")
        assert len(interaction.candidates) == 2
        assert interaction.values == {"bob"}

        ssn = session.ask("ta ~ ssn")
        assert ssn.values == {42}

    def test_loop_with_selective_approval(self):
        schema = build_university_schema()
        db = Database(schema)
        bob = db.create("ta")
        db.set_attribute(bob, "name", "bob")
        session = CompletionSession(db, chooser=approve_first)
        interaction = session.ask("ta ~ name")
        assert len(interaction.approved) == 1
        assert interaction.values == {"bob"}


class TestDslToQueries:
    def test_schema_from_dsl_supports_completion_and_evaluation(self):
        schema = parse_schema_dsl(
            """
            schema lab
            class person
                attr name
            class researcher isa person
            class paper
                attr title
            class researcher
                assoc paper as writes inverse author
            """
        )
        engine = Disambiguator(schema)
        completions = engine.complete("researcher ~ name")
        assert completions.expressions == ["researcher@>person.name"]

        db = Database(schema)
        ada = db.create("researcher")
        db.set_attribute(ada, "name", "ada")
        paper = db.create("paper")
        db.set_attribute(paper, "title", "On Paths")
        db.link(ada, "writes", paper)
        assert evaluate(db, "researcher.writes.title") == {"On Paths"}
        assert evaluate(db, "paper.author@>person.name") == {"ada"}


class TestQueryLanguageEndToEnd:
    def test_incomplete_query_with_filter(self):
        schema = build_university_schema()
        db = Database(schema)
        for name, number in (("bob", 1), ("eve", 2)):
            ta = db.create("ta")
            db.set_attribute(ta, "name", name)
            db.set_attribute(ta, "ssn", number)
        result = run_query(db, "get ta ~ ssn where > 1")
        assert result.values == {2}


class TestDomainKnowledgeEndToEnd:
    def test_exclusions_flow_through_the_engine(self):
        schema = build_university_schema()
        engine = Disambiguator(
            schema,
            e=3,
            domain_knowledge=DomainKnowledge.excluding("course"),
        )
        result = engine.complete("department ~ ssn")
        for path in result.paths:
            assert "course" not in path.classes()


class TestCupidEndToEnd:
    def test_deep_completion_evaluates_on_instances(self, cupid):
        db = Database(cupid)
        # materialize one chain experiment -> ... -> stomata
        chain = [
            "experiment", "simulation", "crop", "canopy", "canopy_layer",
            "leaf_class", "leaf", "stomata",
        ]
        objects = [db.create(name) for name in chain]
        for parent, child in zip(objects, objects[1:]):
            db.link(parent, child.class_name, child)
        db.set_attribute(objects[-1], "conductance", 0.4)

        engine = Disambiguator(cupid)
        result = engine.complete("experiment ~ conductance")
        assert result.is_unique
        assert evaluate(db, result.paths[0]) == {0.4}
