"""Semantic length of paths (paper Section 3.3.2).

The semantic length of a path measures the semantic distance between the
concepts at its two ends.  It is defined by a conceptual restructuring of
the path's connector sequence:

1. any maximal contiguous run of one of ``@>``, ``<@``, ``$>``, ``<$``
   (the connectors on which ``CON_c`` is idempotent) is replaced by a
   single edge with the same connector;
2. in the result, the first (or last) edge of any maximal contiguous
   series of interchanged ``@>`` and ``<@`` connectors is removed.

The semantic length is the number of edges remaining.  Consequences:

* a single Isa or May-Be edge has semantic length 0;
* chains of the same part-whole connector count once;
* ``.`` edges always contribute their actual count;
* alternating Isa/May-Be blocks of k collapsed edges contribute k - 1.

Paper examples (verified in the tests)::

    teacher.teach.student.department$>professor            -> 4
    stuff@>employee<@teacher<@instructor<@ta@>grad@>student -> 2

This module provides a closed-form computation over concrete connector
sequences and an incremental :class:`SemanticLengthState` that composes
associatively — the paper's footnote 3 notes that labels must carry the
connectors of the first and last edge for exactly this purpose.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

from repro.algebra.connectors import ALL_CONNECTORS, Connector

__all__ = [
    "COLLAPSIBLE",
    "collapse_runs",
    "semantic_length_of",
    "SemanticLengthState",
]

#: Connectors whose maximal runs collapse to a single edge (step 1).
COLLAPSIBLE = frozenset(
    {
        Connector.ISA,
        Connector.MAY_BE,
        Connector.HAS_PART,
        Connector.IS_PART_OF,
    }
)

_TAXONOMIC = frozenset({Connector.ISA, Connector.MAY_BE})


def collapse_runs(connectors: Iterable[Connector]) -> list[Connector]:
    """Apply restructuring step 1: collapse runs of collapsible connectors."""
    collapsed: list[Connector] = []
    for connector in connectors:
        if (
            collapsed
            and connector in COLLAPSIBLE
            and collapsed[-1] is connector
        ):
            continue
        collapsed.append(connector)
    return collapsed


def semantic_length_of(connectors: Sequence[Connector]) -> int:
    """Closed-form semantic length of a concrete connector sequence.

    Equals the collapsed edge count minus the number of maximal
    alternating ``@>``/``<@`` blocks (each block donates one free edge —
    restructuring step 2).
    """
    collapsed = collapse_runs(connectors)
    blocks = 0
    in_block = False
    for connector in collapsed:
        if connector in _TAXONOMIC:
            if not in_block:
                blocks += 1
                in_block = True
        else:
            in_block = False
    return len(collapsed) - blocks


@dataclasses.dataclass(frozen=True, slots=True)
class SemanticLengthState:
    """Incrementally composable semantic length of a path.

    Besides the ``length`` itself, the state carries the first and last
    *collapsed* edge connectors of the path — the boundary information
    the paper's footnote 3 says a label needs so that semantic length can
    be computed as part of ``CON``.

    The empty path is represented by ``first is None`` (and then
    ``last is None`` and ``length == 0``).
    """

    length: int = 0
    first: Connector | None = None
    last: Connector | None = None

    @classmethod
    def empty(cls) -> "SemanticLengthState":
        """State of the empty path (semantic length 0)."""
        return cls()

    @classmethod
    def for_edge(cls, connector: Connector) -> "SemanticLengthState":
        """State of a single-edge path (interned: one instance per
        connector, since the state is frozen and fully determined by it).

        Isa/May-Be edges have semantic length 0 (they form a singleton
        alternating block, whose one edge is removed by step 2).
        """
        return _EDGE_STATES[connector.index]

    @classmethod
    def of(cls, connectors: Iterable[Connector]) -> "SemanticLengthState":
        """Fold a whole connector sequence into a state."""
        state = cls.empty()
        for connector in connectors:
            state = state.extend(connector)
        return state

    @property
    def is_empty(self) -> bool:
        return self.first is None

    def extend(self, connector: Connector) -> "SemanticLengthState":
        """Append one edge to the path."""
        return self.join(SemanticLengthState.for_edge(connector))

    def join(self, other: "SemanticLengthState") -> "SemanticLengthState":
        """Concatenate two path states (the semantic-length half of CON).

        The seam adjustment covers the two restructuring interactions:

        * equal collapsible connectors at the seam merge into one run
          (collapsible non-taxonomic: one edge disappears, -1; taxonomic:
          the alternating blocks also merge, net 0);
        * distinct taxonomic connectors at the seam merge two alternating
          blocks into one, forfeiting one of the two free edges (+1).
        """
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        seam_left = self.last
        seam_right = other.first
        assert seam_left is not None and seam_right is not None
        adjustment = 0
        if seam_left is seam_right and seam_left in COLLAPSIBLE:
            if seam_left not in _TAXONOMIC:
                adjustment = -1
        elif seam_left in _TAXONOMIC and seam_right in _TAXONOMIC:
            adjustment = 1
        return SemanticLengthState(
            length=self.length + other.length + adjustment,
            first=self.first,
            last=other.last,
        )


#: Interned single-edge states, indexed by connector index (see
#: :meth:`SemanticLengthState.for_edge`).
_EDGE_STATES: tuple[SemanticLengthState, ...] = tuple(
    SemanticLengthState(
        length=0 if connector in _TAXONOMIC else 1,
        first=connector,
        last=connector,
    )
    for connector in ALL_CONNECTORS
)
