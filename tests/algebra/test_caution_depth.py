"""Depth-stability of caution sets.

The caution-set definition quantifies over a single continuation label
L3.  Because every composed label's connector is itself in Sigma (the
alphabet is closed under CON_c), divergence after *any* number of
continuation steps is witnessed by some single L3 — so computing the
sets at depth 1 is complete.  These tests verify that claim directly
by brute-forcing depth-2 continuations.
"""

import itertools

from repro.algebra.caution import compute_caution_sets
from repro.algebra.con_table import con_c
from repro.algebra.connectors import ALL_CONNECTORS
from repro.algebra.order import DEFAULT_ORDER, rank_order


def _depth2_caution(order):
    """Caution sets recomputed with two-step continuations."""
    sets = {}
    for c1 in ALL_CONNECTORS:
        dangerous = set()
        for c2 in ALL_CONNECTORS:
            if not order.better(c2, c1):
                continue
            for c3, c4 in itertools.product(ALL_CONNECTORS, repeat=2):
                left = con_c(con_c(c1, c3), c4)
                right = con_c(con_c(c2, c3), c4)
                if left is not right and order.incomparable(left, right):
                    dangerous.add(c2)
                    break
        sets[c1] = frozenset(dangerous)
    return sets


class TestDepthStability:
    def test_depth2_adds_nothing_default_order(self):
        depth1 = compute_caution_sets(DEFAULT_ORDER)
        depth2 = _depth2_caution(DEFAULT_ORDER)
        for connector in ALL_CONNECTORS:
            assert depth2[connector] <= depth1[connector], connector.symbol

    def test_depth2_adds_nothing_rank_order(self):
        order = rank_order()
        depth1 = compute_caution_sets(order)
        depth2 = _depth2_caution(order)
        for connector in ALL_CONNECTORS:
            assert depth2[connector] <= depth1[connector], connector.symbol

    def test_depth1_witnesses_realizable_via_single_step(self):
        """Every caution entry must have a single-step witness — that's
        the definition; this is the sanity direction."""
        sets = compute_caution_sets(DEFAULT_ORDER)
        for c1, dangerous in sets.items():
            for c2 in dangerous:
                witnessed = any(
                    con_c(c1, c3) is not con_c(c2, c3)
                    and DEFAULT_ORDER.incomparable(
                        con_c(c1, c3), con_c(c2, c3)
                    )
                    for c3 in ALL_CONNECTORS
                )
                assert witnessed, (c1.symbol, c2.symbol)
