"""Tests for database persistence."""

import json

import pytest

from repro.errors import SerializationError
from repro.model.instances import Database
from repro.model.persistence import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.query.evaluator import evaluate


@pytest.fixture()
def db(university):
    db = Database(university)
    alice = db.create("student")
    bob = db.create("ta")
    course = db.create("course")
    db.set_attribute(alice, "name", "alice")
    db.set_attribute(bob, "name", "bob")
    db.set_attribute(bob, "ssn", 7)
    db.set_attribute(course, "name", "cs101")
    db.link(alice, "take", course)
    db.link(bob, "take", course)
    return db


def _signature(database):
    return (
        [(o.oid, o.class_name) for o in database.objects()],
        sorted(database.iter_links()),
        sorted(database.iter_attributes()),
    )


class TestRoundTrip:
    def test_dict_round_trip(self, db):
        restored = database_from_dict(database_to_dict(db))
        assert _signature(restored) == _signature(db)

    def test_file_round_trip(self, db, tmp_path):
        path = tmp_path / "db.json"
        save_database(db, path)
        restored = load_database(path)
        assert _signature(restored) == _signature(db)

    def test_document_is_json_serializable(self, db):
        json.dumps(database_to_dict(db))

    def test_restored_database_evaluates_identically(self, db):
        restored = database_from_dict(database_to_dict(db))
        for expression in (
            "student@>person.name",
            "course.student@>person.name",
            "ta@>grad@>student.take.name",
        ):
            assert evaluate(restored, expression) == evaluate(db, expression)

    def test_restore_with_external_schema(self, db, university):
        restored = database_from_dict(
            database_to_dict(db), schema=university
        )
        assert len(restored) == len(db)

    def test_inverse_links_restored(self, db):
        restored = database_from_dict(database_to_dict(db))
        course = next(o for o in restored.objects() if o.class_name == "course")
        assert len(restored.linked(course, "student")) == 2

    def test_empty_database_round_trips(self, university):
        db = Database(university)
        restored = database_from_dict(database_to_dict(db))
        assert len(restored) == 0


class TestErrors:
    def test_wrong_format(self):
        with pytest.raises(SerializationError):
            database_from_dict({"format": "nope", "version": 1})

    def test_wrong_version(self):
        with pytest.raises(SerializationError):
            database_from_dict({"format": "repro-database", "version": 9})

    def test_missing_field(self, db):
        document = database_to_dict(db)
        del document["objects"]
        with pytest.raises(SerializationError):
            database_from_dict(document)

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("]")
        with pytest.raises(SerializationError):
            load_database(path)
