"""Run every experiment and print the paper-vs-measured report.

``python -m repro.experiments.runner`` regenerates, in order:

* Figure 5 (average recall vs E),
* Figure 6 (average precision vs E, with/without domain knowledge),
* Figure 7 (response time per query at E=5),
* the Section 5.3 in-text statistics,
* the worked examples of Sections 1-2 on the university schema,
* ablations A1 (order variants), A2 (caution sets), A4 (vs exhaustive),
* the designer session (schema deltas vs rebuild-per-edit),
* the search-audit check: every closure-loop divergence from the
  reference loop is an admissible cut, and every ranked completion's
  per-edge score decomposition re-sums to its semantic length.

A full run takes a few minutes (Figure 7 at E=5 dominates); pass
``--quick`` to sweep E only to 3 and reuse it for Figure 7.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.compiled import compile_schema
from repro.core.engine import Disambiguator
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, get_metrics, use_metrics
from repro.obs.schema import validate_metrics_summary
from repro.obs.slowlog import get_slowlog
from repro.experiments.ablation import (
    run_caution_ablation,
    run_exhaustive_comparison,
    run_order_ablation,
)
from repro.experiments.figure5 import render_figure5, run_figure5
from repro.experiments.figure6 import render_figure6, run_figure6
from repro.experiments.figure7 import render_figure7, run_figure7
from repro.experiments.intext import render_intext_stats, run_intext_stats
from repro.experiments.reporting import table
from repro.experiments.workload import (
    build_cupid_workload,
    designer_domain_knowledge,
)
from repro.schemas.cupid import build_cupid_schema
from repro.schemas.university import build_university_schema

__all__ = ["run_all", "main"]


def _banner(title: str) -> str:
    rule = "=" * 72
    return f"\n{rule}\n{title}\n{rule}"


def run_all(
    quick: bool = False,
    out=sys.stdout,
    csv_dir: str | None = None,
    jobs: int = 1,
) -> None:
    """Run every experiment, streaming the report to ``out``.

    With ``csv_dir`` set, the Figure 5/6/7 series are also exported as
    CSV files into that directory (created if needed).

    ``jobs > 1`` runs each figure workload's cold completions on a
    thread pool (see :func:`repro.experiments.harness.run_workload`);
    every reported number is unchanged.

    The whole run records into a :mod:`repro.obs` metrics registry (the
    ambient one if a caller installed one, a fresh one otherwise) and
    ends with its schema-validated summary, so every figure report
    carries the accumulated traversal/prune/cache counters behind it.
    """
    registry = get_metrics()
    if registry.is_noop:
        registry = MetricsRegistry()
    with use_metrics(registry):
        _run_all_inner(quick=quick, out=out, csv_dir=csv_dir, jobs=jobs)
    slowlog = get_slowlog()
    if slowlog.enabled and len(slowlog.entries()) > 0:
        print(_banner("Slow queries (tail-based log)"), file=out)
        print(slowlog.render(limit=10), file=out)
    print(_banner("Metrics summary (repro.obs)"), file=out)
    summary = registry.as_dict()
    validate_metrics_summary(summary)
    print(json.dumps(summary, indent=2, sort_keys=True), file=out)


#: Per-query retry count for the figure workloads (transient failures
#: — injected chaos faults, deadline trips under load — often clear).
_QUERY_RETRIES = 1


def _run_all_inner(
    quick: bool = False,
    out=sys.stdout,
    csv_dir: str | None = None,
    jobs: int = 1,
) -> None:
    started = time.perf_counter()
    schema = build_cupid_schema()
    oracle = build_cupid_workload()
    knowledge = designer_domain_knowledge()
    e_values = (1, 2, 3) if quick else (1, 2, 3, 4, 5)
    figure7_e = 3 if quick else 5

    #: (where, error text) pairs for the end-of-report failure section.
    failures: list[tuple[str, str]] = []

    def harvest(section: str, outcomes) -> None:
        """Collect per-query failures a continue-on-error workload ate."""
        for outcome in outcomes:
            if outcome.failed:
                failures.append(
                    (
                        f"{section}: {outcome.query.query_id} "
                        f"(E={outcome.e})",
                        outcome.error,
                    )
                )

    def guarded(section: str, body):
        """Run one report section; a ReproError fails the section, not
        the whole experiment run."""
        try:
            return body()
        except ReproError as error:
            failures.append((section, f"{type(error).__name__}: {error}"))
            print(f"!! section failed: {error}", file=out)
            return None

    export_to = None
    if csv_dir is not None:
        from pathlib import Path

        export_to = Path(csv_dir)
        export_to.mkdir(parents=True, exist_ok=True)

    # Compile once; every figure, ablation, and engine below shares these
    # two artifacts (with/without domain knowledge) through the registry.
    compiled = compile_schema(schema)
    compiled_with_knowledge = compile_schema(schema, domain_knowledge=knowledge)

    print(_banner("Schema under test"), file=out)
    print(schema.summary(), file=out)
    print(
        f"compiled fingerprint {compiled.fingerprint[:16]}... in "
        f"{compiled.compile_seconds * 1000:.1f}ms "
        f"(+{compiled_with_knowledge.compile_seconds * 1000:.1f}ms with "
        "domain knowledge)",
        file=out,
    )

    print(_banner("Workload (the ten ad-hoc incomplete path expressions)"), file=out)
    print(
        table(
            ["id", "query", "|U0|", "note"],
            [
                (
                    query.query_id,
                    query.text,
                    len(query.intended),
                    query.note,
                )
                for query in oracle
            ],
        ),
        file=out,
    )

    print(_banner("Figure 5: average recall vs E"), file=out)

    def _figure5():
        result = run_figure5(
            schema,
            oracle,
            e_values,
            continue_on_error=True,
            retries=_QUERY_RETRIES,
            jobs=jobs,
        )
        for point in result.points:
            harvest("figure5", point.outcomes)
        print(render_figure5(result), file=out)
        return result

    figure5 = guarded("figure5", _figure5)

    print(_banner("Figure 6: average precision vs E"), file=out)

    def _figure6():
        result = run_figure6(
            schema,
            oracle,
            knowledge,
            e_values,
            continue_on_error=True,
            retries=_QUERY_RETRIES,
            jobs=jobs,
        )
        for point in result.without_dk + result.with_dk:
            harvest("figure6", point.outcomes)
        print(render_figure6(result), file=out)
        return result

    figure6 = guarded("figure6", _figure6)

    print(_banner(f"Figure 7: response time per query (E={figure7_e})"), file=out)

    def _figure7():
        result = run_figure7(
            schema,
            oracle,
            e=figure7_e,
            continue_on_error=True,
            retries=_QUERY_RETRIES,
            jobs=jobs,
        )
        harvest("figure7", result.outcomes)
        print(render_figure7(result), file=out)
        return result

    figure7 = guarded("figure7", _figure7)

    if export_to is not None and None not in (figure5, figure6, figure7):
        from repro.experiments.export import (
            export_figure6_csv,
            export_figure7_csv,
            export_sweep_csv,
        )

        export_sweep_csv(figure5.points, export_to / "figure5_recall.csv")
        export_figure6_csv(figure6, export_to / "figure6_precision.csv")
        export_figure7_csv(figure7, export_to / "figure7_response_time.csv")
        print(f"\nCSV series written to {export_to}", file=out)

    print(_banner("In-text statistics"), file=out)
    cap = 50_000 if quick else 200_000
    guarded(
        "in-text statistics",
        lambda: print(
            render_intext_stats(
                run_intext_stats(schema, oracle, enumeration_cap=cap)
            ),
            file=out,
        ),
    )

    print(_banner("Worked examples (university schema, Sections 1-2)"), file=out)

    def _worked_examples():
        university = build_university_schema()
        engine = Disambiguator(university)
        result = engine.complete("ta ~ name")
        print("ta ~ name ->", file=out)
        for path in result.paths:
            print(f"  {path}  {path.label()}", file=out)

    guarded("worked examples", _worked_examples)

    print(_banner("Ablation A1: partial-order variants (E=1)"), file=out)

    def _ablation_a1():
        rows = run_order_ablation(schema, oracle, e=1)
        print(
            table(
                ["order", "avg recall", "avg precision", "avg |S|"],
                [
                    (
                        row.order_name,
                        f"{row.average_recall:.2f}",
                        f"{row.average_precision:.2f}",
                        f"{row.average_returned:.1f}",
                    )
                    for row in rows
                ],
            ),
            file=out,
        )

    guarded("ablation A1", _ablation_a1)

    print(_banner("Ablation A2: caution sets on/off (E=1)"), file=out)

    def _ablation_a2():
        caution_rows = run_caution_ablation(schema, oracle, e=1)
        print(
            table(
                ["query", "paths (caution)", "paths (no caution)", "lost"],
                [
                    (
                        row.query_id,
                        row.paths_with_caution,
                        row.paths_without_caution,
                        len(row.lost_paths),
                    )
                    for row in caution_rows
                ],
            ),
            file=out,
        )

    guarded("ablation A2", _ablation_a2)

    print(
        _banner(
            "Ablation A4: Algorithm 2 node visits vs (capped) candidate "
            "enumeration (E=1)"
        ),
        file=out,
    )

    def _ablation_a4():
        cap = 50_000 if quick else 200_000
        comparison = run_exhaustive_comparison(
            schema, oracle, e=1, enumeration_cap=cap, max_visits=cap * 10
        )
        print(
            table(
                ["query", "alg paths", "alg calls", "consistent paths (capped)"],
                [
                    (
                        row.query_id,
                        row.algorithm_paths,
                        row.algorithm_calls,
                        row.enumerated_paths,
                    )
                    for row in comparison
                ],
            ),
            file=out,
        )
        print(
            "(exact-agreement checking against full enumeration runs on the\n"
            " university schema in benchmarks/bench_vs_exhaustive.py; the\n"
            " CUPID-scale enumeration here is budget-capped, so only the\n"
            " node-visit advantage is meaningful)",
            file=out,
        )

    guarded("ablation A4", _ablation_a4)

    print(
        _banner("Designer session: schema deltas vs rebuild-per-edit"),
        file=out,
    )

    def _designer():
        from repro.experiments.designer import (
            compare_designer_modes,
            render_designer_session,
        )

        incremental, rebuild = compare_designer_modes()
        print(render_designer_session(incremental, rebuild), file=out)

    guarded("designer session", _designer)

    print(
        _banner("Search audit: closure cuts vs reference, score re-sum"),
        file=out,
    )

    def _audit():
        from repro.core.audit import decompose_path, diff_modes

        queries = [query.text for query in oracle]
        if quick:
            queries = queries[:3]
        all_ok = True
        for text in queries:
            diff = diff_modes(schema, text, e=1)
            all_ok = all_ok and diff.ok
            print(diff.render(), file=out)
        # Every ranked completion's per-edge deltas must telescope to
        # its reported semantic length (decompose_path raises if not).
        billed = 0
        for text in queries:
            result = compiled.complete_simple(
                *(part.strip() for part in text.split("~")), e=1
            )
            for path in result.paths:
                decompose_path(path)
                billed += 1
        print(
            f"score decomposition re-sums exactly for {billed} ranked "
            f"completion(s) across {len(queries)} queries",
            file=out,
        )
        if not all_ok:
            failures.append(
                ("search audit", "unexplained reference/closure divergence")
            )

    guarded("search audit", _audit)

    print(_banner("Failures"), file=out)
    if failures:
        print(
            table(
                ["where", "error"],
                [(where, text) for where, text in failures],
            ),
            file=out,
        )
        print(
            f"{len(failures)} failure(s); every other section completed "
            "(per-query failures were retried "
            f"{_QUERY_RETRIES} time(s) before being recorded)",
            file=out,
        )
    else:
        print("none — every section and query completed", file=out)

    info = compiled.cache_info()
    info_knowledge = compiled_with_knowledge.cache_info()
    print(
        "\ncompletion cache: "
        f"{info['hits']} hits / {info['misses']} misses (base), "
        f"{info_knowledge['hits']} hits / {info_knowledge['misses']} misses "
        "(with domain knowledge)",
        file=out,
    )
    print(
        f"total experiment time: {time.perf_counter() - started:.1f}s",
        file=out,
    )


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point for the experiments runner."""
    parser = argparse.ArgumentParser(
        description="Regenerate every figure and statistic of the paper."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="sweep E only to 3 (minutes -> seconds)",
    )
    parser.add_argument(
        "--csv-dir",
        metavar="DIR",
        help="also export the figure series as CSV files",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for cold workload completions",
    )
    arguments = parser.parse_args(argv)
    run_all(
        quick=arguments.quick,
        csv_dir=arguments.csv_dir,
        jobs=arguments.jobs,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
