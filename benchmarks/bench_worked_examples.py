"""Bench E5 — the worked examples of paper Sections 1-2 on the
university schema, as a true microbenchmark (many rounds).

``ta ~ name`` must complete to exactly the two Isa-chain paths; this
also times the core completion fast path.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.completion import complete_paths
from repro.core.target import RelationshipTarget
from repro.model.graph import SchemaGraph

EXPECTED = [
    "ta@>grad@>student@>person.name",
    "ta@>instructor@>teacher@>employee@>person.name",
]


@pytest.mark.benchmark(group="worked-examples")
def test_ta_name_completion(benchmark, university):
    graph = SchemaGraph(university)
    target = RelationshipTarget("name")

    result = benchmark(lambda: complete_paths(graph, "ta", target))
    emit(
        "Worked example: ta ~ name",
        "\n".join(f"  {p}  {p.label()}" for p in result.paths),
    )
    assert result.expressions == EXPECTED


@pytest.mark.benchmark(group="worked-examples")
def test_department_ssn_completion(benchmark, university):
    graph = SchemaGraph(university)
    target = RelationshipTarget("ssn")

    result = benchmark(lambda: complete_paths(graph, "department", target))
    assert result.paths
    assert all(p.edges[-1].name == "ssn" for p in result.paths)


@pytest.mark.benchmark(group="worked-examples")
def test_complete_expression_validation(benchmark, university):
    from repro.core.engine import Disambiguator

    engine = Disambiguator(university)
    result = benchmark(
        lambda: engine.complete("department.student@>person.name")
    )
    assert result.is_unique
