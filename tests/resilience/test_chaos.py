"""Chaos suite: seeded fault storms against the whole pipeline.

Each scenario drives real completions through an artifact whose graph,
cache, or clock misbehaves on a deterministic schedule, and asserts the
resilience contract:

* typed errors only — injected faults surface as ``ReproError``
  subclasses, never raw exceptions;
* the completion cache never holds a non-exhausted result, no matter
  how the run was interrupted;
* the interactive session and the experiment harness keep going.
"""

import pytest

from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.errors import ReproError
from repro.experiments.harness import run_workload
from repro.experiments.workload import build_cupid_workload
from repro.query.session import CompletionSession
from repro.resilience.budget import Budget, use_budget
from repro.resilience.faults import FakeClock, FaultPlan, inject

SEEDS = (0, 1, 2, 7, 1994)


def _assert_cache_is_clean(compiled):
    """The hard invariant: every cached value is exhausted."""
    cache = compiled.cache
    data = getattr(cache, "_cache", cache)._data  # unwrap FaultyCache
    for value in data.values():
        assert value.exhausted, value.truncation_reason


class TestChaosCompletions:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_edge_faults_surface_as_typed_errors(self, university, seed):
        compiled = CompiledSchema(university)
        plan = FaultPlan(seed=seed, edge_fail_rate=0.2)
        survived = failed = 0
        with inject(compiled, plan):
            engine = Disambiguator(compiled)
            for _ in range(20):
                try:
                    result = engine.complete("ta ~ name")
                    assert result.exhausted
                    survived += 1
                except ReproError:
                    failed += 1
        assert survived + failed == 20
        _assert_cache_is_clean(compiled)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cache_faults_never_change_answers(self, university, seed):
        compiled = CompiledSchema(university)
        reference = Disambiguator(compiled).complete("ta ~ name")
        compiled.cache.clear()
        plan = FaultPlan(
            seed=seed, cache_miss_rate=0.5, cache_drop_rate=0.5
        )
        with inject(compiled, plan):
            engine = Disambiguator(compiled)
            for _ in range(10):
                result = engine.complete("ta ~ name")
                # A cache that forgets degrades speed, never answers.
                assert result.paths == reference.paths
            _assert_cache_is_clean(compiled)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_budget_storms_never_poison_the_cache(self, cupid, seed):
        """Random tiny budgets over a real workload: whatever trips,
        the cache only ever accumulates exhaustive results."""
        import random

        rng = random.Random(seed)
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=2)
        queries = [q.text for q in build_cupid_workload()]
        for _ in range(15):
            budget = Budget(
                max_nodes=rng.randrange(10, 2000), partial_ok=True
            )
            result = engine.complete(rng.choice(queries), budget=budget)
            if result.is_partial:
                assert result.truncation_reason is not None
            _assert_cache_is_clean(compiled)

    def test_deadline_chaos_on_virtual_clock(self, university):
        """Injected latency against a virtual deadline: deterministic
        deadline trips without real sleeping."""
        clock = FakeClock()
        compiled = CompiledSchema(university)
        plan = FaultPlan(seed=3, edge_latency=0.02, clock=clock)
        with inject(compiled, plan):
            engine = Disambiguator(compiled)
            result = engine.complete(
                "ta ~ name",
                budget=Budget(
                    max_seconds=0.05,
                    clock=clock,
                    check_interval=1,
                    partial_ok=True,
                ),
            )
        assert result.is_partial
        assert result.truncation_reason == "deadline"
        _assert_cache_is_clean(compiled)


class TestChaosSession:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_session_survives_fault_storm(self, university, seed):
        from repro.model.instances import Database

        database = Database(university)
        compiled = CompiledSchema(database.schema)
        plan = FaultPlan(seed=seed, edge_fail_rate=0.3)
        with inject(compiled, plan):
            session = CompletionSession(database, compiled=compiled)
            for _ in range(10):
                interaction = session.ask("ta ~ name")
                # Either a normal round or a message-carrying failure —
                # never an escaped exception.
                assert interaction.input_text == "ta ~ name"
                if interaction.message.startswith("error:"):
                    assert not interaction.approved
        assert len(session.history) == 10
        _assert_cache_is_clean(compiled)


class TestChaosHarness:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_workload_continues_past_faults(self, cupid, seed):
        compiled = CompiledSchema(cupid)
        plan = FaultPlan(seed=seed, edge_fail_rate=0.05)
        with inject(compiled, plan):
            outcomes = run_workload(
                cupid,
                build_cupid_workload(),
                e=1,
                compiled=compiled,
                continue_on_error=True,
                retries=1,
            )
        assert len(outcomes) == len(build_cupid_workload())
        for outcome in outcomes:
            if outcome.failed:
                assert "Error" in outcome.error
        _assert_cache_is_clean(compiled)

    def test_workload_under_ambient_budget_completes(self, cupid):
        compiled = CompiledSchema(cupid)
        with use_budget(Budget(max_nodes=500, partial_ok=True)):
            outcomes = run_workload(
                cupid,
                build_cupid_workload(),
                e=1,
                compiled=compiled,
                continue_on_error=True,
            )
        assert len(outcomes) == len(build_cupid_workload())
        _assert_cache_is_clean(compiled)
