"""The connector composition function ``CON_c`` (paper Table 1).

``con_c(r, c)`` answers: if class A is ``r``-related to class X and X is
``c``-related to class B, what (possibly indirect) relationship holds
from A to B?

The paper prints the table for the eight non-Possibly connectors and
states the Possibly rule in prose: *once any argument is a Possibly
connector, the result is the Possibly version of the plain result*.
(Isa and May-Be can never result from a composition involving a Possibly
argument, so the rule is total.)

The printed table in our source text is partially garbled; the base
table below is reconstructed from the legible entries, the worked
examples of Section 3.3.1, the identity property of ``@>``, and the
definitional compositions

* ``.SB  =  $> ; <$``   (Shares-SubParts-With),
* ``.SP  =  <$ ; $>``   (Shares-SuperParts-With),

which force most remaining entries via associativity.  The test suite
machine-checks associativity over all 14^3 triples.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra.connectors import ALL_CONNECTORS, Connector

__all__ = ["con_c", "con_c_sequence", "BASE_TABLE"]

_ISA = Connector.ISA
_MAY = Connector.MAY_BE
_HP = Connector.HAS_PART
_PO = Connector.IS_PART_OF
_AS = Connector.ASSOC
_SB = Connector.SHARES_SUBPARTS
_SP = Connector.SHARES_SUPERPARTS
_IN = Connector.INDIRECT_ASSOC

# Row connector -> column connector -> result, for the 8 base connectors.
# Row = the relationship accumulated so far; column = the next step.
BASE_TABLE: dict[Connector, dict[Connector, Connector]] = {
    _ISA: {  # @> is the identity of CON (property 4)
        _ISA: _ISA, _MAY: _MAY, _HP: _HP, _PO: _PO,
        _AS: _AS, _SB: _SB, _SP: _SP, _IN: _IN,
    },
    _MAY: {  # a May-Be prefix makes everything after it only Possibly hold
        _ISA: _MAY,
        _MAY: _MAY,
        _HP: _HP.possibly,
        _PO: _PO.possibly,
        _AS: _AS.possibly,
        _SB: _SB.possibly,
        _SP: _SP.possibly,
        _IN: _IN.possibly,
    },
    _HP: {
        _ISA: _HP,              # parts that are all B => has-part B
        _MAY: _HP.possibly,     # parts that may be B  => possibly-has-part
        _HP: _HP,               # has-part is transitive
        _PO: _SB,               # engine $> screw <$ chassis => .SB
        _AS: _IN,
        _SB: _SB,               # $> ; ($> ; <$)  =  ($> ; $>) ; <$  =  .SB
        _SP: _IN,
        _IN: _IN,
    },
    _PO: {
        _ISA: _PO,
        _MAY: _PO.possibly,
        _HP: _SP,               # motor <$ assembly $> shaft => .SP
        _PO: _PO,               # is-part-of is transitive
        _AS: _IN,
        _SB: _IN,
        _SP: _SP,               # <$ ; (<$ ; $>)  =  (<$ ; <$) ; $>  =  .SP
        _IN: _IN,
    },
    _AS: {
        _ISA: _AS,
        _MAY: _AS.possibly,     # course . teacher <@ professor => .*
        _HP: _IN,
        _PO: _IN,
        _AS: _IN,               # dept . student . course => dept .. course
        _SB: _IN,
        _SP: _IN,
        _IN: _IN,
    },
    _SB: {
        _ISA: _SB,
        _MAY: _SB.possibly,
        _HP: _IN,               # ($> ; <$) ; $>  =  $> ; .SP  =  ..
        _PO: _SB,               # ($> ; <$) ; <$  =  $> ; <$  =  .SB
        _AS: _IN,
        _SB: _IN,
        _SP: _IN,
        _IN: _IN,
    },
    _SP: {
        _ISA: _SP,
        _MAY: _SP.possibly,
        _HP: _SP,               # (<$ ; $>) ; $>  =  <$ ; $>  =  .SP
        _PO: _IN,               # (<$ ; $>) ; <$  =  <$ ; .SB  =  ..
        _AS: _IN,
        _SB: _IN,
        _SP: _IN,
        _IN: _IN,
    },
    _IN: {
        _ISA: _IN,
        _MAY: _IN.possibly,
        _HP: _IN, _PO: _IN, _AS: _IN, _SB: _IN, _SP: _IN, _IN: _IN,
    },
}


# The full 14x14 table, expanded once at import time (the completion
# algorithm calls con_c on its innermost loop).
_FULL_TABLE: dict[Connector, dict[Connector, Connector]] = {}

# Positional twin of _FULL_TABLE: _INDEX_TABLE[first.index][second.index].
# Tuple indexing skips the enum hashing that dict lookups pay, which is
# measurable on the traversal's innermost loop.
_INDEX_TABLE: tuple[tuple[Connector, ...], ...] = ()


def _expand_full_table() -> None:
    global _INDEX_TABLE
    for first in Connector:
        row: dict[Connector, Connector] = {}
        for second in Connector:
            result = BASE_TABLE[first.base][second.base]
            if first.is_possibly or second.is_possibly:
                result = result.possibly
            row[second] = result
        _FULL_TABLE[first] = row
    _INDEX_TABLE = tuple(
        tuple(_FULL_TABLE[first][second] for second in ALL_CONNECTORS)
        for first in ALL_CONNECTORS
    )


_expand_full_table()


def con_c(first: Connector, second: Connector) -> Connector:
    """Compose two connectors (the paper's ``CON_c``).

    ``first`` labels the path so far, ``second`` the next step.  Closed
    over the full 14-connector alphabet: Possibly arguments are composed
    via their bases and the result re-starred (the paper's prose rule).
    """
    return _INDEX_TABLE[first.index][second.index]


def con_c_sequence(connectors: Iterable[Connector]) -> Connector:
    """Fold ``con_c`` over a connector sequence, left to right.

    The empty sequence yields the identity ``@>`` (property 4).
    Associativity (property 1, machine-checked in the tests) guarantees
    that any other fold order gives the same answer.
    """
    result = Connector.ISA
    for connector in connectors:
        result = con_c(result, connector)
    return result
