"""Tests for caution sets (Section 4.1)."""

from repro.algebra.caution import CautionSets, compute_caution_sets
from repro.algebra.connectors import ALL_CONNECTORS, Connector
from repro.algebra.labels import PathLabel
from repro.algebra.order import DEFAULT_ORDER, flat_order
from repro.algebra.properties import check_distributivity_failures


def label_of(*connectors):
    return PathLabel.of_path(list(connectors))


class TestComputation:
    def test_members_are_strictly_better_than_the_owner(self):
        sets = compute_caution_sets(DEFAULT_ORDER)
        for owner, dangerous in sets.items():
            for member in dangerous:
                assert DEFAULT_ORDER.better(member, owner)

    def test_nonempty_for_the_default_order(self):
        """Distributivity fails (paper Section 3.5), so some caution set
        must be nonempty."""
        sets = compute_caution_sets(DEFAULT_ORDER)
        assert any(dangerous for dangerous in sets.values())

    def test_covers_every_distributivity_failure(self):
        """Each witness (c1, c2, c3) of non-distributivity must place c2
        in caution(c1) — otherwise Algorithm 2 would prune unsafely."""
        sets = compute_caution_sets(DEFAULT_ORDER)
        for c1, c2, c3 in check_distributivity_failures(DEFAULT_ORDER):
            assert c2 in sets[c1], (c1.symbol, c2.symbol, c3.symbol)

    def test_flat_order_has_empty_caution_sets(self):
        """With nothing comparable, nothing can be cautiously better."""
        sets = compute_caution_sets(flat_order())
        assert all(not dangerous for dangerous in sets.values())


class TestCautionSetsObject:
    def test_cache_shares_computation(self):
        first = CautionSets(DEFAULT_ORDER)
        second = CautionSets(DEFAULT_ORDER)
        assert first.of(Connector.INDIRECT_ASSOC) == second.of(
            Connector.INDIRECT_ASSOC
        )

    def test_intersects(self):
        caution = CautionSets(DEFAULT_ORDER)
        owner = None
        for connector in ALL_CONNECTORS:
            if caution.of(connector):
                owner = connector
                break
        assert owner is not None
        better = next(iter(caution.of(owner)))
        dominated = label_of(*_some_path_with_connector(owner))
        strong = label_of(*_some_path_with_connector(better))
        assert caution.intersects(dominated, [strong])
        assert not caution.intersects(dominated, [])

    def test_of_label_matches_of_connector(self):
        caution = CautionSets(DEFAULT_ORDER)
        label = label_of(Connector.HAS_PART, Connector.IS_PART_OF)
        assert caution.of_label(label) == caution.of(label.connector)

    def test_repr(self):
        assert "default" in repr(CautionSets(DEFAULT_ORDER))

    def test_cache_keyed_by_order_content_not_identity(self):
        """Regression: the class-level cache was once keyed by
        ``id(order)``, which CPython reuses after garbage collection —
        a dead order's sets could leak into an unrelated order."""
        from repro.algebra.order import default_order

        CautionSets.clear_cache()
        first = CautionSets(default_order())
        # A content-equal order built later (different object, possibly
        # a recycled id) must share the computed sets...
        second = CautionSets(default_order())
        assert first._sets is second._sets
        # ...which id()-keying only achieves by accident.
        assert default_order() is not default_order()


def _some_path_with_connector(target):
    """A short primary-connector sequence whose CON equals ``target``."""
    from itertools import product

    from repro.algebra.con_table import con_c_sequence
    from repro.algebra.connectors import PRIMARY_CONNECTORS

    for length in (1, 2, 3):
        for sequence in product(PRIMARY_CONNECTORS, repeat=length):
            if con_c_sequence(sequence) is target:
                return sequence
    raise AssertionError(f"no short path realizes {target.symbol}")
