"""Evaluation harness: metrics, the simulated designer oracle, the ten
workload queries, the Figure 5/6/7 and in-text-statistics regenerators,
and the ablation studies."""

from repro.experiments.ablation import (
    run_caution_ablation,
    run_exhaustive_comparison,
    run_order_ablation,
)
from repro.experiments.export import (
    export_figure6_csv,
    export_figure7_csv,
    export_outcomes_csv,
    export_sweep_csv,
)
from repro.experiments.figure5 import Figure5Result, render_figure5, run_figure5
from repro.experiments.figure6 import Figure6Result, render_figure6, run_figure6
from repro.experiments.figure7 import Figure7Result, render_figure7, run_figure7
from repro.experiments.hospital_workload import (
    build_hospital_workload,
    hospital_domain_knowledge,
)
from repro.experiments.harness import (
    QueryOutcome,
    SweepPoint,
    run_workload,
    sweep_e,
)
from repro.experiments.intext import (
    InTextStats,
    render_intext_stats,
    run_intext_stats,
)
from repro.experiments.metrics import EffectivenessPoint, precision, recall
from repro.experiments.oracle import DesignerOracle, WorkloadQuery
from repro.experiments.workload import (
    ABSTRACT_UMBRELLA_CLASSES,
    build_cupid_workload,
    designer_domain_knowledge,
)

__all__ = [
    "ABSTRACT_UMBRELLA_CLASSES",
    "DesignerOracle",
    "EffectivenessPoint",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "InTextStats",
    "QueryOutcome",
    "SweepPoint",
    "WorkloadQuery",
    "build_cupid_workload",
    "build_hospital_workload",
    "designer_domain_knowledge",
    "export_figure6_csv",
    "export_figure7_csv",
    "export_outcomes_csv",
    "export_sweep_csv",
    "hospital_domain_knowledge",
    "precision",
    "recall",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_intext_stats",
    "run_caution_ablation",
    "run_exhaustive_comparison",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_intext_stats",
    "run_order_ablation",
    "run_workload",
    "sweep_e",
]
