"""Post-ranking extensions (paper Section 7 future work).

The paper sketches two refinements beyond the domain-independent core:

* **class penalties** — a mild, tunable form of domain knowledge:
  visiting a low-content class charges extra semantic length instead of
  excluding it outright (:func:`rank_with_penalties`);
* **focus preference** — "when confronted with two homonymous concepts
  of widely differing sizes, humans tend to prefer the more specific or
  focused concept": among completions that tie on label, prefer the
  path through more *specific* classes, measured by Isa depth
  (:func:`rank_with_focus`).

Both are pure re-rankers over a
:class:`~repro.core.completion.CompletionResult` — the core algorithm
stays untouched, exactly as the paper positions these as layers on top
of path labels.
"""

from __future__ import annotations

import dataclasses

from repro.core.ast import ConcretePath
from repro.core.completion import CompletionResult
from repro.core.domain import DomainKnowledge
from repro.model.inheritance import ancestors
from repro.model.schema import Schema

__all__ = ["RankedPath", "rank_with_penalties", "rank_with_focus"]


@dataclasses.dataclass(frozen=True)
class RankedPath:
    """A completion with its adjusted score components."""

    path: ConcretePath
    adjusted_length: int
    focus_score: int = 0

    def __str__(self) -> str:
        return f"{self.path}  (adjusted length {self.adjusted_length})"


def rank_with_penalties(
    result: CompletionResult,
    knowledge: DomainKnowledge,
    keep_best_only: bool = False,
) -> list[RankedPath]:
    """Re-rank completions by semantic length plus class penalties.

    Every intermediate or final class visited (the root is free — the
    user named it) adds its penalty to the path's semantic length.
    With ``keep_best_only`` the list is cut to the minimum adjusted
    length, mirroring AGG's secondary criterion.
    """
    penalties = knowledge.penalties()
    ranked = []
    for path in result.paths:
        extra = sum(
            penalties.get(name, 0) for name in path.classes()[1:]
        )
        ranked.append(
            RankedPath(
                path=path,
                adjusted_length=path.semantic_length + extra,
            )
        )
    ranked.sort(key=lambda r: (r.adjusted_length, str(r.path)))
    if keep_best_only and ranked:
        best = ranked[0].adjusted_length
        ranked = [r for r in ranked if r.adjusted_length == best]
    return ranked


def _specificity(schema: Schema, class_name: str) -> int:
    """Isa depth of a class: more ancestors = more specific."""
    if not schema.has_class(class_name):
        return 0
    return len(ancestors(schema, class_name))


def rank_with_focus(
    result: CompletionResult, schema: Schema
) -> list[RankedPath]:
    """Order label-tied completions by specificity (most focused first).

    The focus score of a path is the summed Isa depth of its visited
    classes; a higher score means the path stays among more specific
    concepts.  Primary label order is preserved — focus only breaks
    ties within a ``(connector, semantic length)`` class.
    """
    ranked = [
        RankedPath(
            path=path,
            adjusted_length=path.semantic_length,
            focus_score=sum(
                _specificity(schema, name) for name in path.classes()
            ),
        )
        for path in result.paths
    ]
    ranked.sort(
        key=lambda r: (
            r.path.label().connector.sort_rank,
            r.adjusted_length,
            -r.focus_score,
            str(r.path),
        )
    )
    return ranked
