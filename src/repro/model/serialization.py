"""JSON (de)serialization of schemas.

The document format is versioned and explicit: every relationship is
stored individually (inverses included), so a round-trip reproduces the
schema exactly, including non-default names and declaration order.

Format::

    {
      "format": "repro-schema",
      "version": 1,
      "name": "...",
      "classes": [{"name": "...", "doc": "..."}, ...],
      "relationships": [
        {"source": "...", "target": "...", "kind": "@>",
         "name": "...", "doc": "..."},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SerializationError
from repro.model.kinds import KIND_BY_SYMBOL
from repro.model.schema import Schema

__all__ = ["schema_to_dict", "schema_from_dict", "save_schema", "load_schema"]

_FORMAT = "repro-schema"
_VERSION = 1


def schema_to_dict(schema: Schema) -> dict:
    """Serialize a schema to a plain dictionary.

    The document carries the schema's content fingerprint so external
    tooling can detect drift without loading; it is informational —
    :func:`schema_from_dict` recomputes rather than trusts it.
    """
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "name": schema.name,
        "fingerprint": schema.fingerprint(),
        "classes": [
            {"name": cls.name, "doc": cls.doc}
            for cls in schema.classes(include_primitives=False)
        ],
        "relationships": [
            {
                "source": rel.source,
                "target": rel.target,
                "kind": rel.kind.symbol,
                "name": rel.name,
                "doc": rel.doc,
            }
            for rel in schema.relationships()
        ],
    }


def schema_from_dict(document: dict) -> Schema:
    """Deserialize a schema from a dictionary produced by
    :func:`schema_to_dict`."""
    if document.get("format") != _FORMAT:
        raise SerializationError(
            f"not a {_FORMAT} document: format={document.get('format')!r}"
        )
    if document.get("version") != _VERSION:
        raise SerializationError(
            f"unsupported version {document.get('version')!r}"
        )
    schema = Schema(document.get("name", "schema"))
    try:
        for entry in document["classes"]:
            schema.add_class(entry["name"], doc=entry.get("doc", ""))
        for entry in document["relationships"]:
            kind = KIND_BY_SYMBOL.get(entry["kind"])
            if kind is None:
                raise SerializationError(
                    f"unknown relationship kind {entry['kind']!r}"
                )
            # Inverses are stored explicitly; never auto-add on load.
            schema.add_relationship(
                entry["source"],
                entry["target"],
                kind,
                name=entry.get("name", ""),
                add_inverse=False,
                doc=entry.get("doc", ""),
            )
    except KeyError as exc:
        raise SerializationError(f"missing field {exc}") from exc
    schema.validate()
    return schema


def save_schema(schema: Schema, path: str | Path) -> None:
    """Write a schema to a JSON file."""
    document = schema_to_dict(schema)
    Path(path).write_text(json.dumps(document, indent=2) + "\n")


def load_schema(path: str | Path) -> Schema:
    """Read a schema from a JSON file."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return schema_from_dict(document)
