"""Tests for the schema validator and the validate CLI (repro.obs)."""

import json

import pytest

from repro.obs.schema import (
    SchemaValidationError,
    load_builtin_schema,
    validate,
    validate_metrics_summary,
    validate_trace_events,
)
from repro.obs.validate import main as validate_main


class TestValidateSubset:
    def test_type_mismatch(self):
        assert validate(1, {"type": "string"})
        assert not validate("x", {"type": "string"})

    def test_type_union(self):
        schema = {"type": ["integer", "null"]}
        assert not validate(None, schema)
        assert not validate(3, schema)
        assert validate("x", schema)

    def test_bool_is_not_a_number(self):
        assert validate(True, {"type": "number"})
        assert validate(True, {"type": "integer"})
        assert not validate(True, {"type": "boolean"})

    def test_required_and_additional(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
            "additionalProperties": False,
        }
        assert not validate({"a": 1}, schema)
        assert validate({}, schema)  # missing required
        assert validate({"a": 1, "b": 2}, schema)  # unexpected key

    def test_additional_properties_schema(self):
        schema = {
            "type": "object",
            "additionalProperties": {"type": "number", "minimum": 0},
        }
        assert not validate({"x": 1.5}, schema)
        assert validate({"x": -1}, schema)
        assert validate({"x": "s"}, schema)

    def test_enum_and_bounds(self):
        assert validate(2, {"enum": [1, 3]})
        assert validate(-1, {"type": "number", "minimum": 0})
        assert validate(11, {"type": "number", "maximum": 10})

    def test_items(self):
        schema = {"type": "array", "items": {"type": "string"}}
        assert not validate(["a", "b"], schema)
        assert validate(["a", 1], schema)

    def test_problem_paths_are_addressable(self):
        schema = {
            "type": "object",
            "properties": {"inner": {"type": "array", "items": {"type": "integer"}}},
        }
        problems = validate({"inner": [1, "x"]}, schema)
        assert problems == ["$.inner[1]: expected integer, got str"]


class TestBuiltinSchemas:
    def test_both_schemas_load(self):
        assert load_builtin_schema("metrics_summary")["type"] == "object"
        assert load_builtin_schema("trace_event")["type"] == "object"

    def test_unknown_schema_raises(self):
        with pytest.raises(FileNotFoundError):
            load_builtin_schema("nope")

    def test_valid_metrics_summary_passes(self):
        validate_metrics_summary(
            {
                "version": 2,
                "counters": {"completions": 2},
                "gauges": {"cache.hit_ratio": 0.5},
                "histograms": {
                    "query.recursive_calls": {
                        "count": 2,
                        "sum": 30.0,
                        "min": 10.0,
                        "max": 20.0,
                        "mean": 15.0,
                        "p50": 10.0,
                        "p95": 20.0,
                        "p99": 20.0,
                    }
                },
            }
        )

    def test_drifted_metrics_summary_fails(self):
        with pytest.raises(SchemaValidationError):
            validate_metrics_summary({"version": 2, "counters": {}})
        with pytest.raises(SchemaValidationError):
            validate_metrics_summary(
                {
                    "version": 1,  # the pre-p99 version is retired
                    "counters": {},
                    "gauges": {},
                    "histograms": {},
                }
            )
        with pytest.raises(SchemaValidationError):
            # a histogram without the p99 the v2 schema requires
            validate_metrics_summary(
                {
                    "version": 2,
                    "counters": {},
                    "gauges": {},
                    "histograms": {
                        "h": {
                            "count": 1,
                            "sum": 1.0,
                            "min": 1.0,
                            "max": 1.0,
                            "mean": 1.0,
                            "p50": 1.0,
                            "p95": 1.0,
                        }
                    },
                }
            )

    def test_trace_event_conditional_required(self):
        span = {
            "type": "span",
            "name": "traverse",
            "attrs": {},
            "id": 0,
            "parent": None,
            "depth": 0,
            "start_ms": 0.0,
            "duration_ms": 1.0,
        }
        event = {
            "type": "event",
            "name": "prune",
            "attrs": {},
            "span": 0,
            "at_ms": 0.5,
        }
        validate_trace_events([span, event])
        with pytest.raises(SchemaValidationError):
            validate_trace_events([{"type": "span", "name": "x", "attrs": {}}])
        with pytest.raises(SchemaValidationError):
            validate_trace_events([dict(span, extra="nope")])


class TestValidateCli:
    def test_valid_files_exit_zero(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        metrics.write_text(
            json.dumps(
                {"version": 2, "counters": {}, "gauges": {}, "histograms": {}}
            )
        )
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            json.dumps(
                {
                    "type": "span",
                    "name": "s",
                    "attrs": {},
                    "id": 0,
                    "parent": None,
                    "depth": 0,
                    "start_ms": 0.0,
                    "duration_ms": 0.0,
                }
            )
            + "\n"
        )
        assert validate_main([str(metrics), str(trace)]) == 0
        out = capsys.readouterr().out
        assert "valid metrics summary" in out
        assert "valid trace log" in out

    def test_invalid_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert validate_main([str(bad)]) == 1
        assert "missing required key" in capsys.readouterr().err

    def test_missing_file_exits_nonzero(self, tmp_path):
        assert validate_main([str(tmp_path / "absent.json")]) == 1
