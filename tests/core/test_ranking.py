"""Tests for the Section 7 post-ranking extensions."""

import pytest

from repro.core.domain import DomainKnowledge
from repro.core.engine import Disambiguator
from repro.core.ranking import rank_with_focus, rank_with_penalties


@pytest.fixture()
def tied_result(university):
    """ta ~ name: two completions with identical labels."""
    return Disambiguator(university).complete("ta ~ name")


class TestPenalties:
    def test_no_penalties_preserves_lengths(self, tied_result):
        ranked = rank_with_penalties(tied_result, DomainKnowledge.none())
        assert [r.adjusted_length for r in ranked] == [1, 1]

    def test_penalty_demotes_paths_through_the_class(self, tied_result):
        knowledge = DomainKnowledge(class_penalties=(("employee", 3),))
        ranked = rank_with_penalties(tied_result, knowledge)
        # the instructor chain passes through employee -> demoted
        assert "grad" in str(ranked[0].path)
        assert ranked[0].adjusted_length == 1
        assert ranked[1].adjusted_length == 4

    def test_keep_best_only(self, tied_result):
        knowledge = DomainKnowledge(class_penalties=(("employee", 3),))
        ranked = rank_with_penalties(
            tied_result, knowledge, keep_best_only=True
        )
        assert len(ranked) == 1
        assert "grad" in str(ranked[0].path)

    def test_root_class_is_never_charged(self, university):
        result = Disambiguator(university).complete("ta ~ name")
        knowledge = DomainKnowledge(class_penalties=(("ta", 100),))
        ranked = rank_with_penalties(result, knowledge)
        assert all(r.adjusted_length == 1 for r in ranked)


class TestFocus:
    def test_preserves_primary_label_order(self, university):
        result = Disambiguator(university, e=3).complete("department ~ ssn")
        ranked = rank_with_focus(result, university)
        lengths = [r.adjusted_length for r in ranked]
        assert lengths == sorted(lengths)

    def test_breaks_ties_toward_specific_classes(self, tied_result, university):
        ranked = rank_with_focus(tied_result, university)
        # the instructor chain visits instructor/teacher/employee (Isa
        # depths 2/1/... summed higher) vs grad/student -> it is the
        # more specific, focused route and ranks first
        scores = [r.focus_score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_scores_are_isa_depth_sums(self, tied_result, university):
        ranked = rank_with_focus(tied_result, university)
        for entry in ranked:
            assert entry.focus_score > 0

    def test_str_rendering(self, tied_result):
        ranked = rank_with_penalties(tied_result, DomainKnowledge.none())
        assert "adjusted length" in str(ranked[0])
