"""MetricsServer lifecycle and labelled-series rendering.

The serving tier embeds :class:`~repro.obs.serve.MetricsServer` and
leans on two contracts added for it: close-style lifecycle management
(idempotent stop, context manager, no socket leak on repeated
open/close), and request-scoped labels riding inside flat registry
names (:func:`~repro.obs.metrics.labelled`) that render as proper
multi-series Prometheus families.
"""

import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry, labelled, split_labels
from repro.obs.promtext import render_prometheus
from repro.obs.serve import MetricsServer


def scrape(server: MetricsServer) -> str:
    with urllib.request.urlopen(server.url, timeout=5.0) as response:
        return response.read().decode("utf-8")


class TestLifecycle:
    def test_running_and_closed_track_the_lifecycle(self):
        server = MetricsServer(MetricsRegistry())
        assert not server.running and not server.closed
        server.start()
        assert server.running and not server.closed
        server.stop()
        assert not server.running and server.closed

    def test_stop_is_idempotent(self):
        server = MetricsServer(MetricsRegistry())
        server.start()
        server.stop()
        server.stop()  # second stop is a no-op, not an error
        server.close()
        assert server.closed

    def test_close_without_start_releases_the_socket(self):
        registry = MetricsRegistry()
        server = MetricsServer(registry)
        _, port = server.address
        server.close()  # never started: close alone must free the port
        rebound = MetricsServer(registry, port=port)
        try:
            assert rebound.address[1] == port
        finally:
            rebound.close()

    def test_start_after_close_raises(self):
        server = MetricsServer(MetricsRegistry())
        server.start()
        server.stop()
        with pytest.raises(RuntimeError):
            server.start()

    def test_start_is_idempotent_while_running(self):
        server = MetricsServer(MetricsRegistry())
        try:
            assert server.start() is server
            assert server.start() is server
            assert server.running
        finally:
            server.stop()

    def test_context_manager_serves_then_stops(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        with MetricsServer(registry) as server:
            assert server.running
            assert "repro_cache_hits_total 3" in scrape(server)
        assert server.closed and not server.running

    def test_sequential_servers_can_reuse_a_port(self):
        registry = MetricsRegistry()
        with MetricsServer(registry) as first:
            _, port = first.address
        # The port was released on exit: binding it again succeeds.
        with MetricsServer(registry, port=port) as second:
            assert second.address[1] == port


class TestLabelledSeries:
    def test_round_trip(self):
        name = labelled("serve.requests", route="POST /v1/complete", status=200)
        base, labels = split_labels(name)
        assert base == "serve.requests"
        assert labels == {"route": "POST /v1/complete", "status": "200"}

    def test_no_labels_is_the_bare_name(self):
        assert labelled("serve.requests") == "serve.requests"
        assert split_labels("serve.requests") == ("serve.requests", {})

    def test_label_order_is_canonical(self):
        a = labelled("m", b=2, a=1)
        b = labelled("m", a=1, b=2)
        assert a == b  # same label set -> same series name

    def test_structural_characters_are_scrubbed_from_values(self):
        name = labelled("m", route="a=b,c|d\ne")
        _, labels = split_labels(name)
        assert labels == {"route": "a_b_c_d_e"}

    def test_labelled_counters_render_as_one_family(self):
        registry = MetricsRegistry()
        registry.counter(
            labelled("serve.requests", route="POST /v1/complete", status=200)
        ).inc(5)
        registry.counter(
            labelled("serve.requests", route="POST /v1/complete", status=429)
        ).inc(2)
        text = render_prometheus(registry)
        assert (
            'repro_serve_requests_total{route="POST /v1/complete",'
            'status="200"} 5' in text
        )
        assert (
            'repro_serve_requests_total{route="POST /v1/complete",'
            'status="429"} 2' in text
        )
        # One shared header for the family, not one per series.
        assert text.count("# TYPE repro_serve_requests_total counter") == 1

    def test_labelled_histogram_renders_with_labels(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            labelled("serve.latency_ms", route="POST /v1/complete")
        )
        histogram.observe(1.5)
        histogram.observe(2.5)
        text = render_prometheus(registry)
        assert 'route="POST /v1/complete"' in text
        assert "repro_serve_latency_ms_count" in text
