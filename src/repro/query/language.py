"""A tiny Fox-flavored query language over path expressions.

The paper's queries are path expressions at heart; this module wraps
them in just enough syntax to be useful against an instance database::

    get <path-expression>
    get <path-expression> where <op> <literal>

The optional ``where`` clause filters the *result* values (it therefore
only applies when the expression ends in an attribute).  Supported
operators: ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``, ``contains``.
Incomplete path expressions are allowed — the engine completes them
first and evaluates every returned completion, reporting results per
completion (the Figure 1 loop with an implicit approve-all).
"""

from __future__ import annotations

import concurrent.futures
import contextvars
import dataclasses
import re
from collections.abc import Callable

from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.errors import QuerySyntaxError
from repro.model.instances import Database
from repro.obs.tracer import get_tracer
from repro.query.evaluator import evaluate

__all__ = ["Query", "QueryResult", "parse_query", "run_query"]

_OPERATORS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda value, literal: value == literal,
    "!=": lambda value, literal: value != literal,
    "<": lambda value, literal: value < literal,  # type: ignore[operator]
    "<=": lambda value, literal: value <= literal,  # type: ignore[operator]
    ">": lambda value, literal: value > literal,  # type: ignore[operator]
    ">=": lambda value, literal: value >= literal,  # type: ignore[operator]
    "contains": lambda value, literal: str(literal) in str(value),
}

_QUERY_RE = re.compile(
    r"^\s*get\s+(?P<path>.+?)"
    r"(?:\s+where\s+(?P<op>=|!=|<=|>=|<|>|contains)\s+(?P<literal>.+?))?\s*$",
    re.IGNORECASE,
)


@dataclasses.dataclass(frozen=True)
class Query:
    """A parsed query: path text plus an optional value filter."""

    path_text: str
    operator: str | None = None
    literal: object | None = None

    def matches(self, value: object) -> bool:
        """Apply the where-filter to one result value."""
        if self.operator is None:
            return True
        try:
            return _OPERATORS[self.operator](value, self.literal)
        except TypeError:
            return False


@dataclasses.dataclass(frozen=True)
class QueryResult:
    """Results of one query, keyed by the completion that produced them."""

    query: Query
    per_completion: tuple[tuple[str, frozenset], ...]

    @property
    def completions(self) -> list[str]:
        return [expression for expression, _ in self.per_completion]

    @property
    def values(self) -> frozenset:
        """Union of results over all completions."""
        combined: frozenset = frozenset()
        for _, results in self.per_completion:
            combined |= results
        return combined


def _parse_literal(text: str) -> object:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in {"'", '"'}:
        return text[1:-1]
    lowered = text.lower()
    if lowered in {"true", "false"}:
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`Query`."""
    match = _QUERY_RE.match(text)
    if not match:
        raise QuerySyntaxError("expected: get <path> [where <op> <literal>]", text)
    if match.group("op") is None and re.search(
        r"\swhere\s", match.group("path"), re.IGNORECASE
    ):
        # A 'where' was written but its operator did not parse.
        raise QuerySyntaxError(
            "malformed where clause (operator must be one of "
            "= != < <= > >= contains)",
            text,
        )
    operator = match.group("op")
    literal = (
        _parse_literal(match.group("literal"))
        if match.group("literal") is not None
        else None
    )
    return Query(
        path_text=match.group("path").strip(),
        operator=operator.lower() if operator else None,
        literal=literal,
    )


def run_query(
    database: Database,
    text: str,
    engine: Disambiguator | None = None,
    compiled: "CompiledSchema | None" = None,
    jobs: int = 1,
) -> QueryResult:
    """Parse, complete (if needed), evaluate, and filter a query.

    Pass ``compiled`` to share one compilation artifact (and completion
    cache) across many queries over the same schema.  ``jobs > 1``
    evaluates the approved completions against the instance store on a
    thread pool (each path's evaluation is independent); the
    per-completion result order is the completion ranking either way.
    """
    tracer = get_tracer()
    with tracer.span("query", query=text) as span:
        with tracer.span("parse"):
            query = parse_query(text)
        if engine is None:
            engine = Disambiguator(
                compiled if compiled is not None else database.schema
            )
        completion = engine.complete(query.path_text)

        def evaluate_one(path) -> frozenset:
            results = evaluate(database, path)
            return frozenset(
                value for value in results if query.matches(value)
            )

        with tracer.span("evaluate", paths=len(completion.paths), jobs=jobs):
            if jobs > 1 and len(completion.paths) > 1:
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=jobs, thread_name_prefix="repro-query"
                ) as pool:
                    futures = [
                        pool.submit(
                            contextvars.copy_context().run,
                            evaluate_one,
                            path,
                        )
                        for path in completion.paths
                    ]
                    values = [future.result() for future in futures]
            else:
                values = [evaluate_one(path) for path in completion.paths]
        per_completion = [
            (str(path), filtered)
            for path, filtered in zip(completion.paths, values)
        ]
        span.set(completions=len(completion.paths))
    return QueryResult(query=query, per_completion=tuple(per_completion))
