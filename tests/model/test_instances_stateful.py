"""Stateful property testing of the instance store.

A hypothesis rule-based state machine drives a
:class:`~repro.model.instances.Database` through random create / link /
set-attribute sequences against the university schema, checking the
store's invariants after every step:

* extents respect the Isa closure (an object is in every ancestor's
  extent and no sibling's);
* links are always symmetric with their inverse relationship;
* attribute reads return exactly what was last written;
* persistence round-trips reproduce the exact state.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.model.inheritance import ancestors
from repro.model.instances import Database
from repro.model.persistence import database_from_dict, database_to_dict
from repro.schemas.university import build_university_schema

_CREATABLE = (
    "person",
    "student",
    "grad",
    "ta",
    "employee",
    "teacher",
    "professor",
    "staff",
    "course",
    "department",
    "university",
)

# (source classes that may use it, relationship name, target class)
_LINKABLE = (
    (("student", "grad", "ta"), "take", "course"),
    (("teacher", "professor", "instructor", "ta"), "teach", "course"),
    (("student", "grad", "ta"), "department", "department"),
    (("department",), "professor", "professor"),
    (("university",), "department", "department"),
)


class DatabaseMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.schema = build_university_schema()
        self.db = Database(self.schema)
        # shadow model: oid -> class, (oid, name) -> value,
        # (rel key, src oid) -> set of target oids
        self.model_objects: dict[int, str] = {}
        self.model_attributes: dict[tuple[int, str], object] = {}
        self.model_links: dict[tuple[str, str, int], set[int]] = {}

    objects = Bundle("objects")

    @rule(target=objects, class_name=st.sampled_from(_CREATABLE))
    def create(self, class_name):
        obj = self.db.create(class_name)
        self.model_objects[obj.oid] = class_name
        return obj

    @rule(
        obj=objects,
        name=st.sampled_from(["name", "ssn"]),
        value=st.integers(min_value=0, max_value=10_000),
    )
    def set_attribute(self, obj, name, value):
        from repro.model.inheritance import resolve_inherited

        rel = resolve_inherited(self.schema, obj.class_name, name)
        if rel is None or not self.schema.get_class(rel.target).primitive:
            return  # class has no such attribute
        stored = f"v{value}" if rel.target == "C" else value
        self.db.set_attribute(obj, name, stored)
        self.model_attributes[(obj.oid, name)] = stored

    @rule(
        source=objects,
        link_spec=st.sampled_from(_LINKABLE),
        destination=objects,
    )
    def link(self, source, link_spec, destination):
        source_classes, rel_name, target_class = link_spec
        from repro.model.inheritance import is_subclass_of

        source_ok = any(
            is_subclass_of(self.schema, source.class_name, cls)
            for cls in source_classes
        )
        target_ok = is_subclass_of(
            self.schema, destination.class_name, target_class
        )
        if not (source_ok and target_ok):
            return
        self.db.link(source, rel_name, destination)
        from repro.model.inheritance import resolve_inherited

        rel = resolve_inherited(self.schema, source.class_name, rel_name)
        self.model_links.setdefault(
            (rel.source, rel.name, source.oid), set()
        ).add(destination.oid)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def extents_respect_isa_closure(self):
        for oid, class_name in self.model_objects.items():
            obj = self.db.get(oid)
            assert self.db.is_instance(obj, class_name)
            for ancestor in ancestors(self.schema, class_name):
                assert self.db.is_instance(obj, ancestor)

    @invariant()
    def attributes_read_back(self):
        for (oid, name), value in self.model_attributes.items():
            assert self.db.get_attribute(self.db.get(oid), name) == value

    @invariant()
    def links_match_model_and_inverses(self):
        for (source_class, rel_name, source_oid), targets in (
            self.model_links.items()
        ):
            source = self.db.get(source_oid)
            linked = {o.oid for o in self.db.linked(source, rel_name)}
            assert linked == targets, (source_class, rel_name)
            rel = self.schema.get_relationship(source_class, rel_name)
            inverse = next(
                (
                    other
                    for other in self.schema.relationships_from(rel.target)
                    if other.is_inverse_of(rel)
                ),
                None,
            )
            if inverse is None:
                continue
            for target_oid in targets:
                back = self.db.linked(self.db.get(target_oid), inverse.name)
                assert source_oid in {o.oid for o in back}

    @invariant()
    def persistence_round_trips(self):
        restored = database_from_dict(database_to_dict(self.db))
        assert [(o.oid, o.class_name) for o in restored.objects()] == [
            (o.oid, o.class_name) for o in self.db.objects()
        ]
        assert sorted(restored.iter_links()) == sorted(self.db.iter_links())
        assert sorted(
            restored.iter_attributes(), key=repr
        ) == sorted(self.db.iter_attributes(), key=repr)


TestDatabaseStateMachine = DatabaseMachine.TestCase
TestDatabaseStateMachine.settings = __import__("hypothesis").settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
