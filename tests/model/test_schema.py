"""Tests for the Schema container."""

import pytest

from repro.errors import (
    DuplicateClassError,
    DuplicateRelationshipError,
    InheritanceCycleError,
    PrimitiveClassError,
    SchemaError,
    UnknownClassError,
    UnknownRelationshipError,
)
from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema


@pytest.fixture()
def schema():
    s = Schema("test")
    s.add_classes(["person", "student", "course"])
    return s


class TestClasses:
    def test_primitives_always_present(self, schema):
        for name in ("I", "R", "C", "B"):
            assert schema.has_class(name)
            assert schema.get_class(name).primitive

    def test_user_class_count_excludes_primitives(self, schema):
        assert schema.user_class_count == 3
        assert len(schema) == 7

    def test_duplicate_class_rejected(self, schema):
        with pytest.raises(DuplicateClassError):
            schema.add_class("person")

    def test_unknown_class_raises(self, schema):
        with pytest.raises(UnknownClassError):
            schema.get_class("ghost")

    def test_contains_and_iter(self, schema):
        assert "person" in schema
        assert "ghost" not in schema
        assert {c.name for c in schema} >= {"person", "student", "course"}

    def test_classes_filter(self, schema):
        users = schema.classes(include_primitives=False)
        assert all(not c.primitive for c in users)
        assert len(users) == 3


class TestRelationships:
    def test_add_with_auto_inverse(self, schema):
        schema.add_relationship("student", "person", RelationshipKind.ISA)
        assert schema.has_relationship("student", "person")
        assert schema.has_relationship("person", "student")
        inverse = schema.get_relationship("person", "student")
        assert inverse.kind is RelationshipKind.MAY_BE

    def test_add_without_inverse(self, schema):
        schema.add_relationship(
            "student", "person", RelationshipKind.ISA, add_inverse=False
        )
        assert not schema.has_relationship("person", "student")

    def test_duplicate_relationship_rejected(self, schema):
        schema.add_relationship(
            "student", "course", RelationshipKind.IS_ASSOCIATED_WITH, "take"
        )
        with pytest.raises(DuplicateRelationshipError):
            schema.add_relationship(
                "student", "course", RelationshipKind.IS_ASSOCIATED_WITH, "take"
            )

    def test_relationship_from_primitive_rejected(self, schema):
        with pytest.raises(PrimitiveClassError):
            schema.add_relationship(
                "C", "person", RelationshipKind.IS_ASSOCIATED_WITH
            )

    def test_inverse_into_primitive_rejected(self, schema):
        with pytest.raises(PrimitiveClassError):
            schema.add_relationship(
                "person", "C", RelationshipKind.IS_ASSOCIATED_WITH, name="name"
            )

    def test_attribute_shorthand(self, schema):
        rel = schema.add_attribute("person", "name")
        assert rel.target == "C"
        assert rel.kind is RelationshipKind.IS_ASSOCIATED_WITH
        assert not schema.has_relationship("C", "person")

    def test_attribute_requires_primitive_target(self, schema):
        with pytest.raises(SchemaError):
            schema.add_attribute("person", "name", primitive="person")

    def test_unknown_relationship_raises(self, schema):
        with pytest.raises(UnknownRelationshipError):
            schema.get_relationship("person", "ghost")

    def test_relationships_named(self, schema):
        schema.add_attribute("person", "name")
        schema.add_attribute("course", "name")
        assert len(schema.relationships_named("name")) == 2

    def test_relationships_into(self, schema):
        schema.add_relationship("student", "person", RelationshipKind.ISA)
        into_person = schema.relationships_into("person")
        assert [r.source for r in into_person] == ["student"]

    def test_declaration_order_preserved(self, schema):
        schema.add_attribute("person", "zz")
        schema.add_attribute("person", "aa")
        names = [r.name for r in schema.relationships_from("person")]
        assert names == ["zz", "aa"]

    def test_relationship_count_counts_inverses(self, schema):
        schema.add_relationship("student", "person", RelationshipKind.ISA)
        assert schema.relationship_count == 2


class TestIsaHelpers:
    def test_parents_and_children(self, schema):
        schema.add_relationship("student", "person", RelationshipKind.ISA)
        assert schema.isa_parents("student") == ["person"]
        assert schema.isa_children("person") == ["student"]

    def test_isa_cycle_detected(self, schema):
        schema.add_relationship(
            "student", "person", RelationshipKind.ISA, add_inverse=False
        )
        schema.add_relationship(
            "person", "student", RelationshipKind.ISA, add_inverse=False
        )
        with pytest.raises(InheritanceCycleError):
            schema.validate()


class TestValidation:
    def test_clean_schema_validates(self, schema):
        schema.add_relationship("student", "person", RelationshipKind.ISA)
        assert schema.validate() == []

    def test_missing_inverse_reported_when_required(self, schema):
        schema.add_relationship(
            "student", "person", RelationshipKind.ISA, add_inverse=False
        )
        problems = schema.validate(require_inverses=True)
        assert len(problems) == 1
        assert "missing inverse" in problems[0]

    def test_attributes_do_not_require_inverses(self, schema):
        schema.add_attribute("person", "name")
        assert schema.validate(require_inverses=True) == []

    def test_summary_mentions_counts(self, schema):
        assert "3 user-defined classes" in schema.summary()
