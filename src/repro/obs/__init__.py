"""``repro.obs`` — observability for the disambiguation pipeline.

The paper evaluates the system by *counting work* (Section 5.4:
recursive calls at 0.17 ms each, response time per query, pruning
effectiveness).  This package makes that visible at every layer:

* :mod:`repro.obs.tracer` — nested, timed spans (``parse``,
  ``compile``, ``traverse``, ``agg_select``, ``preemption``, ``rank``,
  ``cache_lookup``) with per-span attributes, a human-readable tree
  dump, and a JSON-lines event log.  The default tracer is a shared
  no-op, so instrumented hot paths pay ~zero cost unless a caller
  installs a :class:`~repro.obs.tracer.RecordingTracer`.
* :mod:`repro.obs.metrics` — a registry of named counters, gauges, and
  histograms that :class:`~repro.core.stats.TraversalStats` feeds into
  (the stats dataclass is a carrier, not the terminal sink).  The
  default registry is likewise a no-op; histograms keep an unbiased
  Algorithm-R reservoir for quantiles.
* :mod:`repro.obs.promtext` / :mod:`repro.obs.serve` — the registry in
  Prometheus text exposition format, on stdout or over a stdlib HTTP
  scrape endpoint (``python -m repro.obs.serve``).
* :mod:`repro.obs.slowlog` — tail-based slow-query retention: only
  queries over a latency threshold, in the current top-K, or promoted
  (head-sampled or failed) keep their full span tree, query text, E,
  and budget outcome.
* :mod:`repro.obs.reqlog` — request-scoped identity: request IDs on an
  ambient contextvar, Bernoulli head sampling, and the structured
  JSONL access log the serving tier writes per request.
* :mod:`repro.obs.slo` — rolling-window SLO monitoring with
  multi-window burn-rate alerting (availability and latency
  objectives), rendered into ``/healthz`` and Prometheus gauges.
* :mod:`repro.obs.profile` — cProfile attached to a named span
  taxonomy, exported as flamegraph-ready collapsed stacks.
* :mod:`repro.obs.perf` — the benchmark-history ledger
  (``BENCH_history.jsonl``) and the ``python -m repro.obs.perf
  compare`` regression gate.
* :mod:`repro.obs.schema` — a dependency-free validator for the
  checked-in JSON schemas of every exported artifact
  (``python -m repro.obs.validate FILE ...``), so formats cannot
  silently drift.

Everything is ambient (:func:`use_tracer` / :func:`use_metrics` /
:func:`use_slowlog` install into a :mod:`contextvars` context), so
engines, sessions, fox queries, and the experiments harness need no
extra plumbing parameters.
"""

from repro.obs.metrics import (
    SUMMARY_VERSION,
    MetricsRegistry,
    NullMetricsRegistry,
    get_metrics,
    use_metrics,
)
from repro.obs.profile import DEFAULT_PROFILED_SPANS, SpanProfiler
from repro.obs.reqlog import (
    ACCESS_LOG_VERSION,
    REQUEST_ID_HEADER,
    AccessLog,
    HeadSampler,
    RequestContext,
    clean_request_id,
    get_request,
    get_request_id,
    mint_request_id,
    use_request,
)
from repro.obs.promtext import (
    DEFAULT_BUCKET_BOUNDS,
    render_prometheus,
    write_prometheus,
)
from repro.obs.schema import (
    SchemaValidationError,
    load_builtin_schema,
    validate,
    validate_access_records,
    validate_audit_records,
    validate_bench_records,
    validate_metrics_summary,
    validate_slo_status,
    validate_slowlog_entries,
    validate_trace_events,
)
from repro.obs.slo import (
    SLO_STATUS_VERSION,
    Objective,
    SLOMonitor,
)
from repro.obs.slowlog import (
    RETAINED_PROMOTED,
    RETAINED_SAMPLED,
    SLOWLOG_VERSION,
    NullSlowQueryLog,
    SlowLogEntry,
    SlowQueryLog,
    get_slowlog,
    use_slowlog,
)
from repro.obs.tracer import (
    NullTracer,
    RecordingTracer,
    Span,
    get_tracer,
    use_tracer,
)

#: Names resolved lazily (PEP 562) from the runnable submodules, so
#: ``python -m repro.obs.serve`` / ``python -m repro.obs.perf`` don't
#: trip runpy's already-imported warning on package import.
_LAZY = {
    "MetricsServer": "repro.obs.serve",
    "BenchRecord": "repro.obs.perf",
    "append_records": "repro.obs.perf",
    "compare": "repro.obs.perf",
    "environment_fingerprint": "repro.obs.perf",
    "load_history": "repro.obs.perf",
    "new_run_id": "repro.obs.perf",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ACCESS_LOG_VERSION",
    "AccessLog",
    "BenchRecord",
    "DEFAULT_BUCKET_BOUNDS",
    "DEFAULT_PROFILED_SPANS",
    "HeadSampler",
    "MetricsRegistry",
    "MetricsServer",
    "NullMetricsRegistry",
    "NullSlowQueryLog",
    "NullTracer",
    "Objective",
    "REQUEST_ID_HEADER",
    "RETAINED_PROMOTED",
    "RETAINED_SAMPLED",
    "RecordingTracer",
    "RequestContext",
    "SLOMonitor",
    "SLOWLOG_VERSION",
    "SLO_STATUS_VERSION",
    "SUMMARY_VERSION",
    "SchemaValidationError",
    "SlowLogEntry",
    "SlowQueryLog",
    "Span",
    "SpanProfiler",
    "append_records",
    "clean_request_id",
    "compare",
    "environment_fingerprint",
    "get_metrics",
    "get_request",
    "get_request_id",
    "get_slowlog",
    "get_tracer",
    "load_builtin_schema",
    "load_history",
    "mint_request_id",
    "new_run_id",
    "render_prometheus",
    "use_metrics",
    "use_request",
    "use_slowlog",
    "use_tracer",
    "validate",
    "validate_access_records",
    "validate_audit_records",
    "validate_bench_records",
    "validate_metrics_summary",
    "validate_slo_status",
    "validate_slowlog_entries",
    "validate_trace_events",
    "write_prometheus",
]
