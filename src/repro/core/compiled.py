"""The compile-once / query-many layer.

The disambiguator is an optimal-path computation over a *fixed* schema
graph, yet the original seed had every :class:`Disambiguator`, Fox-query
evaluator, and experiment harness privately re-derive the same
per-schema structures (adjacency lists, partial-order closure, caution
sets) and re-run identical completions.  Following the precompiled
automaton/grammar designs of the best-path and context-free path-query
literature, this module splits the pipeline into

* **compile** — :class:`CompiledSchema`: one immutable artifact per
  ``(schema content, partial order, domain knowledge)`` holding the
  schema's content fingerprint, the frozen
  :class:`~repro.model.graph.SchemaGraph` adjacency, the shared
  :class:`~repro.algebra.caution.CautionSets`, memoized
  :class:`~repro.core.completion.CompletionSearch` instances, and a
  bounded LRU completion cache; and
* **query** — every engine, session, and experiment shares the artifact
  and consults the cache before traversing.

Cache entries are keyed by the full tuple
``(schema fingerprint, normalized expression text, order content key,
E, ablation flags, max depth, domain-knowledge key)`` so results can
never leak across schema mutations, order variants, E sweeps, ablation
settings, or knowledge declarations.

Compiles themselves are memoized: :func:`compile_schema` keeps a
module-level registry keyed by the same content triple, so
``Disambiguator(schema)`` constructed twice over an unchanged schema
reuses one artifact (and therefore one warm cache).  Mutating a schema
changes its fingerprint, which both misses the registry (a fresh
compile) and invalidates every old cache entry (stale artifacts are
also evicted eagerly on lookup).  :func:`invalidate` clears the
registry explicitly.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable

from repro.algebra.caution import CautionSets
from repro.algebra.order import DEFAULT_ORDER, PartialOrder
from repro.core.audit import get_audit
from repro.core.closure import SchemaClosure, resolve_pruning
from repro.core.completion import CompletionResult, CompletionSearch
from repro.core.domain import DomainKnowledge
from repro.core.kernel import resolve_kernel
from repro.core.target import RelationshipTarget
from repro.errors import EvaluationError
from repro.model.graph import SchemaGraph
from repro.model.schema import Schema
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.budget import Budget, BudgetMeter

__all__ = [
    "CompiledSchema",
    "CompletionCache",
    "DELTA_MODES",
    "compile_schema",
    "domain_knowledge_key",
    "estimate_result_bytes",
    "invalidate",
    "registry_size",
    "resolve_delta_mode",
]

#: Default bound on the number of cached completion results per artifact.
DEFAULT_CACHE_SIZE = 1024


def estimate_result_bytes(value: CompletionResult) -> int:
    """A deterministic, cheap estimate of one cached result's footprint.

    Used by the serving tier's cross-tenant memory governor
    (:mod:`repro.serve.tenants`), which needs a *stable* accounting
    unit rather than a byte-exact one: the estimate covers the rendered
    path texts (the dominant variable part), a fixed per-path and
    per-label object overhead, and a fixed per-entry overhead for the
    key tuple, dict slot, and result shell.  Computed once per ``put``
    (puts are cold-path), never on lookups.

    Duck-typed on purpose: tests (and fault wrappers) park sentinel
    values in the cache, which are charged the fixed shell only.
    """
    size = 512  # key tuple + OrderedDict slot + CompletionResult shell
    for path in getattr(value, "paths", ()):
        size += 96 + 2 * len(str(path))
    size += 64 * len(getattr(value, "labels", ()))
    size += 48 * len(getattr(value, "support", ()))
    return size

#: Accepted values of the ``delta`` knob of :meth:`CompiledSchema.evolve`.
DELTA_MODES = ("incremental", "rebuild")

#: Environment override consulted when no explicit mode is given — CI's
#: rebuild matrix leg runs the whole suite with ``REPRO_DELTA=rebuild``.
DELTA_ENV_VAR = "REPRO_DELTA"


def resolve_delta_mode(mode: str | None) -> str:
    """Resolve the delta-application knob: explicit value, else the
    ``REPRO_DELTA`` environment override, else ``"incremental"``.

    ``"incremental"`` patches the artifact along the delta;
    ``"rebuild"`` compiles the post-edit schema from scratch (the
    honest baseline the A/B tests and the designer-session benchmark
    compare against).  Both produce byte-identical completions.
    """
    if mode is None:
        mode = os.environ.get(DELTA_ENV_VAR) or "incremental"
    if mode not in DELTA_MODES:
        raise ValueError(f"delta mode must be one of {DELTA_MODES}, got {mode!r}")
    return mode


def domain_knowledge_key(knowledge: DomainKnowledge) -> str:
    """A stable digest of a domain-knowledge declaration's content."""
    hasher = hashlib.sha256()
    for name in sorted(knowledge.excluded_classes):
        hasher.update(f"XC|{name}\n".encode())
    for source, rel_name in sorted(knowledge.excluded_relationships):
        hasher.update(f"XR|{source}|{rel_name}\n".encode())
    for name, penalty in sorted(knowledge.class_penalties):
        hasher.update(f"P|{name}|{penalty}\n".encode())
    return hasher.hexdigest()


class CompletionCache:
    """A bounded, thread-safe LRU cache of completion results.

    Values are the frozen :class:`CompletionResult` objects themselves —
    a warm lookup hands back the very object the cold run produced,
    which is what guarantees byte-identical ranked paths.  ``hits`` and
    ``misses`` are cumulative counters the batch entry points snapshot
    to report warm-vs-cold behavior.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[tuple, CompletionResult] = OrderedDict()
        # Keys whose entries were carried across a schema delta by
        # :meth:`adopt` rather than computed by a search on this
        # artifact — the audit log's lineage provenance.  Kept in
        # lockstep with ``_data`` under the same lock.
        self._carried: set[tuple] = set()
        # Memory accounting: per-entry byte estimates and their running
        # total (see :func:`estimate_result_bytes`), maintained in
        # lockstep with ``_data`` so the serving tier's cross-tenant
        # governor reads one integer instead of walking the cache.
        self._entry_bytes: dict[tuple, int] = {}
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, key: tuple) -> CompletionResult | None:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: tuple, value: CompletionResult) -> None:
        # The resilience hard invariant: anytime partial results (budget
        # truncations, degraded-E answers) must never be served warm —
        # a later un-governed query would silently inherit the
        # truncation.  Callers check ``exhausted`` first; this raise is
        # the backstop the chaos suite leans on.
        if not getattr(value, "exhausted", True):
            raise ValueError(
                "refusing to cache a partial completion result "
                f"(truncation_reason={value.truncation_reason!r})"
            )
        size = estimate_result_bytes(value)
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            self._carried.discard(key)  # freshly computed on this artifact
            self._bytes += size - self._entry_bytes.get(key, 0)
            self._entry_bytes[key] = size
            while len(self._data) > self.maxsize:
                self._drop_oldest_locked()

    def _drop_oldest_locked(self) -> tuple:
        """Evict the LRU entry (caller holds the lock)."""
        evicted_key, _ = self._data.popitem(last=False)
        self._carried.discard(evicted_key)
        self._bytes -= self._entry_bytes.pop(evicted_key, 0)
        return evicted_key

    def evict_lru(self, count: int = 1) -> tuple[int, int]:
        """Evict up to ``count`` least-recently-used entries.

        Returns ``(entries_evicted, bytes_freed)``.  This is the
        serving tier's memory-pressure valve: the cross-tenant governor
        calls it on whichever tenant cache is globally least recently
        touched until the fleet fits the configured bound again.
        """
        evicted = 0
        freed = 0
        with self._lock:
            while evicted < count and self._data:
                before = self._bytes
                self._drop_oldest_locked()
                freed += before - self._bytes
                evicted += 1
        return evicted, freed

    def estimated_bytes(self) -> int:
        """The running total of the per-entry byte estimates."""
        with self._lock:
            return self._bytes

    def entries(self) -> list[tuple[tuple, CompletionResult]]:
        """A consistent snapshot of ``(key, result)`` pairs (LRU order).

        Read-only view for the process-pool hand-off: a worker diffs
        the snapshot taken before its batch slice against the one after
        to find the entries its completions added, and ships exactly
        those back for the parent to adopt.  Does not touch recency.
        """
        with self._lock:
            return list(self._data.items())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._carried.clear()
            self._entry_bytes.clear()
            self._bytes = 0

    def provenance(self, key: tuple) -> str:
        """How this artifact's cache came to hold ``key``.

        ``"carried"`` when the entry survived a schema delta through
        :meth:`adopt`'s support-set check; ``"computed"`` when a search
        on this artifact produced it.  Only meaningful for keys
        currently cached (the audit log asks right after a hit).
        """
        return "carried" if key in self._carried else "computed"

    def adopt(
        self,
        other: "CompletionCache",
        old_fingerprint: str,
        new_fingerprint: str,
        frontier: frozenset[str],
    ) -> tuple[int, int]:
        """Carry ``other``'s entries across a schema delta, surgically.

        An entry survives iff its result's recorded support set is
        non-empty and disjoint from the delta's eviction frontier
        (:meth:`SchemaDelta.eviction_frontier
        <repro.model.delta.SchemaDelta.eviction_frontier>` — the source
        classes of its added/removed edges) — the soundness argument is
        on :attr:`CompletionResult.support
        <repro.core.completion.CompletionResult.support>`: no edge
        change outside the support can alter the result, so the carried
        object is byte-identical to what a cold search over the evolved
        schema would produce.  Surviving keys are re-stamped from the
        old fingerprint to the new one (the fingerprint is the key's
        first element by construction of
        :meth:`CompiledSchema.cache_key`).  Returns
        ``(carried, evicted)`` counts; LRU recency is preserved.
        """
        carried = evicted = 0
        with other._lock:
            entries = list(other._data.items())
        with self._lock:
            for key, value in entries:
                support = getattr(value, "support", frozenset())
                if (
                    support
                    and frontier.isdisjoint(support)
                    and key
                    and key[0] == old_fingerprint
                ):
                    new_key = (new_fingerprint,) + key[1:]
                    self._data[new_key] = value
                    self._carried.add(new_key)
                    size = estimate_result_bytes(value)
                    self._bytes += size - self._entry_bytes.get(new_key, 0)
                    self._entry_bytes[new_key] = size
                    carried += 1
                else:
                    evicted += 1
            while len(self._data) > self.maxsize:
                self._drop_oldest_locked()
        return carried, evicted

    def __len__(self) -> int:
        return len(self._data)

    def info(self) -> dict[str, int]:
        """Counter snapshot for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "maxsize": self.maxsize,
            "bytes": self._bytes,
        }

    def __repr__(self) -> str:
        return (
            f"CompletionCache(size={len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class CompiledSchema:
    """One immutable compilation artifact for a schema.

    Construct directly for an unshared artifact (benchmarks measuring
    true cold cost do this); everyday code should go through
    :func:`compile_schema`, which memoizes by content.

    Parameters
    ----------
    schema:
        The schema to compile.  The artifact snapshots its content; the
        stored :attr:`fingerprint` is the mutation detector.
    order:
        Better-than partial order; defaults to the paper's Figure 3
        reconstruction.
    domain_knowledge:
        Optional Section 5.2 knowledge; its exclusions are baked into
        the frozen traversal graph.
    cache_size:
        Bound of the completion LRU cache.
    """

    def __init__(
        self,
        schema: Schema,
        order: PartialOrder | None = None,
        domain_knowledge: DomainKnowledge | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        started = time.perf_counter()
        with get_tracer().span("compile", schema=schema.name) as span:
            self.schema = schema
            self.order = order if order is not None else DEFAULT_ORDER
            self.domain_knowledge = (
                domain_knowledge
                if domain_knowledge is not None
                else DomainKnowledge.none()
            )
            problems = self.domain_knowledge.validate_against(schema)
            if problems:
                raise EvaluationError(
                    "domain knowledge does not match schema: "
                    + "; ".join(problems)
                )
            self.fingerprint = schema.fingerprint()
            self.order_key = self.order.content_key()
            self.knowledge_key = domain_knowledge_key(self.domain_knowledge)
            self.graph = self.domain_knowledge.restrict(SchemaGraph(schema))
            self.caution_sets = CautionSets.for_order(self.order)
            # The Carré label closure (all-pairs reachability + label
            # lower bounds) shared by every search over this artifact.
            # Construction is cheap: the reachability matrix and the
            # per-target tables are built lazily on first use, so
            # compile_seconds stays dominated by the caution-set
            # brute force.
            self.closure = SchemaClosure.for_graph(self.graph)
            self.cache = CompletionCache(cache_size)
            self._searches: dict[tuple, CompletionSearch] = {}
            self._lock = threading.Lock()
            #: Fingerprints of the ancestor artifacts this one was
            #: evolved from, oldest first; empty for cold compiles.
            self.lineage: tuple[str, ...] = ()
            self.compile_seconds = time.perf_counter() - started
            span.set(
                fingerprint=self.fingerprint[:16],
                order=self.order.name,
                seconds=self.compile_seconds,
            )
        get_metrics().record_compile(self.compile_seconds)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def key(self) -> tuple[str, str, str]:
        """The registry identity: (fingerprint, order key, knowledge key)."""
        return (self.fingerprint, self.order_key, self.knowledge_key)

    def is_stale(self) -> bool:
        """True when the underlying schema mutated after compilation."""
        return self.schema.fingerprint() != self.fingerprint

    # ------------------------------------------------------------------
    # Schema deltas
    # ------------------------------------------------------------------

    def evolve(
        self,
        delta,
        mode: str | None = None,
        cache_size: int | None = None,
    ) -> "CompiledSchema":
        """A new artifact for this schema edited by ``delta``.

        The delta (:class:`~repro.model.delta.SchemaDelta` or a single
        command) is applied to a *copy* of the schema — this artifact
        stays immutable and registered — and the copy is validated
        (Isa acyclicity) before any compiled state is touched.

        ``mode="incremental"`` (the default; overridable via the
        ``REPRO_DELTA`` environment variable) patches the compiled
        pieces along the delta instead of rebuilding: the frozen
        adjacency is patched structurally (untouched rows shared), the
        order closure and caution sets are reused outright (they depend
        only on the partial order), the label closure is maintained per
        edge (:meth:`SchemaClosure.evolved
        <repro.core.closure.SchemaClosure.evolved>`), and the completion
        cache carries every entry whose support set the delta provably
        cannot affect.  ``mode="rebuild"`` compiles the edited schema
        cold — the honest baseline; both modes produce byte-identical
        completions.

        Either way the evolved artifact registers under its new
        fingerprint with this artifact's fingerprint appended to its
        :attr:`lineage`, so repeated edits form a traceable chain.
        """
        mode = resolve_delta_mode(mode)
        size = cache_size if cache_size is not None else self.cache.maxsize
        with get_tracer().span(
            "delta_apply", schema=self.schema.name, mode=mode
        ) as span:
            new_schema = self.schema.copy()
            new_schema.apply(delta)
            new_schema.validate()
            touched = delta.touched_classes()
            if mode == "rebuild":
                evolved = CompiledSchema(
                    new_schema,
                    order=self.order,
                    domain_knowledge=self.domain_knowledge,
                    cache_size=size,
                )
            else:
                evolved = self._evolve_incremental(
                    new_schema, touched, delta.eviction_frontier(), size
                )
            evolved.lineage = self.lineage + (self.fingerprint,)
            span.set(
                commands=len(delta),
                touched=len(touched),
                fingerprint=evolved.fingerprint[:16],
                seconds=evolved.compile_seconds,
            )
        get_metrics().counter("delta.applied").inc()
        with _REGISTRY_LOCK:
            existing = _REGISTRY.get(evolved.key)
            if existing is not None and not existing.is_stale():
                return existing
            _registry_put(evolved)
        return evolved

    def _evolve_incremental(
        self,
        new_schema: Schema,
        touched: frozenset[str],
        frontier: frozenset[str],
        cache_size: int,
    ) -> "CompiledSchema":
        """The patching path of :meth:`evolve` (see its contract)."""
        started = time.perf_counter()
        evolved = CompiledSchema.__new__(CompiledSchema)
        evolved.schema = new_schema
        evolved.order = self.order
        evolved.domain_knowledge = self.domain_knowledge
        evolved.fingerprint = new_schema.fingerprint()
        evolved.order_key = self.order_key
        evolved.knowledge_key = self.knowledge_key
        evolved.graph = self.graph.evolved(new_schema, touched)
        evolved.caution_sets = self.caution_sets
        evolved.closure = self.closure.evolved(evolved.graph)
        evolved.cache = CompletionCache(cache_size)
        carried, evicted = evolved.cache.adopt(
            self.cache, self.fingerprint, evolved.fingerprint, frontier
        )
        if evicted:
            get_metrics().counter("cache.selective_evictions").inc(evicted)
        evolved._searches = {}
        evolved._lock = threading.Lock()
        evolved.lineage = ()
        evolved.compile_seconds = time.perf_counter() - started
        return evolved

    # ------------------------------------------------------------------
    # Shared search instances and the completion cache
    # ------------------------------------------------------------------

    def searcher(
        self,
        e: int = 1,
        use_caution_sets: bool = True,
        apply_inheritance_criterion: bool = True,
        max_depth: int | None = None,
        pruning: str | None = None,
        kernel: str | None = None,
    ) -> CompletionSearch:
        """The shared Algorithm 2 instance for one (E, flags) setting."""
        pruning = resolve_pruning(pruning)
        kernel = resolve_kernel(kernel)
        key = (
            e,
            use_caution_sets,
            apply_inheritance_criterion,
            max_depth,
            pruning,
            kernel,
        )
        with self._lock:
            search = self._searches.get(key)
            if search is None:
                search = CompletionSearch(
                    self.graph,
                    order=self.order,
                    e=e,
                    use_caution_sets=use_caution_sets,
                    apply_inheritance_criterion=apply_inheritance_criterion,
                    max_depth=max_depth,
                    caution_sets=self.caution_sets,
                    pruning=pruning,
                    closure=self.closure if pruning == "closure" else None,
                    kernel=kernel,
                )
                self._searches[key] = search
            return search

    def cache_key(
        self,
        text: str,
        e: int,
        use_caution_sets: bool,
        apply_inheritance_criterion: bool,
        max_depth: int | None,
        pruning: str | None = None,
        kernel: str | None = None,
    ) -> tuple:
        """The full cache key for one normalized expression text.

        ``text`` must be the *normalized* rendering (``str()`` of the
        parsed expression, or the ``"class:"``-prefixed form for
        class-target completions) so spelling variants of one
        expression share an entry.

        The pruning mode — and likewise the kernel — is part of the key
        even though both knobs are answer-preserving: A/B comparisons
        (equivalence tests, benchmarks) must never have one mode served
        warm from the other's cold run.
        """
        return (
            self.fingerprint,
            text,
            self.order_key,
            e,
            use_caution_sets,
            apply_inheritance_criterion,
            max_depth,
            self.knowledge_key,
            resolve_pruning(pruning),
            resolve_kernel(kernel),
        )

    def complete_simple(
        self,
        root: str,
        relationship_name: str,
        e: int = 1,
        use_caution_sets: bool = True,
        apply_inheritance_criterion: bool = True,
        max_depth: int | None = None,
        budget: "Budget | None" = None,
        meter: "BudgetMeter | None" = None,
        pruning: str | None = None,
        kernel: str | None = None,
    ) -> CompletionResult:
        """Cached single-gap completion ``root ~ relationship_name``.

        This is both the engine's fast path for the paper's focus form
        and the sub-completion entry :mod:`repro.core.multi` uses for
        each ``~`` segment of a general expression — so tilde segments
        shared across different queries hit the same cache entries.

        ``budget``/``meter`` govern a cache *miss* exactly as in
        :meth:`~repro.core.completion.CompletionSearch.run`; only
        exhausted results enter the cache, so a budget can shrink what
        gets cached but never poison it.  A warm hit is returned as-is
        (cached results are exhaustive by invariant).
        """
        text = f"{root}~{relationship_name}"
        key = self.cache_key(
            text,
            e,
            use_caution_sets,
            apply_inheritance_criterion,
            max_depth,
            pruning,
            kernel,
        )
        with get_tracer().span("cache_lookup", expression=text) as lookup:
            cached = self.cache.get(key)
            lookup.set(hit=cached is not None)
        audit = get_audit()
        if audit.enabled:
            audit.record(
                "cache",
                scope="simple",
                query=text,
                outcome="hit" if cached is not None else "miss",
                fingerprint=self.fingerprint[:12],
                lineage_depth=len(self.lineage),
                provenance=(
                    self.cache.provenance(key) if cached is not None else None
                ),
            )
        if cached is not None:
            get_metrics().record_cache(hit=True)
            return cached
        result = self.searcher(
            e=e,
            use_caution_sets=use_caution_sets,
            apply_inheritance_criterion=apply_inheritance_criterion,
            max_depth=max_depth,
            pruning=pruning,
            kernel=kernel,
        ).run(root, RelationshipTarget(relationship_name), budget=budget, meter=meter)
        if result.exhausted:
            self.cache.put(key, result)
        get_metrics().record_cache(hit=False)
        return result

    def cache_info(self) -> dict[str, float]:
        """Cache counters plus the one-off compile cost."""
        return self.cache.info() | {"compile_seconds": self.compile_seconds}

    def __repr__(self) -> str:
        return (
            f"CompiledSchema(schema={self.schema.name!r}, "
            f"fingerprint={self.fingerprint[:12]}..., "
            f"order={self.order.name!r}, cache={self.cache!r})"
        )


# ----------------------------------------------------------------------
# The module-level compile registry
# ----------------------------------------------------------------------

_REGISTRY: dict[tuple[str, str, str], CompiledSchema] = {}
#: Secondary index: fingerprint -> the registry keys carrying it.  Kept
#: in lockstep with ``_REGISTRY`` (same lock) so fingerprint-scoped
#: operations — :func:`invalidate`, eager stale eviction — are O(matches)
#: instead of a scan over every registered artifact.
_REGISTRY_BY_FP: dict[str, set[tuple[str, str, str]]] = {}
_REGISTRY_LOCK = threading.Lock()


def _registry_put(compiled: CompiledSchema) -> None:
    """Insert under ``_REGISTRY_LOCK`` (held by the caller)."""
    _REGISTRY[compiled.key] = compiled
    _REGISTRY_BY_FP.setdefault(compiled.fingerprint, set()).add(compiled.key)


def _registry_discard(key: tuple[str, str, str]) -> None:
    """Remove under ``_REGISTRY_LOCK`` (held by the caller)."""
    _REGISTRY.pop(key, None)
    keys = _REGISTRY_BY_FP.get(key[0])
    if keys is not None:
        keys.discard(key)
        if not keys:
            del _REGISTRY_BY_FP[key[0]]


def compile_schema(
    schema: Schema | CompiledSchema,
    order: PartialOrder | None = None,
    domain_knowledge: DomainKnowledge | None = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> CompiledSchema:
    """Compile a schema, reusing a content-equal artifact if one exists.

    Passing an existing :class:`CompiledSchema` returns it unchanged
    (so call sites can accept either form).  The registry key is the
    content triple, so two different-but-equal schema objects share one
    artifact and therefore one warm cache; a registered artifact whose
    schema has since mutated is evicted and recompiled from the schema
    handed in.
    """
    if isinstance(schema, CompiledSchema):
        return schema
    order = order if order is not None else DEFAULT_ORDER
    knowledge = (
        domain_knowledge
        if domain_knowledge is not None
        else DomainKnowledge.none()
    )
    key = (
        schema.fingerprint(),
        order.content_key(),
        domain_knowledge_key(knowledge),
    )
    with _REGISTRY_LOCK:
        compiled = _REGISTRY.get(key)
        if compiled is not None:
            if not compiled.is_stale():
                return compiled
            # Eager stale-artifact eviction: the registered artifact's
            # schema mutated after compilation, so it can never be
            # served again — drop it now rather than letting dead
            # entries accumulate until the next full invalidate().
            _registry_discard(key)
    # Compile outside the lock (brute-forcing caution sets and freezing
    # adjacency can take a while on large schemas); last writer wins.
    compiled = CompiledSchema(
        schema,
        order=order,
        domain_knowledge=knowledge,
        cache_size=cache_size,
    )
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(key)
        if existing is not None and not existing.is_stale():
            return existing  # a concurrent compile won the race
        _registry_put(compiled)
        return compiled


def invalidate(schema: Schema | None = None) -> int:
    """Drop registry entries; returns how many were removed.

    With a schema, only artifacts compiled from content equal to its
    *current* content are dropped; without one, the whole registry is
    cleared.
    """
    with _REGISTRY_LOCK:
        if schema is None:
            removed = len(_REGISTRY)
            _REGISTRY.clear()
            _REGISTRY_BY_FP.clear()
            return removed
        fingerprint = schema.fingerprint()
        stale = list(_REGISTRY_BY_FP.get(fingerprint, ()))
        for key in stale:
            _registry_discard(key)
        return len(stale)


def registry_size() -> int:
    """Number of live registry entries (for tests and diagnostics)."""
    return len(_REGISTRY)


def registered_artifacts() -> Iterable[CompiledSchema]:
    """Snapshot of the registered artifacts (for diagnostics)."""
    with _REGISTRY_LOCK:
        return list(_REGISTRY.values())
