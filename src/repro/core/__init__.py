"""The paper's primary contribution: incomplete path expressions and
their disambiguation (Sections 2.2, 3, 4).

Public surface: :class:`~repro.core.engine.Disambiguator` for everyday
use, :class:`~repro.core.completion.CompletionSearch` (Algorithm 2) and
:func:`~repro.core.algorithm1.traditional_path_computation` (Algorithm
1) for direct access, plus the AST/parser, the exhaustive enumerator,
and the search audit log (:mod:`repro.core.audit` — EXPLAIN ANALYZE
for disambiguation).
"""

from repro.core.algorithm1 import Algorithm1Result, traditional_path_computation
from repro.core.ast import ConcretePath, PathExpression, Step, TILDE
from repro.core.audit import (
    SearchAuditLog,
    audit_completion,
    diff_modes,
    get_audit,
    use_audit,
)
from repro.core.compiled import (
    CompiledSchema,
    CompletionCache,
    compile_schema,
    invalidate,
)
from repro.core.completion import (
    CompletionResult,
    CompletionSearch,
    complete_paths,
)
from repro.core.domain import DomainKnowledge
from repro.core.engine import BatchCompletionResult, Disambiguator
from repro.core.explain import Explanation, explain_candidate
from repro.core.enumerate import (
    count_consistent_paths,
    enumerate_consistent_paths,
    iter_consistent_paths,
)
from repro.core.inheritance_criterion import apply_preemption, preempts
from repro.core.multi import GeneralCompletionResult, complete_general
from repro.core.parser import parse_path_expression, tokenize
from repro.core.ranking import (
    RankedPath,
    rank_with_focus,
    rank_with_penalties,
)
from repro.core.printer import (
    format_candidates,
    format_path,
    format_path_verbose,
    format_result,
)
from repro.core.stats import TraversalStats
from repro.core.target import (
    ClassTarget,
    RelationshipTarget,
    Target,
    target_for_expression,
)

__all__ = [
    "Algorithm1Result",
    "BatchCompletionResult",
    "ClassTarget",
    "CompiledSchema",
    "CompletionCache",
    "CompletionResult",
    "CompletionSearch",
    "ConcretePath",
    "Disambiguator",
    "DomainKnowledge",
    "Explanation",
    "GeneralCompletionResult",
    "PathExpression",
    "RankedPath",
    "RelationshipTarget",
    "SearchAuditLog",
    "Step",
    "TILDE",
    "Target",
    "TraversalStats",
    "apply_preemption",
    "audit_completion",
    "compile_schema",
    "complete_general",
    "complete_paths",
    "invalidate",
    "count_consistent_paths",
    "diff_modes",
    "enumerate_consistent_paths",
    "explain_candidate",
    "get_audit",
    "format_candidates",
    "format_path",
    "format_path_verbose",
    "format_result",
    "iter_consistent_paths",
    "parse_path_expression",
    "preempts",
    "rank_with_focus",
    "rank_with_penalties",
    "target_for_expression",
    "tokenize",
    "traditional_path_computation",
    "use_audit",
]
