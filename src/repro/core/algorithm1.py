"""Algorithm 1 — the traditional path-computation DFS (paper Section 4).

The paper presents this as the reference algorithm for problems where
AGG and CON satisfy all of properties 1-6 plus monotonicity: it returns
only the optimal *labels* of paths from a source node S to a target node
T, pruning with the distributivity test (its line 9) and without caution
sets.

It exists here for two purposes:

* a baseline in the ablation experiments — running it with the paper's
  (non-distributive) AGG/CON quantifies exactly which plausible answers
  the caution-set enhancement saves;
* a didactic reference implementation matching the paper's pseudocode.
"""

from __future__ import annotations

import dataclasses
import time

from repro.algebra.agg import Aggregator
from repro.algebra.labels import PathLabel
from repro.algebra.order import DEFAULT_ORDER, PartialOrder
from repro.core.stats import TraversalStats
from repro.core.target import Target
from repro.model.graph import SchemaGraph

__all__ = ["Algorithm1Result", "traditional_path_computation"]


@dataclasses.dataclass(frozen=True)
class Algorithm1Result:
    """Optimal labels from S to T, plus traversal statistics."""

    root: str
    target_description: str
    labels: tuple[PathLabel, ...]
    stats: TraversalStats


def traditional_path_computation(
    graph: SchemaGraph,
    root: str,
    target: Target,
    order: PartialOrder | None = None,
) -> Algorithm1Result:
    """Run the paper's Algorithm 1 and return the optimal label set.

    Line mapping (paper pseudocode -> this code): visited flags are the
    ``visited`` set; ``best[T]`` is ``best_target``; the line-7/8/9
    conditions appear in the same order inside the edge loop.
    """
    order = order if order is not None else DEFAULT_ORDER
    aggregator = Aggregator(order, e=1)
    graph.schema.get_class(root)

    stats = TraversalStats()
    started = time.perf_counter()
    visited: set[str] = set()
    best: dict[str, list[PathLabel]] = {}
    best_target: list[PathLabel] = []

    # Iterative DFS with explicit frames (node, label, edge index).
    stack: list[tuple[str, PathLabel, int]] = []

    def enter(node: str, label: PathLabel) -> None:
        nonlocal best_target
        visited.add(node)
        stats.recursive_calls += 1
        # Lines 2-4: if T in children[v], fold the completing labels in.
        for edge in graph.edges_from(node):
            if target.is_completing_edge(edge) and edge.target not in visited:
                candidate = label.extend(edge.connector)
                best_target = aggregator.aggregate([candidate, *best_target])
                stats.complete_paths_found += 1
        stack.append((node, label, 0))

    def run() -> None:
        enter(root, PathLabel.identity())
        while stack:
            node, label, edge_index = stack.pop()
            edges = graph.edges_from(node)
            advanced = False
            while edge_index < len(edges):
                edge = edges[edge_index]
                edge_index += 1
                if target.is_completing_edge(edge):
                    continue
                child = edge.target
                stats.edges_considered += 1
                if child in visited:  # line 7: acyclicity
                    stats.pruned_visited += 1
                    continue
                child_label = label.extend(edge.connector)
                # Line 8: monotonic bound against best[T].  Algorithm 1
                # uses the set-change test (AGG({l_u} ∪ best[T]) != best[T]).
                if best_target and not aggregator.improves(
                    child_label, best_target
                ):
                    stats.pruned_target_bound += 1
                    continue
                # Line 9: 'distributivity' bound against best[u].
                child_best = best.get(child, [])
                if child_best and not aggregator.improves(
                    child_label, child_best
                ):
                    stats.pruned_best_bound += 1
                    continue
                best[child] = aggregator.aggregate(
                    [child_label, *child_best]
                )  # line 10
                stack.append((node, label, edge_index))
                enter(child, child_label)  # line 11
                advanced = True
                break
            if not advanced:
                visited.discard(node)  # line 13

    run()
    stats.elapsed_seconds = time.perf_counter() - started
    return Algorithm1Result(
        root=root,
        target_description=target.describe(),
        labels=tuple(best_target),
        stats=stats,
    )
