"""Tests for the Inheritance Semantics Criterion (Section 4.3)."""

import pytest

from repro.core.ast import ConcretePath
from repro.core.completion import complete_paths
from repro.core.inheritance_criterion import apply_preemption, preempts
from repro.core.target import RelationshipTarget
from repro.model.builder import SchemaBuilder
from repro.model.graph import SchemaGraph


@pytest.fixture()
def shadowing_schema():
    """student refines person's name; ta sits below grad below student."""
    return (
        SchemaBuilder("shadow")
        .cls("person").attr("name")
        .cls("student").isa("person").attr("name")
        .cls("grad").isa("student")
        .build()
    )


def _path(graph, root, steps):
    path = ConcretePath.start(root)
    for source, name in steps:
        edge = next(
            e for e in graph.edges_from(source) if e.name == name
        )
        path = path.extend(edge)
    return path


class TestPreempts:
    def test_own_declaration_preempts_inherited(self, shadowing_schema):
        graph = SchemaGraph(shadowing_schema)
        own = _path(graph, "student", [("student", "name")])
        inherited = _path(
            graph, "student", [("student", "person"), ("person", "name")]
        )
        assert preempts(own, inherited)
        assert not preempts(inherited, own)

    def test_nearer_ancestor_preempts_farther(self, shadowing_schema):
        graph = SchemaGraph(shadowing_schema)
        near = _path(
            graph, "grad", [("grad", "student"), ("student", "name")]
        )
        far = _path(
            graph,
            "grad",
            [("grad", "student"), ("student", "person"), ("person", "name")],
        )
        assert preempts(near, far)

    def test_divergent_isa_chains_do_not_preempt(self, university_graph):
        grad_chain = _path(
            university_graph,
            "ta",
            [
                ("ta", "grad"),
                ("grad", "student"),
                ("student", "person"),
                ("person", "name"),
            ],
        )
        instructor_chain = _path(
            university_graph,
            "ta",
            [
                ("ta", "instructor"),
                ("instructor", "teacher"),
                ("teacher", "employee"),
                ("employee", "person"),
                ("person", "name"),
            ],
        )
        assert not preempts(grad_chain, instructor_chain)
        assert not preempts(instructor_chain, grad_chain)

    def test_different_final_names_do_not_preempt(self, university_graph):
        name_path = _path(
            university_graph,
            "student",
            [("student", "person"), ("person", "name")],
        )
        ssn_path = _path(
            university_graph,
            "student",
            [("student", "person"), ("person", "ssn")],
        )
        assert not preempts(name_path, ssn_path)

    def test_non_isa_gap_does_not_preempt(self, university_graph):
        """The edges between the fork and the final step must be Isa."""
        short = _path(
            university_graph, "student", [("student", "department")]
        )
        long = _path(
            university_graph,
            "student",
            [("student", "take"), ("course", "name")],
        )
        assert not preempts(short, long)

    def test_irreflexive(self, shadowing_schema):
        graph = SchemaGraph(shadowing_schema)
        path = _path(graph, "student", [("student", "name")])
        assert not preempts(path, path)


class TestApplyPreemption:
    def test_removes_preempted_paths(self, shadowing_schema):
        graph = SchemaGraph(shadowing_schema)
        own = _path(graph, "student", [("student", "name")])
        inherited = _path(
            graph, "student", [("student", "person"), ("person", "name")]
        )
        survivors, removed = apply_preemption([inherited, own])
        assert removed == 1
        assert survivors == [own]

    def test_no_preemption_keeps_everything(self, university_graph):
        paths = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        ).paths
        survivors, removed = apply_preemption(list(paths))
        assert removed == 0
        assert len(survivors) == len(paths)


class TestInsideCompletion:
    def test_completion_applies_the_criterion(self, shadowing_schema):
        graph = SchemaGraph(shadowing_schema)
        result = complete_paths(graph, "grad", RelationshipTarget("name"))
        assert result.expressions == ["grad@>student.name"]
        assert result.stats.preempted_paths >= 1

    def test_criterion_can_be_disabled(self, shadowing_schema):
        graph = SchemaGraph(shadowing_schema)
        result = complete_paths(
            graph,
            "grad",
            RelationshipTarget("name"),
            apply_inheritance_criterion=False,
        )
        assert "grad@>student.name" in result.expressions
        assert "grad@>student@>person.name" in result.expressions
