"""Tests pinning the Figure 2 university schema to the paper."""

from repro.core.parser import parse_path_expression
from repro.model.kinds import RelationshipKind
from repro.schemas.university import UNIVERSITY_EXAMPLES


class TestStructure:
    def test_multiple_inheritance_of_ta(self, university):
        assert set(university.isa_parents("ta")) == {"grad", "instructor"}

    def test_both_isa_chains_reach_person(self, university):
        from repro.model.inheritance import is_subclass_of

        for cls in ("grad", "instructor", "staff", "professor"):
            assert is_subclass_of(university, cls, "person")

    def test_department_has_part_professor(self, university):
        rel = university.get_relationship("department", "professor")
        assert rel.kind is RelationshipKind.HAS_PART

    def test_inverses_present_for_non_attributes(self, university):
        assert university.validate(require_inverses=True) == []

    def test_name_is_genuinely_ambiguous(self, university):
        owners = {
            r.source for r in university.relationships_named("name")
        }
        assert {"person", "course", "department"} <= owners


class TestPaperExamples:
    def test_every_example_parses(self, university):
        for text, _meaning in UNIVERSITY_EXAMPLES:
            parse_path_expression(text)

    def test_complete_examples_validate_against_the_schema(
        self, university_engine
    ):
        for text, _meaning in UNIVERSITY_EXAMPLES:
            expression = parse_path_expression(text)
            if expression.is_complete and expression.steps:
                result = university_engine.complete(expression)
                assert result.expressions == [str(expression)]

    def test_flagship_completion(self, university_engine):
        result = university_engine.complete("ta ~ name")
        assert result.expressions == [
            "ta@>grad@>student@>person.name",
            "ta@>instructor@>teacher@>employee@>person.name",
        ]
