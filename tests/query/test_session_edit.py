"""Tests for the session's ``:edit`` command family (delta PR)."""

import json

import pytest

from repro.model.instances import Database
from repro.query.session import CompletionSession


@pytest.fixture()
def db(university):
    db = Database(university)
    bob = db.create("ta")
    db.set_attribute(bob, "name", "bob")
    return db


@pytest.fixture()
def session(db):
    return CompletionSession(db)


def edit(session, line):
    interaction = session.ask(line)
    assert interaction.is_command
    return interaction.message


class TestEditApply:
    def test_add_class_evolves_engine_and_database(self, session, db):
        before = session.engine.schema.fingerprint()
        message = edit(session, ":edit add-class observatory")
        assert message.startswith("applied: add class observatory")
        assert "fingerprint" in message
        assert session.engine.schema.has_class("observatory")
        # The database now points at the evolved schema too.
        assert db.schema is session.engine.schema
        assert session.engine.schema.fingerprint() != before

    def test_add_rel_installs_both_directions(self, session):
        edit(session, ":edit add-class observatory")
        message = edit(session, ":edit add-rel ta scopes observatory $>")
        assert message.startswith("applied:")
        schema = session.engine.schema
        assert schema.get_relationship("ta", "scopes").target == "observatory"
        assert schema.get_relationship("observatory", "ta").target == "ta"

    def test_add_attr_defaults_to_character_primitive(self, session):
        edit(session, ":edit add-attr course credits I")
        rel = session.engine.schema.get_relationship("course", "credits")
        assert rel.target == "I"
        edit(session, ":edit add-attr course label")
        assert session.engine.schema.get_relationship(
            "course", "label"
        ).target == "C"

    def test_edits_are_queryable_immediately(self, session):
        edit(session, ":edit add-attr ta nickname")
        interaction = session.ask("ta ~ nickname")
        assert not interaction.is_command
        assert interaction.candidates  # the new attribute completes

    def test_remove_class_cascade(self, session):
        assert session.engine.schema.relationships_from("professor")
        message = edit(session, ":edit remove-class professor cascade")
        assert message.startswith("applied:")
        schema = session.engine.schema
        assert not schema.has_class("professor")
        assert all(
            "professor" not in (rel.source, rel.target)
            for rel in schema.relationships()
        )

    def test_isa_edges(self, session):
        edit(session, ":edit add-class postdoc")
        message = edit(session, ":edit add-isa postdoc staff")
        assert message.startswith("applied:")
        assert edit(session, ":edit remove-isa postdoc staff").startswith(
            "applied:"
        )


class TestEditStatusAndUndo:
    def test_status_counts_edits(self, session):
        schema = session.engine.schema
        status = edit(session, ":edit")
        assert status.startswith("0 edit(s) applied")
        assert f"{schema.user_class_count} classes" in status
        assert schema.fingerprint()[:12] in status
        edit(session, ":edit add-class observatory")
        assert edit(session, ":edit").startswith("1 edit(s) applied")

    def test_undo_restores_fingerprint_and_pops_stack(self, session):
        before = session.engine.schema.fingerprint()
        edit(session, ":edit add-class observatory")
        message = edit(session, ":edit undo")
        assert message.startswith("undid: add class observatory")
        assert session.engine.schema.fingerprint() == before
        assert not session.engine.schema.has_class("observatory")
        assert edit(session, ":edit undo") == "nothing to undo"

    def test_undo_is_lifo(self, session):
        edit(session, ":edit add-class alpha")
        edit(session, ":edit add-class beta")
        assert "beta" in edit(session, ":edit undo")
        assert "alpha" in edit(session, ":edit undo")


class TestEditErrors:
    def test_failed_edit_leaves_session_untouched(self, session):
        before = session.engine
        # "course" is referenced by several relationships; a bare
        # remove-class is rejected by the schema with the danglers named.
        message = edit(session, ":edit remove-class course")
        assert message.startswith("error:")
        assert session.engine is before
        assert not session._edits

    def test_unknown_verb_shows_usage(self, session):
        message = edit(session, ":edit frobnicate x")
        assert "unknown :edit verb" in message
        assert "usage: :edit" in message

    def test_bad_arity_shows_usage(self, session):
        assert edit(session, ":edit add-class").startswith("usage:")
        assert edit(session, ":edit add-rel a b").startswith("usage:")

    def test_unknown_kind_symbol(self, session):
        message = edit(session, ":edit add-rel ta scopes course %%")
        assert "unknown relationship kind" in message

    def test_bad_attribute_primitive(self, session):
        message = edit(session, ":edit add-attr ta nickname Z")
        assert "must be a primitive class" in message

    def test_remove_missing_relationship(self, session):
        message = edit(session, ":edit remove-rel ta ghost")
        assert message.startswith("error: no relationship")


class TestEditObservability:
    def test_evolution_counters_land_in_session_metrics(self, session):
        edit(session, ":edit add-class observatory")
        summary = json.loads(session.ask(":metrics").message)
        assert summary["counters"]["delta.applied"] == 1
