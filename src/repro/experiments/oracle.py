"""The simulated schema designer (substitution for the human subject).

The paper's experiment used the CUPID schema's designer as the human
subject: he proposed ten incomplete path expressions and specified the
intended completions U₀ for each; occasionally he accepted a returned
path from S - U₀ as equally plausible, producing the final U used for
recall/precision.

We cannot re-run a human, so :class:`DesignerOracle` encodes the same
*behaviour*, calibrated to the published findings:

* the intended completions are, for most queries, the strongest/shortest
  paths — the paper found precision 100% at E=1, i.e. the designer's
  intent coincided with least-semantic-length answers;
* roughly 10% of intents are idiosyncratic paths "unlikely to be
  captured by a generic algorithm" (the flat 90% recall);
* a small ``also_plausible`` set models the overlooked-but-accepted
  answers (U = U₀ ∪ (S ∩ also_plausible)).

See DESIGN.md Section 3 for the substitution rationale.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

__all__ = ["WorkloadQuery", "DesignerOracle"]


@dataclasses.dataclass(frozen=True)
class WorkloadQuery:
    """One of the designer's ad-hoc incomplete path expressions.

    Parameters
    ----------
    query_id:
        Short identifier (``q01`` ... ``q10``).
    text:
        The incomplete path expression as typed.
    intended:
        U₀ — canonical strings of the completions the designer meant.
        May include idiosyncratic paths the algorithm cannot find.
    also_plausible:
        Paths the designer would accept as equally plausible if shown
        (folded into U only when actually returned).
    note:
        What the query asks, in prose (for reports).
    """

    query_id: str
    text: str
    intended: tuple[str, ...]
    also_plausible: tuple[str, ...] = ()
    note: str = ""

    def final_intent(self, returned: Iterable[str]) -> set[str]:
        """U given the system's S (the paper's U₀-extension rule)."""
        returned = set(returned)
        return set(self.intended) | (returned & set(self.also_plausible))


class DesignerOracle:
    """Holds a workload and answers intent questions about it."""

    def __init__(self, queries: Iterable[WorkloadQuery]) -> None:
        self.queries: tuple[WorkloadQuery, ...] = tuple(queries)
        ids = [query.query_id for query in self.queries]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate query ids in workload")

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def query(self, query_id: str) -> WorkloadQuery:
        """Look a query up by id."""
        for query in self.queries:
            if query.query_id == query_id:
                return query
        raise KeyError(query_id)

    def intended_union(self) -> set[str]:
        """All intended completions across the workload."""
        return {
            expression
            for query in self.queries
            for expression in query.intended
        }
