"""Bench E6 — serving-grade telemetry under the CUPID workload.

Runs the ten CUPID workload queries three times over one warmed
artifact:

* a *bare* pass with no telemetry installed (the baseline);
* a *telemetry* pass under a :class:`~repro.obs.metrics.MetricsRegistry`
  plus a :class:`~repro.obs.slowlog.SlowQueryLog` (the serving
  configuration: counters always on, traces retained tail-based);
* a *scrape* of the registry through a live
  :class:`~repro.obs.serve.MetricsServer` endpoint.

The contract under test: the telemetry pass returns identical ranked
paths, the slow log retains only its top-K, the exported JSONL
validates against ``slowlog_entry.schema.json``, and the Prometheus
exposition served over HTTP equals the one rendered directly.

Artifacts land at the repo root — ``BENCH_prom.txt`` (one scrape
snapshot) and ``BENCH_slowlog.jsonl`` (the retained slow queries) —
and both passes append to the ``BENCH_history.jsonl`` perf ledger that
``python -m repro.obs.perf compare`` gates in CI.
"""

from __future__ import annotations

import os
import pathlib
import time
import urllib.request

import pytest

from benchmarks.conftest import emit, record_bench
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.promtext import render_prometheus
from repro.obs.schema import validate_slowlog_entries
from repro.obs.serve import MetricsServer
from repro.obs.slowlog import SlowQueryLog, use_slowlog

_ROOT = pathlib.Path(__file__).parent.parent
_PROM_FILE = _ROOT / "BENCH_prom.txt"
_SLOWLOG_FILE = _ROOT / "BENCH_slowlog.jsonl"

QUICK = os.environ.get("BENCH_QUICK") == "1"
E = 1 if QUICK else 3
TOP_K = 5


def _ranked_paths(batch) -> list[list[str]]:
    return [[str(path) for path in result.paths] for result in batch.results]


@pytest.mark.benchmark(group="serving-telemetry")
def test_serving_telemetry_under_workload(cupid, oracle):
    texts = [query.text for query in oracle.queries]

    compiled = CompiledSchema(cupid)
    engine = Disambiguator(compiled, e=E)
    engine.complete_batch(texts)  # warm the shared cache once

    start = time.perf_counter()
    bare = engine.complete_batch(texts)
    bare_seconds = time.perf_counter() - start

    registry = MetricsRegistry()
    slowlog = SlowQueryLog(top_k=TOP_K)
    start = time.perf_counter()
    with use_metrics(registry), use_slowlog(slowlog):
        served = engine.complete_batch(texts)
    telemetry_seconds = time.perf_counter() - start

    assert _ranked_paths(served) == _ranked_paths(bare)
    assert slowlog.observed == len(texts)
    entries = slowlog.entries()
    assert 0 < len(entries) <= TOP_K
    records = slowlog.to_records()
    validate_slowlog_entries(records)
    slowlog.write_jsonl(_SLOWLOG_FILE)

    # Scrape the registry over a live HTTP endpoint and check it matches
    # the directly rendered exposition byte for byte.
    with MetricsServer(registry, port=0) as server:
        with urllib.request.urlopen(server.url, timeout=10) as response:
            scraped = response.read().decode("utf-8")
    direct = render_prometheus(registry)
    assert scraped == direct
    _PROM_FILE.write_text(scraped)

    record_bench("serving.bare_seconds", bare_seconds, e=E, quick=QUICK)
    record_bench(
        "serving.telemetry_seconds", telemetry_seconds, e=E, quick=QUICK
    )

    sample = next(
        line for line in scraped.splitlines() if not line.startswith("#")
    )
    lines = [
        f"workload: {len(texts)} warm CUPID queries at E={E}"
        + (" (quick mode)" if QUICK else ""),
        f"bare:      {bare_seconds * 1000:8.2f} ms",
        f"telemetry: {telemetry_seconds * 1000:8.2f} ms "
        f"(registry + slow log installed)",
        f"slow log:  {len(entries)} of {slowlog.observed} retained "
        f"(top-{TOP_K}) -> {_SLOWLOG_FILE.name}",
        f"scrape:    {len(scraped.splitlines())} exposition line(s) from "
        f"{server.url} -> {_PROM_FILE.name}",
        f"sample:    {sample}",
    ]
    emit("Serving telemetry: metrics scrape + tail-based slow log", "\n".join(lines))
