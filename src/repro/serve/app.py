"""The resilient always-on serving tier.

:class:`ServingTier` is an asyncio front end over the synchronous
disambiguation engine, built so that *overload degrades service
instead of collapsing it*:

* **Bounded admission.**  At most ``queue_limit`` requests are admitted
  but unanswered at any moment (executing plus queued for a worker).
  The request over the bound is *shed* immediately with ``429 Too Many
  Requests`` and a ``Retry-After`` hint — clients wait in their own
  retry loops, not in unbounded server memory, and the server never
  hangs under a burst.

* **Mandatory per-request budgets.**  Every admitted request runs under
  a :class:`~repro.resilience.budget.Budget` with a wall-clock deadline
  (server default, request-adjustable via ``X-Deadline-Ms`` up to the
  configured ceiling; ``X-Max-Nodes`` caps expansion work).  Budgets are
  installed as the request's ambient budget with ``partial_ok`` on, so
  a tripped request returns ``206 Partial Content`` with the anytime
  best-so-far answer from the degradation ladder — never a hung
  connection.

* **Graceful degradation under drain.**  ``SIGTERM`` (or
  :meth:`begin_drain`) flips the tier to draining: new work is refused
  with ``503`` + ``Retry-After`` while in-flight requests keep running.
  Budgets are armed against the tier's *drain-aware clock* — after the
  drain hard deadline it reads far in the future, so every outstanding
  deadline expires at once and each in-flight request returns its
  best-so-far ``206`` within one budget-check stride.  No worker is
  ever killed mid-traversal; the executor never leaks a thread.

* **Event-loop isolation.**  The synchronous engine only ever runs on
  the bounded executor pool, inside a :func:`contextvars.copy_context`
  copy, with the tier's metrics registry and slow-query log installed
  as that request's ambient observability — requests cannot see each
  other's context, and the engine never blocks the accept loop.

* **Bounded memory.**  After every cache-filling request the
  cross-tenant governor (:class:`~repro.serve.tenants.TenantRegistry`)
  evicts least-recently-used completion-cache entries from the least
  recently touched tenant until the fleet fits ``max_cache_bytes``.

* **Request-scoped observability.**  Every request carries a request
  ID (inbound ``X-Request-Id`` honoured after sanitation, minted
  otherwise) stamped into the response header, the structured access
  log (:class:`~repro.obs.reqlog.AccessLog`), the slow-log entry, and
  the audit stream.  ``trace_sample_rate`` head-samples requests into
  a per-request :class:`~repro.obs.tracer.RecordingTracer`; slow,
  truncated, or errored requests are *tail-promoted* into the slow log
  regardless of the sampling decision.  A rolling-window
  :class:`~repro.obs.slo.SLOMonitor` evaluates availability and
  latency burn rates into ``/healthz``, ``/metrics``, and the
  ``GET /v1/debug`` ops endpoint.

* **Cooperative drain cancellation.**  Past the drain hard deadline a
  :class:`~repro.resilience.budget.CancelSignal` shared by every
  admitted budget fires, so in-flight searches abort at their very
  next expansion — the dilated drain clock remains as the backstop for
  meters between clock samples.

Endpoints: ``POST /v1/complete``, ``POST /v1/query``,
``GET /v1/schemas``, ``GET /v1/debug``, plus the scrape pair absorbed
from :mod:`repro.obs.serve` — ``GET /metrics`` (Prometheus text, with
per-route/status labels) and ``GET /healthz``.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.errors import (
    BudgetExceededError,
    InjectedFaultError,
    ReproError,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NullMetricsRegistry,
    labelled,
    use_metrics,
)
from repro.obs.promtext import render_prometheus
from repro.obs.reqlog import (
    REQUEST_ID_HEADER,
    AccessLog,
    HeadSampler,
    RequestContext,
    clean_request_id,
    get_request,
    mint_request_id,
    use_request,
)
from repro.obs.serve import health_snapshot
from repro.obs.slo import SLOMonitor
from repro.obs.slowlog import RETAINED_SAMPLED, SlowQueryLog, use_slowlog
from repro.obs.tracer import RecordingTracer, get_tracer, use_tracer
from repro.query.language import run_query
from repro.resilience.budget import CancelSignal, use_budget
from repro.serve.config import ServeConfig
from repro.serve.http import (
    HttpError,
    Request,
    json_body,
    read_request,
    render_response,
)
from repro.serve.tenants import TenantRegistry, UnknownTenantError

__all__ = ["ServingTier"]

#: Content type of the Prometheus text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Time-dilation factor of the drain-aware clock past the hard
#: deadline.  A *rate* rather than a constant offset on purpose: a
#: meter armed before the deadline sees an enormous jump and trips at
#: its next check, and a meter armed *after* it (a straggler already
#: admitted) still measures elapsed time — just a million times faster
#: — so even the 10 s deadline ceiling expires within ~10 µs of real
#: time.  A constant offset would shift ``started_at`` and the deadline
#: together and never trip late-armed meters.
_DRAIN_CLOCK_RATE = 1e6


class ServingTier:
    """The async always-on front end over a :class:`TenantRegistry`.

    Two embeddings are supported:

    * **async** — ``await tier.start()`` inside a running loop, then
      ``await tier.serve_forever()`` (installs signal handlers) or
      drive requests yourself and ``await tier.drain()`` /
      ``await tier.aclose()``;
    * **threaded** — ``tier.run_in_thread()`` boots a private event
      loop on a daemon thread (tests, benchmarks, the bundled client's
      in-process mode); ``tier.stop()`` drains and joins it.
    """

    def __init__(
        self,
        tenants: TenantRegistry,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | NullMetricsRegistry | None = None,
        slowlog: SlowQueryLog | None = None,
    ) -> None:
        self.tenants = tenants
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slowlog = (
            slowlog
            if slowlog is not None
            else SlowQueryLog(
                threshold_ms=self.config.slow_ms, promote_failures=True
            )
        )
        self.access_log = AccessLog(
            capacity=self.config.access_log_capacity,
            path=self.config.access_log_path,
        )
        self.access_log.enabled = self.config.access_log
        self.sampler = HeadSampler(
            self.config.trace_sample_rate,
            seed=self.config.trace_sample_seed,
        )
        self.slo = SLOMonitor(
            availability_target=self.config.slo_availability_target,
            latency_threshold_ms=self.config.slo_latency_ms,
            latency_target=self.config.slo_latency_target,
        )
        #: One cancel signal shared by every admitted budget; fired
        #: when a drain crosses its hard deadline.
        self._drain_cancel = CancelSignal()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        #: Admitted-but-unanswered requests; mutated only on the loop
        #: thread, so the admission check needs no lock.
        self._pending = 0
        self._draining = False
        self._drain_hard_at: float | None = None
        self._drain_task: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._idle: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._thread: threading.Thread | None = None
        self.address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "ServingTier":
        """Bind the listening socket inside the running event loop."""
        if self._server is not None:
            raise RuntimeError("serving tier already started")
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self

    @property
    def url(self) -> str:
        if self.address is None:
            raise RuntimeError("serving tier not started")
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pending(self) -> int:
        return self._pending

    def server_clock(self) -> float:
        """The drain-aware clock every request budget is armed against.

        Monotonic time normally; past the drain hard deadline it runs
        ``_DRAIN_CLOCK_RATE`` times faster, so every deadline in every
        worker — whether armed before or after the drain — expires
        within microseconds of real time at its next budget check, and
        in-flight requests converge to best-so-far ``206`` responses
        without any thread being killed.
        """
        now = time.monotonic()
        hard_at = self._drain_hard_at
        if hard_at is not None and now > hard_at:
            return now + (now - hard_at) * _DRAIN_CLOCK_RATE
        return now

    def begin_drain(self) -> None:
        """Stop admitting work; start the drain countdown.  Idempotent.

        Must run on the loop thread (signal handlers and :meth:`drain`
        do); from another thread use :meth:`request_drain`.
        """
        if self._draining:
            return
        self._draining = True
        self._drain_hard_at = (
            time.monotonic() + self.config.drain_deadline_s
        )
        # At the hard deadline the shared cancel signal fires, so every
        # in-flight search trips at its next expansion — not merely at
        # its next deadline *clock sample* under the dilated clock.
        if self._loop is not None:
            self._loop.call_later(
                self.config.drain_deadline_s, self._drain_cancel.cancel
            )
        self.metrics.counter("serve.drains").inc()

    def request_drain(self) -> None:
        """Thread-safe :meth:`begin_drain` (e.g. from a test thread)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.begin_drain)

    async def drain(self) -> None:
        """Refuse new work, let in-flight finish, then close.

        In-flight requests get until the drain hard deadline; past it
        the server clock expires their budgets, so the extra grace here
        only needs to cover one budget-check stride plus response
        writes.  Connections still open after that are cancelled.
        """
        self.begin_drain()
        assert self._idle is not None and self._drain_hard_at is not None
        remaining = max(0.0, self._drain_hard_at - time.monotonic())
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=remaining + 1.0)
        except asyncio.TimeoutError:  # pragma: no cover - wedged worker
            pass
        await self.aclose()

    async def aclose(self) -> None:
        """Close the listener, cancel leftover connections, stop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self._stopped is not None:
            self._stopped.set()

    async def serve_forever(self, handle_signals: bool = True) -> None:
        """Start (if needed) and serve until drained/closed.

        With ``handle_signals`` (the default, used by ``repro serve``),
        ``SIGTERM`` and ``SIGINT`` trigger one graceful :meth:`drain`.
        """
        if self._server is None:
            await self.start()
        assert self._loop is not None and self._stopped is not None
        if handle_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self._signal_drain)
        await self._stopped.wait()

    def _signal_drain(self) -> None:
        if self._drain_task is None and self._loop is not None:
            self._drain_task = self._loop.create_task(self.drain())

    # -- threaded embedding -------------------------------------------

    def run_in_thread(self, timeout: float = 10.0) -> "ServingTier":
        """Boot the tier on a private event loop in a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("serving tier already running in a thread")
        ready = threading.Event()
        boot_error: list[BaseException] = []

        def runner() -> None:
            try:
                asyncio.run(self._thread_main(ready))
            except BaseException as error:  # pragma: no cover - boot race
                boot_error.append(error)
                ready.set()

        self._thread = threading.Thread(
            target=runner, name="repro-serving-tier", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout):  # pragma: no cover - wedged boot
            raise RuntimeError("serving tier did not start in time")
        if boot_error:
            self._thread.join(timeout=timeout)
            self._thread = None
            raise RuntimeError("serving tier failed to start") from (
                boot_error[0]
            )
        return self

    async def _thread_main(self, ready: threading.Event) -> None:
        await self.start()
        ready.set()
        assert self._stopped is not None
        await self._stopped.wait()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop a :meth:`run_in_thread` tier from any thread.

        ``drain=True`` performs the full graceful drain (in-flight
        requests finish or degrade); ``drain=False`` closes abruptly.
        """
        thread, loop = self._thread, self._loop
        if thread is None:
            return
        if loop is not None and loop.is_running():
            coro = self.drain() if drain else self.aclose()
            future = asyncio.run_coroutine_threadsafe(coro, loop)
            try:
                future.result(timeout)
            except (FutureTimeoutError, RuntimeError):  # pragma: no cover
                pass
        thread.join(timeout=timeout)
        self._thread = None

    # -- connection handling ------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass  # drain hard-cancel: just release the socket
        except (ConnectionError, OSError):
            pass  # peer vanished mid-exchange
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await asyncio.wait_for(
                    read_request(reader, self.config.max_body_bytes),
                    timeout=self.config.request_timeout_s,
                )
            except asyncio.TimeoutError:
                await self._write(
                    writer,
                    self._json_bytes(
                        408, {"error": "request timed out"}, keep_alive=False
                    ),
                )
                return
            except HttpError as error:
                await self._write(
                    writer,
                    self._json_bytes(
                        error.status,
                        {"error": error.message},
                        keep_alive=False,
                    ),
                )
                return
            if request is None:
                return  # clean keep-alive close
            response, keep_alive = await self._dispatch(request)
            await self._write(writer, response)
            if not keep_alive:
                return

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, response: bytes) -> None:
        writer.write(response)
        await writer.drain()

    @staticmethod
    def _json_bytes(
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
        keep_alive: bool = True,
    ) -> bytes:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return render_response(
            status,
            body,
            extra_headers=extra_headers,
            keep_alive=keep_alive,
        )

    # -- routing and error mapping ------------------------------------

    async def _dispatch(self, request: Request) -> tuple[bytes, bool]:
        """Route one request; map every failure to a status code.

        The request's identity is resolved here — an inbound
        ``X-Request-Id`` honoured after sanitation, a fresh ID minted
        otherwise — installed as the ambient :class:`RequestContext`
        (the executor's ``copy_context`` carries it into the worker
        job), stamped into the response header, and recorded with the
        outcome in the access log and SLO windows.
        """
        route = f"{request.method} {request.path}"
        started = time.monotonic()
        content_type = "application/json"
        body: bytes | None = None
        extra: dict[str, str] | None = None
        request_id = (
            clean_request_id(request.headers.get(REQUEST_ID_HEADER))
            or mint_request_id()
        )
        sampled = (
            request.method == "POST"
            and request.path in ("/v1/complete", "/v1/query")
            and self.sampler.sample()
        )
        with use_request(RequestContext(request_id, sampled=sampled)):
            try:
                outcome = await self._route(request)
                status, payload, content_type, extra = outcome
                if isinstance(payload, bytes):
                    body = payload
            except HttpError as error:
                status, payload = error.status, {"error": error.message}
            except UnknownTenantError as error:
                status, payload = 404, {"error": str(error)}
            except BudgetExceededError as error:
                # partial_ok is always set, so this is belt and braces
                # for a future engine path that refuses partial answers.
                status = 206
                payload = {
                    "error": str(error),
                    "truncation_reason": "deadline",
                }
            except InjectedFaultError as error:
                status = 503
                payload = {"error": str(error), "transient": True}
                extra = {"Retry-After": str(self.config.retry_after_s)}
            except (ReproError, ValueError) as error:
                status = 400
                payload = {"error": str(error), "kind": type(error).__name__}
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - last-resort mapping
                status = 500
                payload = {"error": f"internal error: {type(error).__name__}"}
                self.metrics.counter("serve.internal_errors").inc()
        if body is None:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode(
                "utf-8"
            )
            content_type = "application/json"
        keep_alive = request.keep_alive and status < 500
        elapsed_ms = (time.monotonic() - started) * 1000.0
        self.metrics.counter(
            labelled("serve.requests", route=route, status=str(status))
        ).inc()
        self.metrics.histogram(
            labelled("serve.latency_ms", route=route)
        ).observe(elapsed_ms)
        self.slo.record(status, elapsed_ms)
        data = payload if isinstance(payload, dict) else {}
        if self.access_log.enabled:
            outcome_label, shed_reason = self._outcome_of(status, data)
            stats = data.get("stats")
            cache_hit = (
                stats.get("cache_hits", 0) > 0
                if isinstance(stats, dict)
                else None
            )
            error_text = data.get("error")
            self.access_log.record(
                request_id=request_id,
                method=request.method,
                route=request.path,
                status=status,
                latency_ms=elapsed_ms,
                outcome=outcome_label,
                tenant=data.get("tenant"),
                cache_hit=cache_hit,
                truncation_reason=data.get("truncation_reason"),
                shed_reason=shed_reason,
                sampled=sampled,
                error=str(error_text) if error_text is not None else None,
            )
        headers = {"X-Request-Id": request_id}
        if extra:
            headers.update(extra)
        response = render_response(
            status,
            body,
            content_type=content_type,
            extra_headers=headers,
            keep_alive=keep_alive,
        )
        return response, keep_alive

    @staticmethod
    def _outcome_of(status: int, payload: dict) -> tuple[str, str | None]:
        """(access-log outcome label, shed reason) for one response."""
        if status == 206:
            return "partial", None
        if status == 429:
            return "shed", "queue_full"
        if status == 503:
            if payload.get("draining"):
                return "drain", "draining"
            return "transient", None
        if status >= 500:
            return "error", None
        if status >= 400:
            return "client_error", None
        return "ok", None

    async def _route(
        self, request: Request
    ) -> tuple[int, dict | bytes, str, dict[str, str] | None]:
        path = request.path
        if path == "/metrics":
            self._require_method(request, "GET")
            self._export_obs_gauges()
            text = render_prometheus(self.metrics, namespace="repro")
            return 200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE, None
        if path == "/healthz":
            self._require_method(request, "GET")
            return 200, self._health_payload(), "application/json", None
        if path == "/v1/debug":
            self._require_method(request, "GET")
            return 200, self._debug_payload(), "application/json", None
        if path == "/v1/schemas":
            self._require_method(request, "GET")
            payload = {
                "tenants": [
                    tenant.describe() for tenant in self.tenants.tenants()
                ]
            }
            return 200, payload, "application/json", None
        if path == "/v1/complete":
            self._require_method(request, "POST")
            status, payload, extra = await self._admit(
                request, self._build_complete_job
            )
            return status, payload, "application/json", extra
        if path == "/v1/query":
            self._require_method(request, "POST")
            status, payload, extra = await self._admit(
                request, self._build_query_job
            )
            return status, payload, "application/json", extra
        raise HttpError(404, f"no route for {path!r}")

    @staticmethod
    def _require_method(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405, f"{request.path} only supports {method}"
            )

    def _health_payload(self) -> dict:
        payload = health_snapshot()
        payload["serving"] = {
            "state": "draining" if self._draining else "serving",
            "pending": self._pending,
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
            "tenants": self.tenants.names(),
            "tenant_cache_bytes": self.tenants.total_cache_bytes(),
            "max_cache_bytes": self.tenants.max_cache_bytes,
        }
        payload["slo"] = self.slo.status()
        return payload

    def _debug_payload(self) -> dict:
        """The ``GET /v1/debug`` ops snapshot: everything an operator
        needs to correlate an incident without shelling into the box."""
        return {
            "serving": {
                "state": "draining" if self._draining else "serving",
                "pending": self._pending,
                "queue_limit": self.config.queue_limit,
                "workers": self.config.workers,
                "executor": self.config.executor,
                "drain_hard_at": self._drain_hard_at,
                "drain_cancelled": self._drain_cancel.cancelled,
            },
            "slo": self.slo.status(),
            "sampler": self.sampler.stats(),
            "access_log": self.access_log.stats(),
            "slowlog": {
                "observed": self.slowlog.observed,
                "retained": len(self.slowlog.entries()),
                "threshold_ms": self.slowlog.threshold_ms,
                "top_k": self.slowlog.top_k,
                "capacity": self.slowlog.capacity,
                "promote_failures": self.slowlog.promote_failures,
            },
            "tenants": {
                "residency": [
                    dict(
                        tenant.describe(),
                        last_touch=tenant.last_touch,
                        estimated_bytes=tenant.estimated_cache_bytes(),
                    )
                    for tenant in self.tenants.tenants()
                ],
                "total_cache_bytes": self.tenants.total_cache_bytes(),
                "max_cache_bytes": self.tenants.max_cache_bytes,
            },
        }

    def _export_obs_gauges(self) -> None:
        """Refresh the SLO and sampler gauges ahead of a scrape."""
        self.slo.export_gauges(self.metrics)
        sampler = self.sampler.stats()
        self.metrics.gauge("serve.trace_sample_rate").set(sampler["rate"])
        self.metrics.gauge("serve.trace_sampled_total").set(
            float(sampler["sampled"])
        )
        log_stats = self.access_log.stats()
        self.metrics.gauge("serve.access_log_records").set(
            float(log_stats["recorded"])
        )

    # -- admission and execution --------------------------------------

    async def _admit(
        self, request: Request, build_job
    ) -> tuple[int, dict, dict[str, str] | None]:
        """Load-shed or run ``build_job(request)()`` on the pool."""
        if self._draining:
            assert self._drain_hard_at is not None
            remaining = max(0.0, self._drain_hard_at - time.monotonic())
            self.metrics.counter("serve.drain_rejected").inc()
            return (
                503,
                {"error": "server is draining", "draining": True},
                {"Retry-After": f"{remaining + 1.0:.1f}"},
            )
        if self._pending >= self.config.queue_limit:
            self.metrics.counter("serve.shed").inc()
            return (
                429,
                {
                    "error": "admission queue full",
                    "queue_limit": self.config.queue_limit,
                },
                {"Retry-After": str(self.config.retry_after_s)},
            )
        # Parse on the loop thread (cheap, fails fast with 400) …
        job = build_job(request)
        # … run the engine on the pool in an isolated context copy.
        assert self._loop is not None and self._idle is not None
        self._pending += 1
        self._idle.clear()
        self.metrics.gauge("serve.pending").set(float(self._pending))
        context = contextvars.copy_context()
        try:
            status, payload = await self._loop.run_in_executor(
                self._pool, context.run, job
            )
        finally:
            self._pending -= 1
            self.metrics.gauge("serve.pending").set(float(self._pending))
            if self._pending == 0:
                self._idle.set()
        return status, payload, None

    def _resolve_tenant(self, payload: dict):
        name = payload.get("tenant")
        if name is None:
            names = self.tenants.names()
            if len(names) == 1:
                name = names[0]
            else:
                raise HttpError(
                    400,
                    "'tenant' is required when multiple tenants are "
                    "registered",
                )
        if not isinstance(name, str):
            raise HttpError(400, "'tenant' must be a string")
        return self.tenants.get(name)

    def _request_budget(self, request: Request):
        try:
            return self.config.budget_for(
                request.headers,
                clock=self.server_clock,
                cancel=self._drain_cancel,
            )
        except ValueError as error:
            raise HttpError(400, str(error)) from error

    @contextlib.contextmanager
    def _request_scope(self, kind: str, query: str, **attrs):
        """Worker-side ambient scope for one admitted request.

        Installs the tier's metrics registry and slow log, a fresh
        :class:`RecordingTracer` when the head sampler picked this
        request, and opens the slow-log observation (stamped with the
        ambient request ID) plus the ``request`` root span every
        retained trace hangs from.  Sampled observations are promoted
        so the slow log keeps them even when fast and healthy.
        """
        context = get_request()
        request_id = context.request_id if context is not None else None
        sampled = context.sampled if context is not None else False
        if request_id is not None:
            attrs["request_id"] = request_id
        with contextlib.ExitStack() as stack:
            stack.enter_context(use_metrics(self.metrics))
            stack.enter_context(use_slowlog(self.slowlog))
            if sampled:
                stack.enter_context(use_tracer(RecordingTracer()))
            obs = stack.enter_context(
                self.slowlog.observe(kind, query, **attrs)
            )
            if sampled:
                obs.promote(RETAINED_SAMPLED)
            with get_tracer().span(
                "request", kind=kind, request_id=request_id or ""
            ):
                yield obs

    def _build_complete_job(self, request: Request):
        payload = json_body(request)
        expression = payload.get("expression")
        if not isinstance(expression, str) or not expression.strip():
            raise HttpError(400, "'expression' must be a non-empty string")
        e = payload.get("e", 1)
        if not isinstance(e, int) or isinstance(e, bool) or e < 1:
            raise HttpError(400, "'e' must be a positive integer")
        tenant = self._resolve_tenant(payload)
        budget = self._request_budget(request)

        def job() -> tuple[int, dict]:
            # A cache-hit result carries the *original* traversal's
            # stats; the per-request hit/miss picture is the artifact
            # counters' delta across this completion.
            cache = tenant.compiled.cache
            hits_before = cache.hits
            misses_before = cache.misses
            with self._request_scope(
                "serve.complete", expression, e=e, tenant=tenant.name
            ) as obs:
                with use_budget(budget):
                    result = tenant.engine(e).complete(expression)
                obs.record_result(result)
            self.tenants.enforce_memory_bound()
            status = 200 if result.exhausted else 206
            body = {
                "tenant": tenant.name,
                "expression": expression,
                "e": e,
                "paths": [str(path) for path in result.paths],
                "labels": [str(label) for label in result.labels],
                "exhausted": result.exhausted,
                "stats": {
                    "recursive_calls": result.stats.recursive_calls,
                    "cache_hits": cache.hits - hits_before,
                    "cache_misses": cache.misses - misses_before,
                    "budget_trips": result.stats.budget_trips,
                    "elapsed_ms": round(
                        result.stats.elapsed_seconds * 1000.0, 3
                    ),
                },
            }
            if not result.exhausted:
                body["truncation_reason"] = result.truncation_reason
            return status, body

        return job

    def _build_query_job(self, request: Request):
        payload = json_body(request)
        text = payload.get("query")
        if not isinstance(text, str) or not text.strip():
            raise HttpError(400, "'query' must be a non-empty string")
        jobs = payload.get("jobs", 1)
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise HttpError(400, "'jobs' must be a positive integer")
        tenant = self._resolve_tenant(payload)
        if tenant.database is None:
            raise HttpError(
                400,
                f"tenant {tenant.name!r} has no instance database "
                "(serve it with a database to enable /v1/query)",
            )
        budget = self._request_budget(request)

        def job() -> tuple[int, dict]:
            with self._request_scope(
                "serve.query", text, tenant=tenant.name
            ):
                with use_budget(budget):
                    result = run_query(
                        tenant.database,
                        text,
                        engine=tenant.engine(1),
                        jobs=jobs,
                    )
            self.tenants.enforce_memory_bound()
            body = {
                "tenant": tenant.name,
                "query": text,
                "completions": result.completions,
                "values": sorted(result.values, key=repr),
            }
            return 200, body

        return job
