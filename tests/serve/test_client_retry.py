"""The bundled client's retry behaviour against canned responses."""

import json
import socket
import threading

import pytest

from repro.resilience.retry import RetryExhaustedError, RetryPolicy
from repro.serve.client import ServeClient, TransientServerError


class CannedServer:
    """A one-thread TCP server answering each connection from a script."""

    def __init__(self, responses):
        self._responses = list(responses)
        self.served = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.host, self.port = self._sock.getsockname()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while self.served < len(self._responses):
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                conn.recv(65536)  # one request per connection
                conn.sendall(self._responses[self.served])
                self.served += 1

    def close(self):
        try:
            self._sock.close()
        finally:
            self._thread.join(timeout=5.0)


def canned(status: int, payload: dict, retry_after: float | None = None):
    body = json.dumps(payload).encode()
    phrase = {200: "OK", 429: "Too Many Requests", 503: "Unavailable"}[
        status
    ]
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
    )
    if retry_after is not None:
        head += f"Retry-After: {retry_after}\r\n"
    return head.encode() + b"\r\n" + body


class TestTransientRetries:
    def test_429_then_200_retries_through(self):
        server = CannedServer(
            [
                canned(429, {"error": "full"}, retry_after=0.1),
                canned(200, {"paths": ["p"]}),
            ]
        )
        try:
            sleeps = []
            client = ServeClient(
                server.host,
                server.port,
                policy=RetryPolicy(max_attempts=3, base_delay=0.0, seed=1),
                sleep=sleeps.append,
            )
            response = client.healthz()
            assert response.status == 200
            assert server.served == 2
            assert sleeps == [0.1]
        finally:
            server.close()

    def test_server_retry_after_overrides_backoff(self):
        server = CannedServer(
            [
                canned(503, {"error": "draining"}, retry_after=1.5),
                canned(200, {}),
            ]
        )
        try:
            sleeps = []
            client = ServeClient(
                server.host,
                server.port,
                policy=RetryPolicy(
                    max_attempts=2, base_delay=60.0, seed=1
                ),
                sleep=sleeps.append,
            )
            response = client.healthz()
            assert response.status == 200
            # The server's hint, not the 60 s computed backoff.
            assert sleeps == [1.5]
        finally:
            server.close()

    def test_exhausted_transient_returns_last_response(self):
        server = CannedServer(
            [canned(429, {"error": "full"}, retry_after=0.0)] * 3
        )
        try:
            client = ServeClient(
                server.host,
                server.port,
                policy=RetryPolicy(max_attempts=3, base_delay=0.0, seed=1),
                sleep=lambda _: None,
            )
            response = client.healthz()
            assert response.status == 429
            assert server.served == 3
        finally:
            server.close()

    def test_definitive_statuses_are_not_retried(self):
        server = CannedServer([canned(200, {"ok": True})])
        try:
            client = ServeClient(
                server.host,
                server.port,
                policy=RetryPolicy(max_attempts=5, base_delay=0.0, seed=1),
                sleep=lambda _: None,
            )
            assert client.healthz().status == 200
            assert server.served == 1
        finally:
            server.close()

    def test_connection_refused_exhausts_to_retry_error(self):
        # Bind-then-close guarantees an unused port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        _, dead_port = probe.getsockname()
        probe.close()
        client = ServeClient(
            "127.0.0.1",
            dead_port,
            policy=RetryPolicy(max_attempts=2, base_delay=0.0, seed=1),
            sleep=lambda _: None,
        )
        with pytest.raises(RetryExhaustedError) as exc:
            client.healthz()
        assert exc.value.attempts == 2


class TestExhaustionSurface:
    def test_exhausted_transport_carries_last_server_answer(self):
        """Retries that end on a transport error still surface the last
        *server* answer structurally: a caller deciding when to come
        back reads ``error.status``/``error.retry_after`` instead of
        parsing the message."""
        server = CannedServer(
            [canned(429, {"error": "full"}, retry_after=2.5)]
        )
        closed = []

        def close_between_attempts(_delay):
            if not closed:
                server.close()
                closed.append(True)

        client = ServeClient(
            server.host,
            server.port,
            policy=RetryPolicy(max_attempts=3, base_delay=0.0, seed=1),
            sleep=close_between_attempts,
        )
        with pytest.raises(RetryExhaustedError) as exc:
            client.healthz()
        error = exc.value
        assert isinstance(error.last, ConnectionError)
        assert error.status == 429
        assert error.retry_after == 2.5
        assert error.response is not None
        assert error.response.json == {"error": "full"}

    def test_exhausted_without_any_server_answer_stays_bare(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        _, dead_port = probe.getsockname()
        probe.close()
        client = ServeClient(
            "127.0.0.1",
            dead_port,
            policy=RetryPolicy(max_attempts=2, base_delay=0.0, seed=1),
            sleep=lambda _: None,
        )
        with pytest.raises(RetryExhaustedError) as exc:
            client.healthz()
        assert exc.value.response is None
        assert exc.value.status is None
        assert exc.value.retry_after is None


class TestPolicyDeterminism:
    def test_seeded_backoff_is_reproducible(self):
        a = RetryPolicy(max_attempts=5, base_delay=0.1, seed=42)
        b = RetryPolicy(max_attempts=5, base_delay=0.1, seed=42)
        assert list(a.delays()) == list(b.delays())

    def test_jittered_delay_stays_in_band(self):
        policy = RetryPolicy(
            max_attempts=4,
            base_delay=0.1,
            multiplier=2.0,
            jitter=0.5,
            seed=7,
        )
        for index, delay in enumerate(policy.delays()):
            nominal = policy.backoff(index)
            assert nominal * 0.5 <= delay <= nominal * 1.5

    def test_transient_error_carries_retry_after(self):
        server = CannedServer(
            [canned(503, {"error": "x"}, retry_after=2.25)]
        )
        try:
            client = ServeClient(
                server.host,
                server.port,
                policy=RetryPolicy.none(),
                sleep=lambda _: None,
            )
            response = client.healthz()
            assert response.status == 503
            assert response.retry_after == 2.25
            error = TransientServerError(response)
            assert error.retry_after == 2.25
        finally:
            server.close()
