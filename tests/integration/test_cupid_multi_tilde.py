"""Integration: general incomplete expressions on the CUPID-scale
schema (the [17] generalization under realistic load)."""

import pytest

from repro.core.engine import Disambiguator
from repro.errors import NoCompletionError


class TestMultiTildeOnCupid:
    def test_anchored_middle_narrows_the_search(self, cupid):
        engine = Disambiguator(cupid)
        free = engine.complete("experiment ~ conductance")
        anchored = engine.complete("experiment ~ canopy ~ conductance")
        assert anchored.paths
        for path in anchored.paths:
            assert "canopy" in [edge.name for edge in path.edges]
        # the anchored completions are consistent with the free query
        assert {str(p) for p in anchored.paths} <= {
            str(p) for p in free.paths
        } | {str(p) for p in anchored.paths}

    def test_explicit_prefix_plus_gap(self, cupid):
        engine = Disambiguator(cupid)
        result = engine.complete("experiment$>simulation$>crop ~ conductance")
        assert result.paths
        for expression in result.expressions:
            assert expression.startswith("experiment$>simulation$>crop")
            assert expression.endswith(".conductance")

    def test_gap_then_explicit_attribute(self, cupid):
        engine = Disambiguator(cupid)
        result = engine.complete("simulation ~ location.latitude")
        assert result.expressions == [
            "simulation$>site$>location.latitude"
        ]

    def test_unsatisfiable_middle_raises(self, cupid):
        engine = Disambiguator(cupid)
        with pytest.raises(NoCompletionError):
            engine.complete("experiment ~ nonexistent ~ conductance")

    def test_all_results_acyclic_and_consistent(self, cupid):
        engine = Disambiguator(cupid)
        result = engine.complete("soil_profile ~ soil_layer ~ value")
        assert result.paths
        for path in result.paths:
            assert path.is_acyclic
            assert path.root == "soil_profile"
            assert path.edges[-1].name == "value"
