"""Bench E5 — the compile-once/query-many pipeline.

Runs the ten CUPID workload queries twice through one
:class:`~repro.core.compiled.CompiledSchema`: a cold pass that fills the
shared completion cache and a warm pass served entirely from it.  The
artifact contract under test:

* warm repetition is at least 10x faster than the cold pass;
* warm results are byte-identical to the cold ranked paths, and both
  match an independent artifact compiled from scratch (determinism, not
  just object identity);
* the hit/miss counters account for every query.

Timings land in ``BENCH_compiled_cache.json`` at the repo root.  Set
``BENCH_QUICK=1`` (as CI does) to run at E=1 instead of E=3.

After the (untraced) timing passes, one extra warm pass runs under a
:class:`~repro.obs.tracer.RecordingTracer` and a fresh
:class:`~repro.obs.metrics.MetricsRegistry`, producing two more
artifacts at the repo root — ``BENCH_trace.jsonl`` (the span event log)
and ``BENCH_metrics.json`` (the metrics summary) — both validated
against the checked-in schemas before they are written.  CI uploads the
trace as a workflow artifact and re-validates both files to catch
schema drift.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import pytest

from benchmarks.conftest import emit, record_bench
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.schema import validate_metrics_summary, validate_trace_events
from repro.obs.tracer import RecordingTracer, use_tracer

_ROOT = pathlib.Path(__file__).parent.parent
_RESULT_FILE = _ROOT / "BENCH_compiled_cache.json"
_TRACE_FILE = _ROOT / "BENCH_trace.jsonl"
_METRICS_FILE = _ROOT / "BENCH_metrics.json"

QUICK = os.environ.get("BENCH_QUICK") == "1"
E = 1 if QUICK else 3
MIN_SPEEDUP = 10.0


def _ranked_paths(batch) -> list[list[str]]:
    return [[str(path) for path in result.paths] for result in batch.results]


@pytest.mark.benchmark(group="compiled-cache")
def test_compiled_cache_warm_vs_cold(cupid, oracle):
    texts = [query.text for query in oracle.queries]

    # A fresh artifact (constructor, not the registry) guarantees a
    # genuinely cold cache regardless of what ran earlier in the session.
    compiled = CompiledSchema(cupid)
    engine = Disambiguator(compiled, e=E)

    start = time.perf_counter()
    cold = engine.complete_batch(texts)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = engine.complete_batch(texts)
    warm_seconds = time.perf_counter() - start

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")

    # Determinism across artifacts: a second from-scratch compile must
    # produce the same ranked paths, so the cache only ever short-cuts
    # work it would have redone identically.
    fresh = Disambiguator(CompiledSchema(cupid), e=E).complete_batch(texts)

    record = {
        "schema": "cupid",
        "e": E,
        "quick": QUICK,
        "queries": len(texts),
        "compile_seconds": compiled.compile_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "cold_cache": {"hits": cold.stats.cache_hits, "misses": cold.stats.cache_misses},
        "warm_cache": {"hits": warm.stats.cache_hits, "misses": warm.stats.cache_misses},
        "fingerprint": compiled.fingerprint,
        "python": platform.python_version(),
    }
    _RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    # Feed the perf-regression ledger (BENCH_history.jsonl); CI gates
    # these series with `python -m repro.obs.perf compare`.
    record_bench("compiled_cache.cold_seconds", cold_seconds, e=E, quick=QUICK)
    record_bench("compiled_cache.warm_seconds", warm_seconds, e=E, quick=QUICK)
    record_bench(
        "compiled_cache.compile_seconds",
        compiled.compile_seconds,
        e=E,
        quick=QUICK,
    )

    lines = [
        f"workload: {len(texts)} CUPID queries at E={E}"
        + (" (quick mode)" if QUICK else ""),
        f"compile:  {compiled.compile_seconds * 1000:8.2f} ms (one-off)",
        f"cold:     {cold_seconds * 1000:8.2f} ms"
        f"  ({cold.stats.cache_misses} misses, {cold.stats.cache_hits} hits)",
        f"warm:     {warm_seconds * 1000:8.2f} ms"
        f"  ({warm.stats.cache_misses} misses, {warm.stats.cache_hits} hits)",
        f"speedup:  {speedup:8.1f}x (required >= {MIN_SPEEDUP:.0f}x)",
    ]
    emit("Compiled-schema cache: warm vs cold", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP
    assert _ranked_paths(warm) == _ranked_paths(cold) == _ranked_paths(fresh)
    assert cold.stats.cache_misses >= len(texts)
    assert warm.stats.cache_hits == len(texts)
    assert warm.stats.cache_misses == 0

    # One extra warm pass under real observability, after the timing
    # runs so instrumentation cannot skew the numbers above.  The
    # resulting artifacts are CI's schema-drift canary.
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        traced = engine.complete_batch(texts)
    assert _ranked_paths(traced) == _ranked_paths(warm)

    events = tracer.to_events()
    validate_trace_events(events)
    summary = registry.as_dict()
    validate_metrics_summary(summary)
    tracer.write_jsonl(_TRACE_FILE)
    _METRICS_FILE.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    emit(
        "Observability artifacts",
        f"trace:   {len(events)} event(s) -> {_TRACE_FILE.name}\n"
        f"metrics: {len(summary['counters'])} counter(s) -> {_METRICS_FILE.name}",
    )
