"""Regression tests for the adaptive deadline-sampling stride.

The old meter sampled the clock every ``check_interval`` calls
unconditionally, so a small deadline could be overshot by up to
``check_interval - 1`` un-sampled calls — at 64 calls of real traversal
work, a 10 ms serving deadline could blow past its budget several times
over before the trip was noticed.  The adaptive stride starts at 1 and
only widens (doubling up to ``check_interval``) while the measured
per-call cost says the deadline is comfortably far, which bounds the
overshoot to roughly one stride of calls near the deadline.
"""

import pytest

from repro.resilience.budget import Budget, TruncationReason
from repro.resilience.faults import FakeClock


def run_until_trip(meter, clock, dt: float, max_calls: int = 100_000):
    """Advance the clock by ``dt`` per call until the meter trips.

    Returns (calls_made, clock_time_at_trip).
    """
    for call in range(1, max_calls + 1):
        clock.advance(dt)
        if meter.tripped(call, 0, 0) is not None:
            return call, clock()
    raise AssertionError("meter never tripped")


class TestOvershootBound:
    @pytest.mark.parametrize("dt_ms", [0.1, 0.5, 2.0])
    def test_small_deadline_overshoot_is_bounded(self, dt_ms):
        """A 10 ms deadline with per-call cost dt trips within ~2 calls
        of the deadline, regardless of the 64-call check_interval."""
        dt = dt_ms / 1000.0
        clock = FakeClock()
        meter = Budget(
            max_seconds=0.010, clock=clock, check_interval=64
        ).start()
        calls, tripped_at = run_until_trip(meter, clock, dt)
        overshoot = tripped_at - 0.010
        assert meter.reason == TruncationReason.DEADLINE
        # Stride retuning guarantees the next read lands at most
        # remaining/2 ahead, so the trip is discovered within about
        # two per-call steps past the deadline.
        assert overshoot <= 2 * dt + 1e-9
        # Sanity: the meter did not trip early either.
        assert tripped_at >= 0.010

    def test_old_fixed_stride_would_have_overshot(self):
        """Document the bug being fixed: with dt = 1 ms and a 10 ms
        deadline, a fixed 64-call stride would first read the clock at
        64 ms — 6.4x the deadline.  The adaptive meter trips at 11 ms."""
        clock = FakeClock()
        meter = Budget(
            max_seconds=0.010, clock=clock, check_interval=64
        ).start()
        calls, tripped_at = run_until_trip(meter, clock, dt=0.001)
        assert calls <= 12  # not 64
        assert tripped_at <= 0.012

    def test_overshoot_scales_with_cost_spike(self):
        """If per-call cost spikes 100x right before the deadline, the
        overshoot is still one stride of the *new* cost, because the
        stride was tuned when calls were cheap."""
        clock = FakeClock()
        meter = Budget(
            max_seconds=0.010, clock=clock, check_interval=64
        ).start()
        calls = 0
        for _ in range(40):  # cheap phase: 0.1 ms per call
            calls += 1
            clock.advance(0.0001)
            assert meter.tripped(calls, 0, 0) is None
        reason = None
        spike_calls = 0
        while reason is None:
            calls += 1
            spike_calls += 1
            clock.advance(0.01)  # each call now costs a full deadline
            reason = meter.tripped(calls, 0, 0)
        assert reason == TruncationReason.DEADLINE
        # The stride tuned during the cheap phase is what bounds the
        # detection lag; it can never exceed check_interval.
        assert spike_calls <= 64


class TestStrideAdaptation:
    def test_clock_reads_stay_sparse_far_from_deadline(self):
        reads = 0
        clock = FakeClock()

        def counting_clock() -> float:
            nonlocal reads
            reads += 1
            return clock()

        meter = Budget(
            max_seconds=100.0, clock=counting_clock, check_interval=64
        ).start()
        for call in range(1, 10_001):
            clock.advance(0.0001)
            assert meter.tripped(call, 0, 0) is None
        # 10k calls cover 1 s of a 100 s deadline: the stride pins at
        # the 64-call cap, so reads stay two orders below calls.
        assert reads < 10_000 / 32

    def test_check_interval_one_reads_every_call(self):
        reads = 0
        clock = FakeClock()

        def counting_clock() -> float:
            nonlocal reads
            reads += 1
            return clock()

        meter = Budget(
            max_seconds=1.0, clock=counting_clock, check_interval=1
        ).start()
        for call in range(1, 11):
            meter.tripped(call, 0, 0)
        assert reads >= 10  # cap 1 keeps the legacy sample-every-call

    def test_caps_only_budgets_never_read_the_clock(self):
        reads = 0

        def counting_clock() -> float:
            nonlocal reads
            reads += 1
            return 0.0

        meter = Budget(max_nodes=100, clock=counting_clock).start()
        for call in range(1, 51):
            meter.tripped(call, 0, 0)
        # start() samples once for started_at; tripped() never does.
        assert reads <= 1

    def test_node_caps_still_trip_exactly(self):
        clock = FakeClock()
        meter = Budget(
            max_nodes=5, max_seconds=100.0, clock=clock, check_interval=64
        ).start()
        assert meter.tripped(4, 0, 0) is None
        assert meter.tripped(5, 0, 0) == TruncationReason.NODES
