"""Tests for the interactive completion loop (Figure 1)."""

import pytest

from repro.model.instances import Database
from repro.query.session import (
    CompletionSession,
    RecordingChooser,
    approve_all,
    approve_first,
)


@pytest.fixture()
def db(university):
    db = Database(university)
    bob = db.create("ta")
    db.set_attribute(bob, "name", "bob")
    course = db.create("course")
    db.set_attribute(course, "name", "cs101")
    db.link(bob, "take", course)
    return db


class TestChoosers:
    def test_approve_all(self):
        assert approve_all([1, 2, 3]) == [1, 2, 3]

    def test_approve_first(self):
        assert approve_first([1, 2, 3]) == [1]
        assert approve_first([]) == []

    def test_recording_chooser_logs(self):
        chooser = RecordingChooser(approve_first)
        chosen = chooser([1, 2])
        assert chosen == [1]
        assert chooser.log == [([1, 2], [1])]


class TestSession:
    def test_incomplete_query_round(self, db):
        session = CompletionSession(db)
        interaction = session.ask("ta ~ name")
        assert len(interaction.candidates) == 2
        assert len(interaction.approved) == 2
        assert interaction.values == {"bob"}

    def test_approve_first_evaluates_one(self, db):
        session = CompletionSession(db, chooser=approve_first)
        interaction = session.ask("ta ~ name")
        assert len(interaction.approved) == 1
        assert interaction.values == {"bob"}

    def test_complete_query_round(self, db):
        session = CompletionSession(db)
        interaction = session.ask("ta@>grad@>student.take.name")
        assert interaction.values == {"cs101"}

    def test_history_recorded(self, db):
        session = CompletionSession(db)
        session.ask("ta ~ name")
        session.ask("course.name")
        assert [i.input_text for i in session.history] == [
            "ta ~ name",
            "course.name",
        ]

    def test_rejection_counts_feed_future_domain_knowledge(self, db):
        chooser = RecordingChooser(approve_first)
        session = CompletionSession(db, chooser=chooser)
        session.ask("ta ~ name")
        counts = chooser.rejection_counts()
        # the rejected instructor-chain completion passes through teacher
        assert counts.get("teacher", 0) >= 1
        assert counts.get("grad", 0) == 0  # approved path not counted
