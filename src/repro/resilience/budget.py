"""Resource budgets for the completion search.

Algorithm 2 is worst-case exponential in the schema graph (the paper's
Section 5.4 reports multi-second CUPID completions even at E=1), so a
production deployment must be able to bound one search in *time* and in
*work* — and still get something useful back when the bound trips.
This module provides that governor:

* :class:`Budget` — an immutable *specification*: wall-clock deadline,
  node-expansion cap, recorded-paths cap, and search-stack depth cap,
  plus the ``partial_ok`` policy bit deciding whether a tripped search
  raises :class:`~repro.errors.BudgetExceededError` (carrying the
  best-so-far result) or returns the partial result flagged
  ``exhausted=False``.
* :class:`BudgetMeter` — one *armed* instance of a budget: the deadline
  is anchored when the meter starts, and :meth:`BudgetMeter.tripped` is
  the single check the traversal inner loop calls once per node
  expansion.  Deadline reads are sampled on an *adaptive* stride so the
  monotonic-clock call stays off the hot path without blowing small
  deadlines: the stride starts at 1 expansion and doubles up to
  ``check_interval`` only while the measured per-expansion cost says
  the next read will still land comfortably inside the deadline, then
  shrinks again as the deadline approaches (a fixed every-64 stride
  could overshoot a 10 ms deadline by whole milliseconds).
* :func:`get_budget` / :func:`use_budget` — an ambient
  :class:`contextvars.ContextVar` in the style of
  :mod:`repro.obs.tracer`, so a CLI flag or a session command can govern
  every completion in a dynamic scope without threading a parameter
  through each layer.

Anytime semantics rest on a property of the paper's path algebra
(Carré-style label iteration): every complete path recorded before the
trip is a genuinely consistent completion, and the best-so-far label
set is a valid bound — a truncated answer is *meaningful*, merely
possibly non-optimal and non-exhaustive.  The hard invariant enforced
downstream is that such truncated results are **never** cached.

The ``clock`` is injectable (any ``() -> float`` monotonic callable) so
deadline behavior is deterministic under test — see
:class:`repro.resilience.faults.FakeClock`.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Callable
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "Budget",
    "BudgetMeter",
    "CancelSignal",
    "TruncationReason",
    "get_budget",
    "use_budget",
]

#: How many node expansions pass between deadline (clock) checks.
DEFAULT_CHECK_INTERVAL = 64


class TruncationReason:
    """String constants naming why a search stopped early.

    Plain strings (not an enum) so they serialize into
    ``CompletionResult.truncation_reason``, span attributes, and JSON
    reports without adapters.
    """

    DEADLINE = "deadline"
    NODES = "nodes"
    PATHS = "paths"
    DEPTH = "depth"
    CANCELLED = "cancelled"

    #: Reasons a meter itself can report (degradation adds its own).
    ALL = (DEADLINE, NODES, PATHS, DEPTH, CANCELLED)

    @staticmethod
    def degraded(e: int) -> str:
        """The reason recorded when the engine's degradation ladder
        answered at a lower relaxation than requested."""
        return f"degraded:e={e}"


class CancelSignal:
    """A cooperative, cross-thread cancel flag a :class:`Budget` carries.

    The deadline is a *scheduled* stop; this is an *asynchronous* one —
    the serving tier's drain path fires it so in-flight searches abort
    at the very next expansion instead of waiting for the next clock
    sample to observe the dilated drain clock.  :meth:`BudgetMeter.tripped`
    checks it on every call (one attribute read plus an
    ``Event.is_set`` when armed), and the trip latches like any other
    truncation reason, so ``partial_ok`` semantics apply unchanged: the
    caller still gets the best-so-far anytime answer, flagged with this
    signal's ``reason``.

    One signal may govern many budgets (the drain path shares a single
    signal across all queued requests) — cancelling is idempotent and
    there is no way to un-cancel.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason = TruncationReason.CANCELLED

    def cancel(self, reason: str = TruncationReason.CANCELLED) -> None:
        """Fire the signal; every meter checking it trips from now on."""
        self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = f"cancelled:{self.reason}" if self.cancelled else "armed"
        return f"CancelSignal({state})"


@dataclasses.dataclass(frozen=True)
class Budget:
    """An immutable resource-budget specification.

    Any field left ``None`` is unlimited.  ``partial_ok`` selects the
    anytime policy: ``False`` (the default) makes a tripped search raise
    :class:`~repro.errors.BudgetExceededError` carrying the best-so-far
    result; ``True`` returns the partial result flagged
    ``exhausted=False`` with a ``truncation_reason``.

    Parameters
    ----------
    max_seconds:
        Wall-clock deadline for one armed meter, measured on ``clock``.
    max_nodes:
        Cap on node expansions (the paper's *recursive calls*).
    max_paths:
        Cap on recorded complete paths.
    max_stack_depth:
        Cap on the iterative traversal's stack depth.
    partial_ok:
        Return flagged partial results instead of raising.
    clock:
        Monotonic time source; injectable for deterministic tests.
    check_interval:
        *Maximum* node expansions between deadline reads.  The armed
        meter adapts the actual stride between 1 and this bound based
        on the observed per-expansion cost (see :class:`BudgetMeter`).
    cancel:
        An optional :class:`CancelSignal` checked on *every* expansion
        (not just at clock samples), so an external event — serving-tier
        drain — aborts a search mid-expansion.
    """

    max_seconds: float | None = None
    max_nodes: int | None = None
    max_paths: int | None = None
    max_stack_depth: int | None = None
    partial_ok: bool = False
    clock: Callable[[], float] = time.monotonic
    check_interval: int = DEFAULT_CHECK_INTERVAL
    cancel: CancelSignal | None = None

    def __post_init__(self) -> None:
        for name in ("max_seconds", "max_nodes", "max_paths", "max_stack_depth"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.check_interval < 1:
            raise ValueError(
                f"check_interval must be >= 1, got {self.check_interval!r}"
            )

    @property
    def is_unlimited(self) -> bool:
        """True when no dimension is bounded (the meter never trips).

        A budget carrying a :class:`CancelSignal` is never unlimited —
        callers gate meter creation on this property, and the signal
        can only trip a meter that exists.
        """
        return (
            self.max_seconds is None
            and self.max_nodes is None
            and self.max_paths is None
            and self.max_stack_depth is None
            and self.cancel is None
        )

    @classmethod
    def from_millis(
        cls,
        deadline_ms: float | None = None,
        max_nodes: int | None = None,
        partial_ok: bool = False,
    ) -> "Budget":
        """The CLI-flag constructor (``--deadline-ms``/``--max-nodes``)."""
        return cls(
            max_seconds=deadline_ms / 1000.0 if deadline_ms is not None else None,
            max_nodes=max_nodes,
            partial_ok=partial_ok,
        )

    def allowing_partial(self) -> "Budget":
        """This budget with the ``partial_ok`` policy forced on.

        The engine's degradation ladder runs every rung under this
        variant so it can capture the best-so-far result and apply the
        caller's policy itself at the final rung.
        """
        if self.partial_ok:
            return self
        return dataclasses.replace(self, partial_ok=True)

    def start(self) -> "BudgetMeter":
        """Arm a meter: the deadline clock starts *now*."""
        return BudgetMeter(self)

    def describe(self) -> str:
        """One-line human rendering (session ``:budget``, CLI verbose)."""
        parts = []
        if self.max_seconds is not None:
            parts.append(f"deadline={self.max_seconds * 1000:g}ms")
        if self.max_nodes is not None:
            parts.append(f"nodes<={self.max_nodes}")
        if self.max_paths is not None:
            parts.append(f"paths<={self.max_paths}")
        if self.max_stack_depth is not None:
            parts.append(f"depth<={self.max_stack_depth}")
        parts.append("partial-ok" if self.partial_ok else "raise-on-trip")
        return " ".join(parts) if parts else "unlimited"


class BudgetMeter:
    """One armed run of a :class:`Budget`.

    The traversal calls :meth:`tripped` once per node expansion; the
    first non-``None`` return is latched in :attr:`reason` (a meter
    stays tripped — shared across the segments of a general expression,
    a later segment cannot "un-trip" it).

    Deadline sampling is adaptive.  A fixed every-``check_interval``
    read amortizes the clock call but lets a search blow a small
    deadline by up to ``check_interval`` expansions — milliseconds on a
    10 ms budget.  Instead the stride between reads starts at 1, and on
    each read the meter re-derives it from the measured per-expansion
    cost: the next read is scheduled no later than *half* the remaining
    time away (rounded down to a power of two, capped at
    ``check_interval``).  While the deadline is comfortably far the
    stride doubles up to the cap and the clock stays off the hot path;
    as the deadline nears, reads converge geometrically onto it, so the
    overshoot is bounded by roughly one expansion of variance rather
    than a whole fixed stride.
    """

    __slots__ = (
        "budget",
        "started_at",
        "deadline",
        "reason",
        "_countdown",
        "_stride",
    )

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.started_at = budget.clock()
        self.deadline = (
            self.started_at + budget.max_seconds
            if budget.max_seconds is not None
            else None
        )
        self.reason: str | None = None
        # First deadline read happens on the very first expansion; the
        # stride then adapts upward while the budget allows.
        self._stride = 1 if self.deadline is not None else budget.check_interval
        self._countdown = self._stride

    def tripped(self, nodes: int, paths: int, depth: int) -> str | None:
        """The inner-loop check: returns a truncation reason or ``None``.

        ``nodes``/``paths``/``depth`` are the traversal's current node
        expansion count, recorded complete paths, and stack depth.
        The cancel signal and caps are checked on every call (an event
        read and integer compares); the deadline is read on the
        adaptive stride described on the class.
        """
        if self.reason is not None:
            return self.reason
        budget = self.budget
        cancel = budget.cancel
        if cancel is not None and cancel.cancelled:
            self.reason = cancel.reason
        elif budget.max_nodes is not None and nodes >= budget.max_nodes:
            self.reason = TruncationReason.NODES
        elif budget.max_paths is not None and paths >= budget.max_paths:
            self.reason = TruncationReason.PATHS
        elif budget.max_stack_depth is not None and depth >= budget.max_stack_depth:
            self.reason = TruncationReason.DEPTH
        elif self.deadline is not None:
            self._countdown -= 1
            if self._countdown <= 0:
                now = budget.clock()
                if now >= self.deadline:
                    self.reason = TruncationReason.DEADLINE
                else:
                    self._retune_stride(now, nodes)
        return self.reason

    def _retune_stride(self, now: float, nodes: int) -> None:
        """Pick the next deadline-read stride after a read at ``now``.

        The stride is the largest power of two that is both within
        ``check_interval`` and — at the observed per-expansion cost —
        projected to consume at most half the remaining time.  With no
        cost signal yet (zero elapsed or zero expansions) it simply
        doubles, preserving the cheap ramp-up on fast hardware.
        """
        cap = self.budget.check_interval
        elapsed = now - self.started_at
        remaining = self.deadline - now  # type: ignore[operator] - read path
        if elapsed > 0.0 and nodes > 0:
            per_call = elapsed / nodes
            projected = remaining / (2.0 * per_call)
            stride = 1
            while stride < cap and stride * 2 <= projected:
                stride *= 2
        else:
            stride = min(self._stride * 2, cap)
        self._stride = stride
        self._countdown = stride

    def check_deadline_now(self) -> str | None:
        """An unsampled deadline read (segment boundaries, retries)."""
        if self.reason is not None:
            return self.reason
        cancel = self.budget.cancel
        if cancel is not None and cancel.cancelled:
            self.reason = cancel.reason
        elif self.deadline is not None and self.budget.clock() >= self.deadline:
            self.reason = TruncationReason.DEADLINE
        return self.reason

    def elapsed_seconds(self) -> float:
        return self.budget.clock() - self.started_at

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline (None when no deadline is set)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.budget.clock())

    def __repr__(self) -> str:
        return (
            f"BudgetMeter({self.budget.describe()}, "
            f"tripped={self.reason or 'no'})"
        )


# ----------------------------------------------------------------------
# The ambient budget
# ----------------------------------------------------------------------

_ACTIVE: ContextVar[Budget | None] = ContextVar("repro_budget", default=None)


def get_budget() -> Budget | None:
    """The budget governing completions in the current dynamic scope."""
    return _ACTIVE.get()


@contextmanager
def use_budget(budget: Budget | None):
    """Install ``budget`` as the ambient budget for the with-block.

    ``None`` explicitly clears any outer governor (used by code that
    must run to exhaustion, e.g. cache-warming benchmarks).
    """
    token = _ACTIVE.set(budget)
    try:
        yield budget
    finally:
        _ACTIVE.reset(token)
