"""Tests for relationship declarations and inverse construction."""

import pytest

from repro.errors import InvalidRelationshipError
from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship, default_inverse_name


class TestNaming:
    def test_name_defaults_to_target_class(self):
        rel = Relationship("student", "person", RelationshipKind.ISA)
        assert rel.name == "person"
        assert rel.has_default_name

    def test_explicit_name(self):
        rel = Relationship(
            "student",
            "course",
            RelationshipKind.IS_ASSOCIATED_WITH,
            name="take",
        )
        assert rel.name == "take"
        assert not rel.has_default_name

    def test_key_is_source_and_name(self):
        rel = Relationship(
            "student", "course", RelationshipKind.IS_ASSOCIATED_WITH, "take"
        )
        assert rel.key == ("student", "take")

    def test_invalid_name_rejected(self):
        with pytest.raises(InvalidRelationshipError):
            Relationship(
                "a", "b", RelationshipKind.IS_ASSOCIATED_WITH, name="no good"
            )

    def test_taxonomic_self_loop_rejected(self):
        with pytest.raises(InvalidRelationshipError):
            Relationship("person", "person", RelationshipKind.ISA)

    def test_association_self_loop_allowed(self):
        rel = Relationship(
            "person", "person", RelationshipKind.IS_ASSOCIATED_WITH, "friend"
        )
        assert rel.target == "person"


class TestInverses:
    def test_make_inverse_swaps_direction_and_kind(self):
        rel = Relationship("department", "professor", RelationshipKind.HAS_PART)
        inverse = rel.make_inverse()
        assert inverse.source == "professor"
        assert inverse.target == "department"
        assert inverse.kind is RelationshipKind.IS_PART_OF
        assert inverse.name == default_inverse_name("department")

    def test_make_inverse_with_explicit_name(self):
        rel = Relationship(
            "student", "course", RelationshipKind.IS_ASSOCIATED_WITH, "take"
        )
        inverse = rel.make_inverse("student")
        assert inverse.name == "student"

    def test_is_inverse_of(self):
        rel = Relationship("student", "person", RelationshipKind.ISA)
        inverse = rel.make_inverse()
        assert inverse.is_inverse_of(rel)
        assert rel.is_inverse_of(inverse)

    def test_unrelated_pair_is_not_inverse(self):
        first = Relationship("a", "b", RelationshipKind.HAS_PART)
        second = Relationship("b", "a", RelationshipKind.MAY_BE)
        assert not second.is_inverse_of(first)

    def test_str_rendering(self):
        rel = Relationship("department", "professor", RelationshipKind.HAS_PART)
        assert str(rel) == "department $>professor -> professor"
