"""Bench G1 — domain generalization (paper §7's "several schemas").

The same untouched algorithm and algebra against a second domain: the
hospital schema's five-query workload must show the same operating
point the paper reports for CUPID — perfect precision at E=1, a
precision decline with E that domain knowledge (excluding the
terminology hub) largely repairs, and recall unaffected by exclusions.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.harness import sweep_e
from repro.experiments.hospital_workload import (
    build_hospital_workload,
    hospital_domain_knowledge,
)
from repro.experiments.reporting import percent, table
from repro.schemas.hospital import build_hospital_schema

E_VALUES = (1, 2, 3)


@pytest.mark.benchmark(group="generalization")
def test_hospital_domain(benchmark):
    schema = build_hospital_schema()
    oracle = build_hospital_workload()
    knowledge = hospital_domain_knowledge()

    def sweep_both():
        return (
            sweep_e(schema, oracle, e_values=E_VALUES),
            sweep_e(
                schema, oracle, e_values=E_VALUES, domain_knowledge=knowledge
            ),
        )

    plain, with_dk = benchmark.pedantic(sweep_both, rounds=1, iterations=1)
    emit(
        "Generalization G1: the hospital domain (5 queries)",
        table(
            ["E", "recall", "precision (no DK)", "precision (DK)"],
            [
                (
                    a.e,
                    percent(a.average_recall),
                    percent(a.average_precision),
                    percent(b.average_precision),
                )
                for a, b in zip(plain, with_dk)
            ],
        ),
    )
    assert plain[0].average_precision == pytest.approx(1.0)
    assert plain[0].average_recall == pytest.approx(1.0)
    assert plain[-1].average_precision < 1.0
    assert (
        with_dk[-1].average_precision > plain[-1].average_precision
    )
    for a, b in zip(plain, with_dk):
        assert a.average_recall == b.average_recall
