"""Random schema generation for scalability experiments.

Produces schemas with a controllable size and relationship-kind mix,
shaped like real modeling schemas (and like the paper's CUPID schema):
a part-whole tree as the spine, Isa layers over groups of similar
classes, and cross-cutting associations.  Deterministic for a given
seed.
"""

from __future__ import annotations

import dataclasses
import random

from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema

__all__ = ["GeneratorConfig", "generate_schema"]


@dataclasses.dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for :func:`generate_schema`.

    ``association_factor`` is the number of cross associations per
    class (approximately); ``isa_fraction`` the fraction of classes
    that get a superclass layer; ``attributes_per_class`` how many
    primitive attributes each class receives on average.
    """

    classes: int = 50
    seed: int = 0
    association_factor: float = 0.8
    isa_fraction: float = 0.25
    attributes_per_class: float = 1.0
    max_parts_per_class: int = 4

    def __post_init__(self) -> None:
        if self.classes < 2:
            raise ValueError("need at least 2 classes")


def generate_schema(config: GeneratorConfig) -> Schema:
    """Generate a random schema per ``config`` (deterministic by seed)."""
    rng = random.Random(config.seed)
    schema = Schema(f"random-{config.classes}-{config.seed}")

    names = [f"cls_{index:03d}" for index in range(config.classes)]
    for name in names:
        schema.add_class(name)

    # Part-whole spine: random tree over all classes (node 0 is the root).
    children_of: dict[int, int] = {}
    for index in range(1, len(names)):
        # choose a parent with spare part capacity; bias toward recent
        # nodes to get depth rather than a flat star.
        window = names[: index]
        candidates = [
            position
            for position, _ in enumerate(window)
            if children_of.get(position, 0) < config.max_parts_per_class
        ]
        weights = [position + 1 for position in candidates]
        parent = rng.choices(candidates, weights=weights, k=1)[0]
        children_of[parent] = children_of.get(parent, 0) + 1
        schema.add_relationship(
            names[parent],
            names[index],
            RelationshipKind.HAS_PART,
            inverse_name=names[parent],
        )

    # Isa layers: pick classes and give them fresh superclasses.
    isa_count = int(config.classes * config.isa_fraction)
    supers: list[str] = []
    for index in range(isa_count):
        super_name = f"base_{index:03d}"
        schema.add_class(super_name)
        supers.append(super_name)
        subclass = rng.choice(names)
        schema.add_relationship(subclass, super_name, RelationshipKind.ISA)

    # Cross-cutting associations (skip duplicates and self-loops).
    association_target = int(config.classes * config.association_factor)
    everything = names + supers
    attempts = 0
    added = 0
    while added < association_target and attempts < association_target * 20:
        attempts += 1
        source = rng.choice(everything)
        target = rng.choice(everything)
        if source == target:
            continue
        rel_name = f"rel_{added:03d}"
        if schema.has_relationship(source, rel_name):
            continue
        schema.add_relationship(
            source,
            target,
            RelationshipKind.IS_ASSOCIATED_WITH,
            name=rel_name,
            inverse_name=f"inv_{rel_name}",
        )
        added += 1

    # Attributes.
    attribute_total = int(config.classes * config.attributes_per_class)
    primitive_choices = ("C", "I", "R", "B")
    for index in range(attribute_total):
        owner = rng.choice(everything)
        attr_name = f"attr_{index:03d}"
        if schema.has_relationship(owner, attr_name):
            continue
        schema.add_attribute(owner, attr_name, rng.choice(primitive_choices))

    # Every generated schema gets a shared attribute name so that
    # name-targeted completions are meaningful.
    for owner in rng.sample(everything, k=max(2, len(everything) // 10)):
        if not schema.has_relationship(owner, "label"):
            schema.add_attribute(owner, "label", "C")

    schema.validate()
    return schema
