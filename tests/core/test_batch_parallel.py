"""Parallel ``complete_batch``: same answers, overlapping cold work.

``jobs > 1`` only changes *when* cold completions run, never what they
return — results come back in input order, byte-identical to the
sequential loop, and one input's budget trip must not leak into its
siblings.
"""

import pytest

from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.core.parallel import prewarm
from repro.errors import BudgetExceededError
from repro.resilience.budget import Budget, use_budget

WORKLOAD = [
    "experiment ~ conductance",
    "output_spec ~ capacity",
    "experiment ~ soil_type",
    "simulation ~ name",
    "experiment ~ conductance",  # duplicate: warm by the time it runs
]


def _snapshots(batch):
    return [
        (
            tuple(str(path) for path in result.paths),
            tuple(label.key for label in result.labels),
            result.exhausted,
        )
        for result in batch
    ]


class TestParallelEquivalence:
    @pytest.mark.parametrize("e", [1, 3])
    def test_jobs4_matches_sequential(self, cupid, e):
        sequential = Disambiguator(CompiledSchema(cupid), e=e)
        parallel = Disambiguator(CompiledSchema(cupid), e=e)
        expected = sequential.complete_batch(WORKLOAD)
        actual = parallel.complete_batch(WORKLOAD, jobs=4)
        assert _snapshots(actual) == _snapshots(expected)

    def test_results_keep_input_order(self, cupid):
        engine = Disambiguator(CompiledSchema(cupid))
        batch = engine.complete_batch(WORKLOAD, jobs=4)
        assert len(batch) == len(WORKLOAD)
        for text, result in zip(WORKLOAD, batch):
            root = text.split("~")[0].strip()
            assert result.root == root

    def test_parallel_hits_the_shared_cache(self, cupid):
        engine = Disambiguator(CompiledSchema(cupid))
        # Sequential cold fill: each result below is *the* cached object
        # (a parallel cold fill may compute a duplicate twice, and the
        # loser of the cache race is a distinct, equal object).
        cold = engine.complete_batch(WORKLOAD)
        warm = engine.complete_batch(WORKLOAD, jobs=4)
        # Warm hits return the very objects the cold run cached —
        # byte-identical by construction.
        for cold_result, warm_result in zip(cold, warm):
            assert warm_result is cold_result
        assert warm.stats.cache_hits == len(WORKLOAD)
        assert warm.stats.cache_misses == 0

    def test_single_input_skips_the_pool(self, cupid):
        engine = Disambiguator(CompiledSchema(cupid))
        batch = engine.complete_batch(["experiment ~ conductance"], jobs=8)
        assert len(batch) == 1
        assert batch.results[0].exhausted


class TestBudgetIsolation:
    def test_one_trip_does_not_poison_siblings(self, cupid):
        # A node cap the small queries fit comfortably but the heavy
        # acceptance query cannot at any rung of the degradation ladder
        # (closure-pruned it still needs ~700 expansions at E=1).  The
        # cap is calibrated to closure-mode costs, so the mode is pinned
        # against the REPRO_PRUNING=none CI leg.
        engine = Disambiguator(
            CompiledSchema(cupid),
            e=3,
            budget=Budget(max_nodes=400, partial_ok=True),
            pruning="closure",
        )
        batch = engine.complete_batch(
            [
                "simulation ~ name",
                "experiment ~ conductance",
                "output_spec ~ name",
            ],
            jobs=3,
        )
        tripped = [result.is_partial for result in batch]
        assert tripped[0] is False
        assert tripped[1] is True
        assert tripped[2] is False
        # The partial is flagged per input; the exhausted siblings are
        # cached, the partial is not.
        assert len(engine.compiled.cache) == 2

    def test_ambient_budget_reaches_the_workers(self, cupid):
        engine = Disambiguator(CompiledSchema(cupid), e=3, pruning="closure")
        with use_budget(Budget(max_nodes=400, partial_ok=True)):
            batch = engine.complete_batch(
                ["experiment ~ conductance", "simulation ~ name"], jobs=2
            )
        assert batch.results[0].is_partial
        assert batch.results[1].exhausted

    def test_raising_policy_surfaces_deterministically(self, cupid):
        engine = Disambiguator(
            CompiledSchema(cupid),
            e=3,
            budget=Budget(max_nodes=400),  # partial_ok=False
            pruning="closure",
        )
        with pytest.raises(BudgetExceededError):
            engine.complete_batch(
                ["simulation ~ name", "experiment ~ conductance"], jobs=2
            )


class TestPrewarm:
    def test_fills_the_cache_and_skips_failures(self, cupid):
        engine = Disambiguator(CompiledSchema(cupid))
        warmed = prewarm(
            engine,
            ["experiment ~ conductance", "no_such_class ~ name"],
            jobs=2,
        )
        assert warmed == 1
        assert len(engine.compiled.cache) == 1

    def test_sequential_jobs_is_a_noop(self, cupid):
        engine = Disambiguator(CompiledSchema(cupid))
        assert prewarm(engine, ["experiment ~ conductance"], jobs=1) == 0
        assert len(engine.compiled.cache) == 0
