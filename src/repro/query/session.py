"""The interactive completion loop of the paper's Figure 1.

The flow: the user poses a (possibly incomplete) path expression; the
completion module returns the plausible completions; the user approves a
subset; the evaluator runs the approved expressions.  The *chooser* is
pluggable so the loop works both interactively and in scripted
experiments:

* :func:`approve_all` — accept every returned completion;
* :func:`approve_first` — accept the single top-ranked completion;
* :class:`RecordingChooser` — wrap another chooser and keep a feedback
  log (the raw material for the learning extension the paper's Section 7
  proposes);
* any ``callable(list[ConcretePath]) -> list[ConcretePath]``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.core.ast import ConcretePath
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.model.instances import Database
from repro.query.evaluator import evaluate

__all__ = [
    "CompletionSession",
    "Interaction",
    "approve_all",
    "approve_first",
    "RecordingChooser",
]

Chooser = Callable[[Sequence[ConcretePath]], list[ConcretePath]]


def approve_all(candidates: Sequence[ConcretePath]) -> list[ConcretePath]:
    """Accept every completion the system proposes."""
    return list(candidates)


def approve_first(candidates: Sequence[ConcretePath]) -> list[ConcretePath]:
    """Accept only the top-ranked completion (empty stays empty)."""
    return list(candidates[:1])


class RecordingChooser:
    """Wrap a chooser and log (candidates, chosen) pairs.

    The log is the user-feedback stream the paper's future-work section
    wants to learn from; :meth:`rejection_counts` summarizes it as a
    per-class rejection tally (a candidate signal for auto-derived
    excluded classes).
    """

    def __init__(self, inner: Chooser) -> None:
        self.inner = inner
        self.log: list[tuple[list[ConcretePath], list[ConcretePath]]] = []

    def __call__(
        self, candidates: Sequence[ConcretePath]
    ) -> list[ConcretePath]:
        chosen = self.inner(candidates)
        self.log.append((list(candidates), chosen))
        return chosen

    def rejection_counts(self) -> dict[str, int]:
        """How often each class appeared in rejected completions."""
        counts: dict[str, int] = {}
        for candidates, chosen in self.log:
            chosen_keys = {(path.root, path.edges) for path in chosen}
            for path in candidates:
                if (path.root, path.edges) in chosen_keys:
                    continue
                for name in path.classes():
                    counts[name] = counts.get(name, 0) + 1
        return counts


@dataclasses.dataclass(frozen=True)
class Interaction:
    """One round of the Figure 1 loop."""

    input_text: str
    candidates: tuple[ConcretePath, ...]
    approved: tuple[ConcretePath, ...]
    results: tuple[tuple[str, frozenset], ...]

    @property
    def values(self) -> frozenset:
        combined: frozenset = frozenset()
        for _, results in self.results:
            combined |= results
        return combined


class CompletionSession:
    """Drives the complete -> approve -> evaluate loop.

    Parameters
    ----------
    database:
        The instance store to evaluate against (its schema drives the
        completion).
    chooser:
        Approval policy; defaults to :func:`approve_all`.
    engine:
        Optional preconfigured :class:`~repro.core.engine.Disambiguator`.
    compiled:
        Optional shared :class:`~repro.core.compiled.CompiledSchema`;
        sessions over one artifact share its completion cache.  Ignored
        when an explicit ``engine`` is given (the engine already carries
        its artifact).
    """

    def __init__(
        self,
        database: Database,
        chooser: Chooser | None = None,
        engine: Disambiguator | None = None,
        compiled: CompiledSchema | None = None,
    ) -> None:
        self.database = database
        self.chooser: Chooser = chooser if chooser is not None else approve_all
        if engine is None:
            engine = Disambiguator(
                compiled if compiled is not None else database.schema
            )
        self.engine = engine
        self.history: list[Interaction] = []

    def ask(self, text: str) -> Interaction:
        """Run one full round for the given (possibly incomplete) input."""
        completion = self.engine.complete(text)
        approved = self.chooser(completion.paths)
        results = tuple(
            (str(path), frozenset(evaluate(self.database, path)))
            for path in approved
        )
        interaction = Interaction(
            input_text=text,
            candidates=completion.paths,
            approved=tuple(approved),
            results=results,
        )
        self.history.append(interaction)
        return interaction
