"""The resilient always-on serving tier.

An asyncio HTTP/JSON front end (stdlib only) over the synchronous
disambiguation engine, designed so overload degrades service instead
of collapsing it: bounded admission with ``429`` load shedding,
mandatory per-request deadline budgets producing ``206`` anytime
answers, graceful ``SIGTERM`` drain via a drain-aware budget clock,
per-tenant completion caches under one global memory bound, and
per-request observability (metrics labels, slow-query log) isolated by
:mod:`contextvars`.

Start it from the command line (``repro serve`` or
``python -m repro.serve``), or embed it::

    from repro.serve import ServeConfig, ServingTier, TenantRegistry

    tenants = TenantRegistry(max_cache_bytes=8 << 20)
    tenants.add("university", build_university_schema())
    tier = ServingTier(tenants, ServeConfig(port=0)).run_in_thread()
    ...
    tier.stop()          # graceful drain

:class:`~repro.obs.serve.MetricsServer` (the standalone Prometheus
scrape endpoint) is re-exported here: the serving tier absorbs its
``/metrics`` and ``/healthz`` endpoints, and embedders that only need
a scrape port can keep using the standalone server directly.
"""

from repro.obs.serve import MetricsServer
from repro.serve.app import ServingTier
from repro.serve.client import (
    ServeClient,
    ServerResponse,
    TransientServerError,
)
from repro.serve.config import ServeConfig
from repro.serve.tenants import (
    Tenant,
    TenantRegistry,
    UnknownTenantError,
    prewarm_tenant,
)

__all__ = [
    "MetricsServer",
    "ServeClient",
    "ServeConfig",
    "ServerResponse",
    "ServingTier",
    "Tenant",
    "TenantRegistry",
    "TransientServerError",
    "UnknownTenantError",
    "prewarm_tenant",
]
