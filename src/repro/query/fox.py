"""A Fox-flavored select query language.

The paper's path expressions live inside the Fox query language of the
Moose data model.  This module provides a small but genuine slice of
such a language over the instance store::

    for s in student where s.take.name contains "cs" select s@>person.name
    for d in department where d$>professor exists select d.name, d.student
    for t in ta select t ~ name

Semantics:

* ``for VAR in CLASS`` iterates the class extent (subclass instances
  included);
* ``where`` filters bindings; a comparison ``<path> <op> <literal>``
  holds when *any* value reached by the path from the bound object
  satisfies the operator (the natural set semantics of path
  expressions), and ``<path> exists`` holds when the path reaches
  anything; ``and`` / ``or`` combine left-associatively with ``and``
  binding tighter;
* ``select`` returns one row per surviving binding, with one value set
  per selection item;
* paths may be *incomplete* (contain ``~``) — they are disambiguated
  against the variable's class first (paper Figure 1, approve-all), and
  the union of all optimal completions' results is used.

Paths inside ``where`` conditions must be written without internal
whitespace (``s.teacher~name``), since spaces separate the operator and
literal.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Callable

from repro.core.ast import PathExpression
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.core.parallel import prewarm
from repro.core.parser import parse_path_expression
from repro.errors import NoCompletionError, QuerySyntaxError, ReproError
from repro.model.instances import Database, DBObject
from repro.obs.slowlog import get_slowlog
from repro.obs.tracer import get_tracer
from repro.query.evaluator import evaluate_from

__all__ = ["FoxQuery", "FoxRow", "parse_fox", "run_fox"]

_OPERATORS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda value, literal: value == literal,
    "!=": lambda value, literal: value != literal,
    "<": lambda value, literal: value < literal,  # type: ignore[operator]
    "<=": lambda value, literal: value <= literal,  # type: ignore[operator]
    ">": lambda value, literal: value > literal,  # type: ignore[operator]
    ">=": lambda value, literal: value >= literal,  # type: ignore[operator]
    "contains": lambda value, literal: str(literal) in str(value),
}

_HEAD_RE = re.compile(
    r"^\s*for\s+(?P<var>[A-Za-z_][A-Za-z0-9_]*)\s+in\s+"
    r"(?P<cls>[A-Za-z_][A-Za-z0-9_\-]*)\s+"
    r"(?:where\s+(?P<where>.+?)\s+)?"
    r"select\s+(?P<select>.+?)\s*$",
    re.IGNORECASE | re.DOTALL,
)

# one comparison:  <path> <op> <literal>   or   <path> exists
_COMPARISON_RE = re.compile(
    r"^\s*(?P<path>\S+)\s+"
    r"(?:(?P<op>=|!=|<=|>=|<|>|contains)\s+(?P<literal>.+?)|(?P<exists>exists))"
    r"\s*$",
    re.IGNORECASE,
)


@dataclasses.dataclass(frozen=True)
class Comparison:
    """One ``path op literal`` (or ``path exists``) condition."""

    path_text: str
    operator: str | None  # None encodes 'exists'
    literal: object | None

    def holds(self, values: frozenset) -> bool:
        if self.operator is None:
            return bool(values)
        op = _OPERATORS[self.operator]
        for value in values:
            try:
                if op(value, self.literal):
                    return True
            except TypeError:
                continue
        return False


@dataclasses.dataclass(frozen=True)
class Condition:
    """Disjunction of conjunctions of comparisons (where-clause)."""

    clauses: tuple[tuple[Comparison, ...], ...]  # OR of ANDs

    @property
    def comparisons(self) -> list[Comparison]:
        return [cmp for clause in self.clauses for cmp in clause]


@dataclasses.dataclass(frozen=True)
class FoxQuery:
    """A parsed for/where/select query."""

    variable: str
    class_name: str
    condition: Condition | None
    selections: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class FoxRow:
    """One result row: the binding plus one value set per selection."""

    binding: DBObject
    values: tuple[frozenset, ...]


def _parse_literal(text: str) -> object:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in {"'", '"'}:
        return text[1:-1]
    lowered = text.lower()
    if lowered in {"true", "false"}:
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_comparison(text: str, query_text: str) -> Comparison:
    match = _COMPARISON_RE.match(text)
    if not match:
        raise QuerySyntaxError(
            f"malformed condition {text.strip()!r}", query_text
        )
    if match.group("exists"):
        return Comparison(match.group("path"), None, None)
    return Comparison(
        match.group("path"),
        match.group("op").lower(),
        _parse_literal(match.group("literal")),
    )


def _parse_condition(text: str, query_text: str) -> Condition:
    # OR of ANDs, both split on word boundaries, case-insensitive
    or_parts = re.split(r"\s+or\s+", text, flags=re.IGNORECASE)
    clauses = []
    for part in or_parts:
        and_parts = re.split(r"\s+and\s+", part, flags=re.IGNORECASE)
        clauses.append(
            tuple(_parse_comparison(p, query_text) for p in and_parts)
        )
    return Condition(tuple(clauses))


def parse_fox(text: str) -> FoxQuery:
    """Parse a for/where/select query."""
    match = _HEAD_RE.match(text)
    if not match:
        raise QuerySyntaxError(
            "expected: for VAR in CLASS [where ...] select <paths>", text
        )
    condition = (
        _parse_condition(match.group("where"), text)
        if match.group("where")
        else None
    )
    selections = tuple(
        part.strip()
        for part in match.group("select").split(",")
        if part.strip()
    )
    if not selections:
        raise QuerySyntaxError("select clause is empty", text)
    return FoxQuery(
        variable=match.group("var"),
        class_name=match.group("cls"),
        condition=condition,
        selections=selections,
    )


class _PathEvaluator:
    """Resolves a variable-rooted (possibly incomplete) path text to the
    concrete paths to evaluate.

    Resolution goes through the engine's shared, bounded completion
    cache (keyed by the rebased expression text), so repeated references
    to one path — across objects, comparisons, and even other queries or
    sessions over the same compiled schema — are disambiguated once.
    This replaced an unbounded per-evaluator dict that could not be
    shared and never evicted.
    """

    def __init__(
        self, database: Database, query: FoxQuery, engine: Disambiguator
    ) -> None:
        self.database = database
        self.query = query
        self.engine = engine

    def _resolve(self, path_text: str):
        expression = self._substitute_variable(path_text)
        result = self.engine.complete(expression)
        if not result.paths:
            raise NoCompletionError(
                f"no completion for {path_text!r} in the fox query"
            )
        return result.paths

    def _substitute_variable(self, path_text: str) -> PathExpression:
        expression = parse_path_expression(path_text)
        if expression.root != self.query.variable:
            raise QuerySyntaxError(
                f"path {path_text!r} must start with the query variable "
                f"{self.query.variable!r}",
                path_text,
            )
        rebased = PathExpression(self.query.class_name, expression.steps)
        return rebased

    def values_from(self, obj: DBObject, path_text: str) -> frozenset:
        """Union of evaluation results over all resolved paths.

        A bare variable reference (``select s``) yields the object
        itself.
        """
        expression = parse_path_expression(path_text)
        if expression.root == self.query.variable and not expression.steps:
            return frozenset({obj})
        combined: set = set()
        for path in self._resolve(path_text):
            combined |= evaluate_from(self.database, path, [obj])
        return frozenset(combined)


def run_fox(
    database: Database,
    text: str,
    engine: Disambiguator | None = None,
    compiled: "CompiledSchema | None" = None,
    jobs: int = 1,
) -> list[FoxRow]:
    """Parse and run a fox query against a database.

    Rows are ordered by the binding's object id.  Pass ``compiled`` (a
    :class:`~repro.core.compiled.CompiledSchema`) to share one
    compilation artifact — and one completion cache — across many
    queries; without it the default engine still compiles through the
    memoized registry, so repeated ``run_fox`` calls over an unchanged
    schema share state anyway.

    ``jobs > 1`` disambiguates the query's path texts (selections and
    condition paths) concurrently up front, so the per-binding
    evaluation loop runs against a warm completion cache; rows and
    their order are unaffected.
    """
    # The slow-log observation wraps the whole evaluation: a retained
    # fox query keeps its parse/evaluate span tree and row count.
    with get_slowlog().observe("fox", text) as obs:
        rows = _run_fox_observed(database, text, engine, compiled, jobs)
        obs.set(rows=len(rows))
        return rows


def _prewarm_paths(
    query: FoxQuery, evaluator: "_PathEvaluator", jobs: int
) -> int:
    """Warm the completion cache for every path text the query names.

    Unparseable or uncompletable paths are skipped here — the
    evaluation loop reaches them in its usual order and raises (or
    filters) exactly as it would sequentially.
    """
    texts = [
        comparison.path_text
        for comparison in (
            query.condition.comparisons() if query.condition else []
        )
    ]
    texts.extend(query.selections)
    expressions = []
    for path_text in dict.fromkeys(texts):
        try:
            expression = evaluator._substitute_variable(path_text)
        except ReproError:
            continue
        if not expression.steps:
            continue  # a bare variable reference needs no completion
        expressions.append(expression)
    return prewarm(evaluator.engine, expressions, jobs)


def _run_fox_observed(
    database: Database,
    text: str,
    engine: Disambiguator | None,
    compiled: "CompiledSchema | None",
    jobs: int = 1,
) -> list[FoxRow]:
    tracer = get_tracer()
    with tracer.span("fox", query=text) as span:
        with tracer.span("parse"):
            query = parse_fox(text)
        database.schema.get_class(query.class_name)
        if engine is None:
            engine = Disambiguator(
                compiled if compiled is not None else database.schema
            )
        evaluator = _PathEvaluator(database, query, engine)
        if jobs > 1:
            with tracer.span("prewarm", jobs=jobs) as warm_span:
                warm_span.set(warmed=_prewarm_paths(query, evaluator, jobs))

        rows: list[FoxRow] = []
        bindings = sorted(
            database.extent(query.class_name), key=lambda o: o.oid
        )
        with tracer.span("evaluate", bindings=len(bindings)):
            for obj in bindings:
                if query.condition is not None:
                    satisfied = any(
                        all(
                            comparison.holds(
                                evaluator.values_from(obj, comparison.path_text)
                            )
                            for comparison in clause
                        )
                        for clause in query.condition.clauses
                    )
                    if not satisfied:
                        continue
                rows.append(
                    FoxRow(
                        binding=obj,
                        values=tuple(
                            evaluator.values_from(obj, selection)
                            for selection in query.selections
                        ),
                    )
                )
        span.set(rows=len(rows))
    return rows
