"""Property-style fuzzing of every text-input surface.

The robustness contract: whatever bytes a user throws at a parser, the
failure mode is a typed :class:`~repro.errors.ReproError` subclass (or
a clean parse) — never a raw ``IndexError``/``KeyError``/
``AttributeError`` escaping from half-parsed state.  Seeded generators
keep every run reproducible."""

import random
import string

import pytest

from repro.core.parser import parse_path_expression, tokenize
from repro.errors import ReproError
from repro.model.dsl import parse_schema_dsl
from repro.query.fox import parse_fox
from repro.query.language import parse_query

#: Alphabet skewed toward the grammar's own metacharacters so the fuzz
#: reaches deep parser states, not just "unexpected character" exits.
_ALPHABET = (
    string.ascii_lowercase
    + string.digits
    + "~.@$<>_ ()[]{}:;=\"'\\,-+*/!?#\n\t"
)

_GRAMMAR_FRAGMENTS = [
    "~",
    ".",
    "@>",
    "<@",
    "$>",
    "<$",
    "for",
    "where",
    "select",
    "in",
    "and",
    "class",
    "attr",
    "rel",
    "ta",
    "name",
    " ",
    "\n",
]


def _byte_soup(rng: random.Random, length: int) -> str:
    return "".join(rng.choice(_ALPHABET) for _ in range(length))


def _fragment_soup(rng: random.Random, count: int) -> str:
    return "".join(rng.choice(_GRAMMAR_FRAGMENTS) for _ in range(count))


def _inputs(seed: int, rounds: int = 150):
    """A deterministic stream of hostile inputs for one seed."""
    rng = random.Random(seed)
    for index in range(rounds):
        if index % 3 == 0:
            yield _byte_soup(rng, rng.randrange(0, 60))
        elif index % 3 == 1:
            yield _fragment_soup(rng, rng.randrange(1, 12))
        else:
            # Mutate a valid-looking expression.
            base = list("ta ~ name")
            for _ in range(rng.randrange(1, 4)):
                position = rng.randrange(len(base))
                base[position] = rng.choice(_ALPHABET)
            yield "".join(base)


def _assert_typed_failure_only(callable_, text):
    try:
        callable_(text)
    except ReproError:
        pass  # the contract: typed, catchable, carries a message
    # A clean parse is equally acceptable; any other exception type
    # propagates and fails the test with its own traceback.


@pytest.mark.parametrize("seed", range(5))
class TestFuzzParsers:
    def test_path_expression_parser(self, seed):
        for text in _inputs(seed):
            _assert_typed_failure_only(parse_path_expression, text)

    def test_tokenizer(self, seed):
        for text in _inputs(seed):
            _assert_typed_failure_only(tokenize, text)

    def test_schema_dsl_parser(self, seed):
        for text in _inputs(seed):
            _assert_typed_failure_only(parse_schema_dsl, text)

    def test_query_parser(self, seed):
        for text in _inputs(seed):
            _assert_typed_failure_only(parse_query, text)

    def test_fox_parser(self, seed):
        for text in _inputs(seed):
            _assert_typed_failure_only(parse_fox, text)


class TestFuzzEdgeInputs:
    """Hand-picked boundary inputs every parser must reject cleanly."""

    CASES = [
        "",
        " ",
        "\n",
        "~",
        "~~~~",
        ".",
        "a" * 10_000,
        "~ " * 500,
        "ta ~",
        "~ name",
        "ta . ",
        "ta ~ name ~",
        "\x00",
        "ta \x00 name",
        "🦊 ~ 名前",
    ]

    @pytest.mark.parametrize(
        "parser",
        [parse_path_expression, tokenize, parse_schema_dsl, parse_query, parse_fox],
        ids=["path", "tokenize", "dsl", "query", "fox"],
    )
    def test_edge_cases_fail_typed_or_parse(self, parser):
        for text in self.CASES:
            _assert_typed_failure_only(parser, text)

    def test_error_messages_are_nonempty(self):
        for text in self.CASES:
            try:
                parse_path_expression(text)
            except ReproError as error:
                assert str(error).strip()
