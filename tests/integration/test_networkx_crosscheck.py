"""Cross-validation of the path enumerator against networkx.

For a :class:`ClassTarget`, the consistent acyclic paths of the paper
are exactly the simple paths of the schema multigraph from the root to
the target class — modulo one semantic difference: a consistent path's
*only* visit to the target is its final step (completing edges are
terminal), whereas networkx simple paths may pass through earlier...
they may not (simple paths visit each node once, and end at the
target), so the sets coincide.  This independent implementation
cross-checks ours edge-for-edge on the university schema and on random
schemas.
"""

import networkx as nx
import pytest

from repro.core.enumerate import enumerate_consistent_paths
from repro.core.target import ClassTarget
from repro.model.graph import SchemaGraph
from repro.schemas.generator import GeneratorConfig, generate_schema


def _networkx_paths(graph: SchemaGraph, root: str, target: str) -> set[tuple]:
    exported = graph.to_networkx()
    if root not in exported or target not in exported:
        return set()
    found = set()
    for edge_path in nx.all_simple_edge_paths(exported, root, target):
        found.add(
            tuple((u, v, key) for u, v, key in edge_path)
        )
    return found


def _our_paths(graph: SchemaGraph, root: str, target: str) -> set[tuple]:
    return {
        tuple((e.source, e.target, e.name) for e in path.edges)
        for path in enumerate_consistent_paths(
            graph, root, ClassTarget(target)
        )
    }


class TestAgainstNetworkx:
    @pytest.mark.parametrize(
        "root,target",
        [
            ("ta", "course"),
            ("ta", "person"),
            ("department", "person"),
            ("university", "course"),
            ("student", "university"),
        ],
    )
    def test_university_class_targets(self, university_graph, root, target):
        ours = _our_paths(university_graph, root, target)
        theirs = _networkx_paths(university_graph, root, target)
        assert ours == theirs

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_schemas(self, seed):
        schema = generate_schema(
            GeneratorConfig(classes=10, seed=seed, association_factor=0.7)
        )
        graph = SchemaGraph(schema)
        classes = [c.name for c in schema.classes(include_primitives=False)]
        for root in classes[:3]:
            for target in classes[3:6]:
                if root == target:
                    continue
                assert _our_paths(graph, root, target) == _networkx_paths(
                    graph, root, target
                ), (seed, root, target)

    def test_counts_match_on_the_flagship_query_shape(self, university_graph):
        ours = _our_paths(university_graph, "ta", "course")
        assert len(ours) > 0
        # sanity: every path's last edge lands on the target
        assert all(path[-1][1] == "course" for path in ours)
