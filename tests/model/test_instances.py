"""Tests for the instance store."""

import pytest

from repro.errors import EvaluationError, InstanceError, UnknownObjectError
from repro.model.instances import Database


@pytest.fixture()
def db(university):
    return Database(university)


class TestObjects:
    def test_create_and_get(self, db):
        alice = db.create("student")
        assert db.get(alice.oid) == alice
        assert len(db) == 1

    def test_unknown_object(self, db):
        with pytest.raises(UnknownObjectError):
            db.get(999)

    def test_primitive_cannot_be_instantiated(self, db):
        with pytest.raises(InstanceError):
            db.create("C")

    def test_extent_includes_subclass_instances(self, db):
        ta = db.create("ta")
        assert db.is_instance(ta, "ta")
        assert db.is_instance(ta, "grad")
        assert db.is_instance(ta, "student")
        assert db.is_instance(ta, "person")
        assert db.is_instance(ta, "teacher")
        assert ta in db.extent("person")

    def test_extent_excludes_siblings(self, db):
        staff = db.create("staff")
        assert not db.is_instance(staff, "student")

    def test_create_many(self, db):
        objs = db.create_many("course", 4)
        assert len(objs) == 4
        assert db.extent("course") == set(objs)


class TestLinks:
    def test_link_and_traverse(self, db):
        alice = db.create("student")
        course = db.create("course")
        db.link(alice, "take", course)
        assert db.linked(alice, "take") == {course}

    def test_inverse_maintained_automatically(self, db):
        alice = db.create("student")
        course = db.create("course")
        db.link(alice, "take", course)
        assert db.linked(course, "student") == {alice}

    def test_inherited_relationship_linkable(self, db):
        ta = db.create("ta")
        course = db.create("course")
        db.link(ta, "take", course)  # inherited from student
        assert db.linked(ta, "take") == {course}

    def test_link_type_checked(self, db):
        alice = db.create("student")
        bob = db.create("student")
        with pytest.raises(InstanceError):
            db.link(alice, "take", bob)  # take targets course

    def test_subclass_target_accepted(self, db):
        department = db.create("department")
        professor = db.create("professor")
        db.link(department, "professor", professor)
        assert db.linked(department, "professor") == {professor}

    def test_taxonomic_relationships_not_linkable(self, db):
        student = db.create("student")
        person = db.create("person")
        with pytest.raises(InstanceError):
            db.link(student, "person", person)

    def test_unknown_relationship(self, db):
        alice = db.create("student")
        with pytest.raises(EvaluationError):
            db.linked(alice, "ghost")

    def test_link_count(self, db):
        alice = db.create("student")
        course = db.create("course")
        db.link(alice, "take", course)
        assert db.link_count() == 2  # forward + inverse


class TestAttributes:
    def test_set_and_get(self, db):
        alice = db.create("student")
        db.set_attribute(alice, "name", "alice")  # inherited from person
        assert db.get_attribute(alice, "name") == "alice"

    def test_unset_reads_none(self, db):
        alice = db.create("student")
        assert db.get_attribute(alice, "name") is None

    def test_type_checking(self, db):
        alice = db.create("student")
        with pytest.raises(InstanceError):
            db.set_attribute(alice, "ssn", "not an int")
        with pytest.raises(InstanceError):
            db.set_attribute(alice, "ssn", True)  # bool is not an I
        db.set_attribute(alice, "ssn", 123)
        assert db.get_attribute(alice, "ssn") == 123

    def test_link_relationship_rejected_as_attribute(self, db):
        alice = db.create("student")
        with pytest.raises(InstanceError):
            db.set_attribute(alice, "take", "cs101")

    def test_attribute_values_over_set(self, db):
        students = db.create_many("student", 3)
        db.set_attribute(students[0], "name", "a")
        db.set_attribute(students[1], "name", "b")
        assert db.attribute_values(students, "name") == {"a", "b"}
