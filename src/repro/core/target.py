"""Target specifications for path completion.

The paper's incomplete expression ``ξ = s ~ N`` targets a relationship
*name* N (the completion must end with a relationship named N), while
its formal path-computation treatment simplifies to class-to-class paths
(target a node T).  Both forms are supported:

* :class:`RelationshipTarget` — the completion's last edge must carry
  the given relationship name (the ``s ~ N`` form);
* :class:`ClassTarget` — the completion's last edge must arrive at the
  given class (the formalization's node-target form).

A target classifies edges as *completing*: a path is complete exactly
when its last edge is completing, and completing edges are never
extended further (Algorithm 1/2 exclude T from the recursion).
"""

from __future__ import annotations

import dataclasses

from repro.core.ast import ConcretePath, PathExpression
from repro.errors import PathExpressionError
from repro.model.graph import SchemaEdge, SchemaGraph

__all__ = [
    "Target",
    "ClassTarget",
    "RelationshipTarget",
    "target_for_expression",
]


class Target:
    """Interface for completion targets."""

    def is_completing_edge(self, edge: SchemaEdge) -> bool:
        """True if traversing ``edge`` finishes a consistent path."""
        raise NotImplementedError

    def exists_in(self, graph: SchemaGraph) -> bool:
        """True if at least one completing edge exists in the graph."""
        return any(
            self.is_completing_edge(edge) for edge in graph.edges()
        )

    def describe(self) -> str:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class ClassTarget(Target):
    """Complete upon arriving at a given class (the paper's node T)."""

    class_name: str

    def is_completing_edge(self, edge: SchemaEdge) -> bool:
        return edge.target == self.class_name

    def describe(self) -> str:
        return f"class {self.class_name!r}"


@dataclasses.dataclass(frozen=True)
class RelationshipTarget(Target):
    """Complete upon traversing an edge with a given relationship name
    (the ``s ~ N`` form of the paper)."""

    relationship_name: str

    def is_completing_edge(self, edge: SchemaEdge) -> bool:
        return edge.name == self.relationship_name

    def describe(self) -> str:
        return f"relationship name {self.relationship_name!r}"


def target_for_expression(expression: PathExpression) -> RelationshipTarget:
    """The target of a simple incomplete expression ``s ~ N``."""
    if not expression.is_simple_incomplete:
        raise PathExpressionError(
            f"{expression} is not of the simple form s ~ N; "
            "use repro.core.multi for the general case"
        )
    return RelationshipTarget(expression.last_name)


def is_consistent(path: ConcretePath, root: str, target: Target) -> bool:
    """Consistency check (paper Section 2.2.2): a complete path is
    consistent with ``s ~ N`` when its root is ``s`` and its last edge
    satisfies the target."""
    if path.root != root or not path.edges:
        return False
    return target.is_completing_edge(path.edges[-1])
