"""Tests for the interactive completion loop (Figure 1)."""

import pytest

from repro.model.instances import Database
from repro.query.session import (
    CompletionSession,
    RecordingChooser,
    approve_all,
    approve_first,
)


@pytest.fixture()
def db(university):
    db = Database(university)
    bob = db.create("ta")
    db.set_attribute(bob, "name", "bob")
    course = db.create("course")
    db.set_attribute(course, "name", "cs101")
    db.link(bob, "take", course)
    return db


class TestChoosers:
    def test_approve_all(self):
        assert approve_all([1, 2, 3]) == [1, 2, 3]

    def test_approve_first(self):
        assert approve_first([1, 2, 3]) == [1]
        assert approve_first([]) == []

    def test_recording_chooser_logs(self):
        chooser = RecordingChooser(approve_first)
        chosen = chooser([1, 2])
        assert chosen == [1]
        assert chooser.log == [([1, 2], [1])]


class TestSession:
    def test_incomplete_query_round(self, db):
        session = CompletionSession(db)
        interaction = session.ask("ta ~ name")
        assert len(interaction.candidates) == 2
        assert len(interaction.approved) == 2
        assert interaction.values == {"bob"}

    def test_approve_first_evaluates_one(self, db):
        session = CompletionSession(db, chooser=approve_first)
        interaction = session.ask("ta ~ name")
        assert len(interaction.approved) == 1
        assert interaction.values == {"bob"}

    def test_complete_query_round(self, db):
        session = CompletionSession(db)
        interaction = session.ask("ta@>grad@>student.take.name")
        assert interaction.values == {"cs101"}

    def test_history_recorded(self, db):
        session = CompletionSession(db)
        session.ask("ta ~ name")
        session.ask("course.name")
        assert [i.input_text for i in session.history] == [
            "ta ~ name",
            "course.name",
        ]

    def test_rejection_counts_feed_future_domain_knowledge(self, db):
        chooser = RecordingChooser(approve_first)
        session = CompletionSession(db, chooser=chooser)
        session.ask("ta ~ name")
        counts = chooser.rejection_counts()
        # the rejected instructor-chain completion passes through teacher
        assert counts.get("teacher", 0) >= 1
        assert counts.get("grad", 0) == 0  # approved path not counted


class TestSessionCommands:
    def test_trace_status_defaults_off(self, db):
        session = CompletionSession(db)
        interaction = session.ask(":trace")
        assert interaction.is_command
        assert interaction.message == "tracing off (0 span(s) recorded)"
        assert interaction.candidates == ()

    def test_trace_on_records_subsequent_asks(self, db):
        session = CompletionSession(db)
        assert session.ask(":trace on").message == "tracing on"
        session.ask("ta ~ name")
        assert session.tracer is not None
        assert session.tracer.find("ask")
        assert session.tracer.find("complete")

    def test_trace_off_stops_recording_but_keeps_spans(self, db):
        session = CompletionSession(db)
        session.ask(":trace on")
        session.ask("ta ~ name")
        recorded = session.tracer.span_count
        assert session.ask(":trace off").message == "tracing off"
        session.ask("ta ~ name")
        assert session.tracer.span_count == recorded
        assert f"({recorded} span(s) recorded)" in session.ask(":trace").message

    def test_trace_show_renders_tree(self, db):
        session = CompletionSession(db)
        session.ask(":trace on")
        session.ask("ta ~ name")
        message = session.ask(":trace show").message
        assert "ask" in message
        assert "ms" in message

    def test_trace_show_without_spans(self, db):
        session = CompletionSession(db)
        message = session.ask(":trace show").message
        assert "no spans recorded" in message

    def test_metrics_accumulate_across_rounds(self, db):
        import json

        from repro.core.compiled import CompiledSchema

        # A fresh (non-memoized) artifact so the completion cache starts
        # cold regardless of what earlier tests completed.
        session = CompletionSession(db, compiled=CompiledSchema(db.schema))
        session.ask("ta ~ name")
        session.ask("ta ~ name")
        summary = json.loads(session.ask(":metrics").message)
        assert summary["counters"]["completions"] == 2
        assert summary["counters"]["cache.hits"] == 1

    def test_metrics_report_budget_governance_counters(self, db):
        import json

        # The budget trip/degrade counters are pre-created so the JSON
        # summary always carries them, even before any budget installs.
        session = CompletionSession(db)
        summary = json.loads(session.ask(":metrics").message)
        assert summary["counters"]["budget.trips"] == 0
        assert summary["counters"]["budget.degrades"] == 0

    def test_slowlog_off_by_default(self, db):
        session = CompletionSession(db)
        message = session.ask(":slowlog").message
        assert "slow-query logging off" in message
        session.ask("ta ~ name")
        assert session.slowlog is None

    def test_slowlog_on_records_subsequent_asks(self, db):
        session = CompletionSession(db)
        session.ask(":slowlog on")
        session.ask("ta ~ name")
        assert session.slowlog is not None
        (entry,) = session.slowlog.entries()
        assert entry.kind == "ask"
        assert entry.query == "ta ~ name"
        assert entry.spans  # the ask's span tree was retained
        shown = session.ask(":slowlog show").message
        assert "ta ~ name" in shown
        assert "1 retained of 1 observed" in shown

    def test_slowlog_threshold_argument(self, db):
        session = CompletionSession(db)
        message = session.ask(":slowlog on 250").message
        assert "threshold 250ms" in message
        session.ask("ta ~ name")  # far faster than 250ms...
        status = session.ask(":slowlog").message
        # ...but still in the top-K, so it is retained.
        assert "slow-query logging on" in status
        assert session.slowlog.threshold_ms == 250.0

    def test_slowlog_off_stops_recording_but_keeps_entries(self, db):
        session = CompletionSession(db)
        session.ask(":slowlog on")
        session.ask("ta ~ name")
        session.ask(":slowlog off")
        session.ask("course ~ name")
        assert len(session.slowlog.entries()) == 1
        assert "ta ~ name" in session.ask(":slowlog show").message

    def test_slowlog_show_without_log(self, db):
        message = CompletionSession(db).ask(":slowlog show").message
        assert "no slow queries recorded" in message

    def test_slowlog_bad_arguments(self, db):
        session = CompletionSession(db)
        assert "not a number" in session.ask(":slowlog on abc").message
        assert "unknown :slowlog argument" in session.ask(":slowlog nope").message

    def test_prom_renders_exposition_format(self, db):
        session = CompletionSession(db)
        session.ask("ta ~ name")
        message = session.ask(":prom").message
        assert "# TYPE repro_completions_total counter" in message
        assert "repro_completions_total 1" in message
        assert 'le="+Inf"' in message

    def test_unknown_command_is_reported(self, db):
        message = CompletionSession(db).ask(":bogus").message
        assert "unknown session command" in message
        assert ":metrics" in message
        assert ":slowlog" in message
        assert ":explain" in message

    def test_explain_candidate_against_last_query(self, db):
        session = CompletionSession(db)
        session.ask("ta ~ name")
        message = session.ask(":explain ta@>grad@>student@>person.name").message
        assert message.startswith("[returned]")
        message = session.ask(":explain ta@>grad@>student.take.name").message
        assert message.startswith("[connector_dominated]")

    def test_explain_before_any_query(self, db):
        message = CompletionSession(db).ask(":explain ta.member.name").message
        assert "no query to explain against yet" in message

    def test_explain_usage_without_arguments(self, db):
        message = CompletionSession(db).ask(":explain").message
        assert "usage: :explain" in message

    def test_explain_analyze_defaults_to_last_query(self, db):
        session = CompletionSession(db)
        session.ask("ta ~ name")
        message = session.ask(":explain analyze").message
        assert "search ta ~" in message
        assert "decision tree:" in message
        assert "score decomposition" in message

    def test_explain_analyze_with_explicit_query(self, db):
        session = CompletionSession(db)
        message = session.ask(":explain analyze student ~ name").message
        assert "search student ~" in message

    def test_explain_analyze_without_a_query(self, db):
        message = CompletionSession(db).ask(":explain analyze").message
        assert "no query to analyze yet" in message

    def test_explain_analyze_bad_query_stays_in_loop(self, db):
        session = CompletionSession(db)
        message = session.ask(":explain analyze nonsense !!").message
        assert message.startswith("error:")

    def test_command_rounds_enter_history(self, db):
        session = CompletionSession(db)
        session.ask(":trace on")
        session.ask("ta ~ name")
        kinds = [i.is_command for i in session.history]
        assert kinds == [True, False]
