"""Unit tests for request identity, head sampling, and the access log."""

import json
import threading

import pytest

from repro.obs.reqlog import (
    ACCESS_LOG_VERSION,
    AccessLog,
    HeadSampler,
    RequestContext,
    clean_request_id,
    get_request,
    get_request_id,
    mint_request_id,
    use_request,
)
from repro.obs.schema import SchemaValidationError, validate_access_records


class TestRequestIds:
    def test_minted_ids_are_32_hex_and_unique(self):
        first, second = mint_request_id(), mint_request_id()
        assert len(first) == 32
        assert all(ch in "0123456789abcdef" for ch in first)
        assert first != second

    def test_clean_accepts_conservative_ids(self):
        for raw in ("abc123", "req-7.B_x", "A" * 128):
            assert clean_request_id(raw) == raw

    @pytest.mark.parametrize(
        "raw",
        [None, "", "A" * 129, "has space", "new\nline", "quote\"", "é"],
    )
    def test_clean_rejects_hostile_ids(self, raw):
        assert clean_request_id(raw) is None

    def test_ambient_default_is_none(self):
        assert get_request() is None
        assert get_request_id() is None

    def test_use_request_installs_and_restores(self):
        context = RequestContext("req-1", sampled=True)
        with use_request(context) as installed:
            assert installed is context
            assert get_request() is context
            assert get_request_id() == "req-1"
            assert get_request().sampled
        assert get_request() is None


class TestHeadSampler:
    def test_rate_bounds_are_validated(self):
        with pytest.raises(ValueError):
            HeadSampler(-0.1)
        with pytest.raises(ValueError):
            HeadSampler(1.5)

    def test_zero_rate_never_samples_but_counts(self):
        sampler = HeadSampler(0.0)
        assert not any(sampler.sample() for _ in range(50))
        assert sampler.stats() == {"rate": 0.0, "decisions": 50, "sampled": 0}

    def test_full_rate_always_samples(self):
        sampler = HeadSampler(1.0)
        assert all(sampler.sample() for _ in range(50))
        assert sampler.stats()["sampled"] == 50

    def test_seed_makes_decisions_deterministic(self):
        one, two = HeadSampler(0.5, seed=7), HeadSampler(0.5, seed=7)
        first = [one.sample() for _ in range(100)]
        second = [two.sample() for _ in range(100)]
        assert first == second
        assert any(first) and not all(first)

    def test_partial_rate_counts_add_up(self):
        sampler = HeadSampler(0.3, seed=11)
        hits = sum(sampler.sample() for _ in range(200))
        stats = sampler.stats()
        assert stats["decisions"] == 200
        assert stats["sampled"] == hits
        assert 0 < hits < 200


def _record(log: AccessLog, request_id: str = "r", **overrides) -> dict:
    fields = dict(
        request_id=request_id,
        method="POST",
        route="/v1/complete",
        status=200,
        latency_ms=1.25,
        outcome="ok",
    )
    fields.update(overrides)
    return log.record(**fields)


class TestAccessLog:
    def test_record_carries_every_schema_field(self):
        log = AccessLog(capacity=4)
        entry = _record(
            log,
            request_id="abc",
            tenant="university",
            cache_hit=True,
            sampled=True,
        )
        assert entry["version"] == ACCESS_LOG_VERSION
        assert entry["seq"] == 0
        assert entry["ts"] > 0
        assert entry["tenant"] == "university"
        assert entry["cache_hit"] is True
        validate_access_records(log.records())

    def test_ring_is_bounded_and_seq_keeps_counting(self):
        log = AccessLog(capacity=3)
        for index in range(7):
            _record(log, request_id=f"r{index}")
        assert len(log) == 3
        records = log.records()
        assert [entry["request_id"] for entry in records] == [
            "r4",
            "r5",
            "r6",
        ]
        assert records[-1]["seq"] == 6
        assert log.stats()["recorded"] == 7

    def test_find_returns_most_recent_match(self):
        log = AccessLog()
        _record(log, request_id="dup", status=200, outcome="ok")
        _record(log, request_id="dup", status=429, outcome="shed",
                shed_reason="queue_full")
        found = log.find("dup")
        assert found is not None and found["status"] == 429
        assert log.find("missing") is None

    def test_file_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(capacity=8, path=str(path))
        _record(log, request_id="a")
        _record(log, request_id="b")
        log.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert [entry["request_id"] for entry in lines] == ["a", "b"]
        validate_access_records(lines)

    def test_write_jsonl_round_trips_through_validation(self, tmp_path):
        log = AccessLog()
        _record(log, status=206, outcome="partial",
                truncation_reason="deadline")
        target = tmp_path / "export.jsonl"
        assert log.write_jsonl(str(target)) == 1
        validate_access_records(
            [json.loads(line) for line in target.read_text().splitlines()]
        )

    def test_record_is_thread_safe(self):
        log = AccessLog(capacity=1000)
        threads = [
            threading.Thread(
                target=lambda: [_record(log) for _ in range(50)]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert log.stats()["recorded"] == 200
        seqs = [entry["seq"] for entry in log.records()]
        assert seqs == sorted(seqs)

    def test_validation_rejects_unreasoned_degradation(self):
        log = AccessLog()
        _record(log, status=429, outcome="shed")  # no shed_reason
        with pytest.raises(SchemaValidationError):
            validate_access_records(log.records())
        partial_log = AccessLog()
        _record(partial_log, status=206, outcome="partial")
        with pytest.raises(SchemaValidationError):
            validate_access_records(partial_log.records())

    def test_validation_rejects_unknown_outcomes(self):
        log = AccessLog()
        entry = _record(log)
        entry["outcome"] = "mystery"
        with pytest.raises(SchemaValidationError):
            validate_access_records([entry])
