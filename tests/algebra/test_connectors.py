"""Tests for the connector alphabet Sigma."""

import pytest

from repro.algebra.connectors import (
    ALL_CONNECTORS,
    PRIMARY_CONNECTORS,
    SECONDARY_CONNECTORS,
    Connector,
    connector_for_kind,
    parse_connector,
)
from repro.errors import UnknownConnectorError
from repro.model.kinds import RelationshipKind


class TestAlphabet:
    def test_sigma_has_fourteen_members(self):
        assert len(ALL_CONNECTORS) == 14

    def test_five_primary_connectors(self):
        assert len(PRIMARY_CONNECTORS) == 5
        assert {c.symbol for c in PRIMARY_CONNECTORS} == {
            "@>", "<@", "$>", "<$", ".",
        }

    def test_primary_and_secondary_partition_sigma(self):
        assert set(PRIMARY_CONNECTORS) | set(SECONDARY_CONNECTORS) == set(
            ALL_CONNECTORS
        )
        assert not set(PRIMARY_CONNECTORS) & set(SECONDARY_CONNECTORS)

    def test_six_possibly_variants(self):
        possibly = [c for c in ALL_CONNECTORS if c.is_possibly]
        assert len(possibly) == 6
        assert all(c.symbol.endswith("*") for c in possibly)

    def test_indexes_are_unique_and_dense(self):
        indexes = {c.index for c in ALL_CONNECTORS}
        assert indexes == set(range(14))


class TestPossibly:
    def test_possibly_of_plain(self):
        assert Connector.HAS_PART.possibly is Connector.POSSIBLY_HAS_PART
        assert Connector.ASSOC.possibly is Connector.POSSIBLY_ASSOC

    def test_possibly_is_idempotent(self):
        assert (
            Connector.POSSIBLY_HAS_PART.possibly
            is Connector.POSSIBLY_HAS_PART
        )

    def test_taxonomic_has_no_possibly(self):
        with pytest.raises(ValueError):
            _ = Connector.ISA.possibly
        with pytest.raises(ValueError):
            _ = Connector.MAY_BE.possibly

    def test_base_inverts_possibly(self):
        for connector in ALL_CONNECTORS:
            if connector.is_possibly:
                assert connector.base.possibly is connector
            else:
                assert connector.base is connector


class TestInverseBases:
    def test_isa_maybe_are_mutual_inverses(self):
        assert Connector.ISA.inverse_base is Connector.MAY_BE
        assert Connector.MAY_BE.inverse_base is Connector.ISA

    def test_part_whole_are_mutual_inverses(self):
        assert Connector.HAS_PART.inverse_base is Connector.IS_PART_OF
        assert Connector.IS_PART_OF.inverse_base is Connector.HAS_PART

    def test_sharing_are_mutual_inverses(self):
        assert (
            Connector.SHARES_SUBPARTS.inverse_base
            is Connector.SHARES_SUPERPARTS
        )

    def test_assoc_kinds_are_self_inverse(self):
        assert Connector.ASSOC.inverse_base is Connector.ASSOC
        assert Connector.INDIRECT_ASSOC.inverse_base is Connector.INDIRECT_ASSOC

    def test_possibly_inverse_goes_through_base(self):
        assert (
            Connector.POSSIBLY_HAS_PART.inverse_base is Connector.IS_PART_OF
        )


class TestRanks:
    def test_strength_ordering_of_families(self):
        assert Connector.ISA.strength_rank < Connector.HAS_PART.strength_rank
        assert Connector.HAS_PART.strength_rank < Connector.ASSOC.strength_rank
        assert (
            Connector.ASSOC.strength_rank
            < Connector.SHARES_SUBPARTS.strength_rank
        )
        assert (
            Connector.SHARES_SUBPARTS.strength_rank
            < Connector.INDIRECT_ASSOC.strength_rank
        )

    def test_possibly_shares_base_strength(self):
        for connector in ALL_CONNECTORS:
            assert connector.strength_rank == connector.base.strength_rank

    def test_sort_rank_puts_possibly_half_step_down(self):
        assert (
            Connector.POSSIBLY_HAS_PART.sort_rank
            == Connector.HAS_PART.sort_rank + 1
        )


class TestParsing:
    def test_parse_every_symbol(self):
        for connector in ALL_CONNECTORS:
            assert parse_connector(connector.symbol) is connector

    def test_parse_unknown_raises(self):
        with pytest.raises(UnknownConnectorError):
            parse_connector("~>")

    def test_connector_for_every_kind(self):
        expected = {
            RelationshipKind.ISA: Connector.ISA,
            RelationshipKind.MAY_BE: Connector.MAY_BE,
            RelationshipKind.HAS_PART: Connector.HAS_PART,
            RelationshipKind.IS_PART_OF: Connector.IS_PART_OF,
            RelationshipKind.IS_ASSOCIATED_WITH: Connector.ASSOC,
        }
        for kind, connector in expected.items():
            assert connector_for_kind(kind) is connector

    def test_str_is_symbol(self):
        assert str(Connector.SHARES_SUBPARTS) == ".SB"
