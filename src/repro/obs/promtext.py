"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

Serving the disambiguator under real traffic needs a scrape target, not
a JSON dump: this module renders the registry in the Prometheus text
exposition format (version 0.0.4) using only the stdlib —

* counters become ``<ns>_<name>_total`` samples of ``# TYPE counter``;
* gauges become ``<ns>_<name>`` samples of ``# TYPE gauge``;
* histograms become classic cumulative-bucket families: one
  ``_bucket{le="..."}`` sample per bound (always ending in
  ``le="+Inf"``), plus exact ``_sum`` and ``_count`` samples.  Bucket
  counts are derived from the reservoir
  (:meth:`~repro.obs.metrics.Histogram.cumulative_buckets`): exact
  while the reservoir holds every observation, scaled estimates once
  Algorithm R subsamples — ``_count``/``_sum`` stay exact either way.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots and other illegal characters
become underscores, and a namespace prefix (default ``repro``) keeps
the exported families out of other jobs' way.

Request-scoped labels (:func:`repro.obs.metrics.labelled` encodes them
into the registry name as ``name|key=value,...``) are decoded here and
rendered as proper exposition labels: every series of one base name
shares a single ``# HELP``/``# TYPE`` family header and emits
``family{key="value"} sample`` lines, with label values escaped per the
exposition grammar.  Histogram series merge their labels with ``le``.

:class:`repro.obs.serve.MetricsServer` exposes this text over HTTP;
the CLI ``--prom[=FILE]`` flag prints or writes one snapshot.
"""

from __future__ import annotations

import re
from typing import IO

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    split_labels,
)

__all__ = ["DEFAULT_BUCKET_BOUNDS", "render_prometheus", "write_prometheus"]

#: Default histogram bucket upper bounds.  Log-spaced 1/2.5/5 decades
#: covering both sub-millisecond latencies (seconds-valued series) and
#: recursive-call counts in the tens of thousands; ``+Inf`` is always
#: appended by the renderer.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    base * 10.0**exponent
    for exponent in range(-4, 5)
    for base in (1.0, 2.5, 5.0)
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def _sanitize(name: str) -> str:
    """A registry metric name as a legal Prometheus metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if _INVALID_FIRST.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    """A sample value in exposition syntax (integers stay integral)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    """An ``le`` label value (``+Inf`` for the terminal bucket)."""
    if bound == float("inf"):
        return "+Inf"
    if float(bound).is_integer():
        return f"{bound:.1f}"
    return repr(float(bound))


def _escape_label_value(value: str) -> str:
    """A label value escaped per the exposition grammar."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(labels: dict[str, str], extra: str | None = None) -> str:
    """Rendered ``{key="value",...}`` (empty string when label-free)."""
    pairs = [
        f'{_sanitize(key)}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    ]
    if extra is not None:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(
    registry: MetricsRegistry | NullMetricsRegistry,
    namespace: str = "repro",
    bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS,
) -> str:
    """The registry as Prometheus text exposition format 0.0.4.

    Families are emitted in sorted-name order (series of one family
    sorted by label set), so output is deterministic for a given
    registry state.  Labelled registry names
    (:func:`repro.obs.metrics.labelled`) become multi-series families
    with one shared ``# HELP``/``# TYPE`` header.
    """
    lines: list[str] = []
    metrics = sorted(registry.snapshot_metrics(), key=lambda m: m.name)
    families_seen: set[str] = set()
    for metric in metrics:
        base_name, labels = split_labels(metric.name)
        base = (
            f"{namespace}_{_sanitize(base_name)}"
            if namespace
            else _sanitize(base_name)
        )
        if isinstance(metric, Counter):
            family = f"{base}_total"
            if family not in families_seen:
                families_seen.add(family)
                lines.append(
                    f"# HELP {family} repro.obs counter {base_name!r}"
                )
                lines.append(f"# TYPE {family} counter")
            lines.append(
                f"{family}{_label_suffix(labels)} "
                f"{_format_value(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            if base not in families_seen:
                families_seen.add(base)
                lines.append(f"# HELP {base} repro.obs gauge {base_name!r}")
                lines.append(f"# TYPE {base} gauge")
            lines.append(
                f"{base}{_label_suffix(labels)} {_format_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            if base not in families_seen:
                families_seen.add(base)
                lines.append(
                    f"# HELP {base} repro.obs histogram {base_name!r}"
                )
                lines.append(f"# TYPE {base} histogram")
            for bound, count in metric.cumulative_buckets(bounds):
                suffix = _label_suffix(
                    labels, extra=f'le="{_format_bound(bound)}"'
                )
                lines.append(f"{base}_bucket{suffix} {count}")
            lines.append(
                f"{base}_sum{_label_suffix(labels)} "
                f"{_format_value(metric.total)}"
            )
            lines.append(f"{base}_count{_label_suffix(labels)} {metric.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(
    registry: MetricsRegistry | NullMetricsRegistry,
    target: str | IO[str],
    namespace: str = "repro",
) -> int:
    """Write one exposition snapshot; returns the line count."""
    text = render_prometheus(registry, namespace=namespace)
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    return len(text.splitlines())
