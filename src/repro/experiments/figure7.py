"""Figure 7 — response time per query (paper Sections 5.3-5.4).

The paper plots, for each of the ten incomplete path expressions at
E=5, the completion algorithm's response time, ordered by processing
complexity: large variance, average 6.29 s, maximum 14.45 s, and
0.17 ms per recursive call on a DecStation 5000/25.

Absolute times are hardware-bound; the hardware-independent measure the
paper itself uses is the *recursive call count*, which we report
alongside wall-clock seconds.
"""

from __future__ import annotations

import dataclasses

from repro.core.domain import DomainKnowledge
from repro.experiments.harness import run_workload
from repro.experiments.oracle import DesignerOracle
from repro.experiments.reporting import bar_chart, table
from repro.model.schema import Schema

__all__ = ["Figure7Result", "run_figure7", "render_figure7"]

#: The paper's reported numbers at E=5 on the DecStation 5000/25.
PAPER_AVERAGE_SECONDS = 6.29
PAPER_MAX_SECONDS = 14.45
PAPER_SECONDS_PER_CALL = 0.00017


@dataclasses.dataclass(frozen=True)
class QueryTiming:
    """Per-query cost at the Figure 7 setting."""

    query_id: str
    text: str
    recursive_calls: int
    elapsed_seconds: float

    @property
    def seconds_per_call(self) -> float:
        if self.recursive_calls == 0:
            return 0.0
        return self.elapsed_seconds / self.recursive_calls


@dataclasses.dataclass(frozen=True)
class Figure7Result:
    """Timings ordered by increasing processing complexity.

    ``outcomes`` keeps the raw workload outcomes (in workload order) so
    callers can inspect per-query failures recorded by a
    continue-on-error run.
    """

    timings: tuple[QueryTiming, ...]
    e: int
    outcomes: tuple = ()

    @property
    def average_seconds(self) -> float:
        if not self.timings:
            return 0.0
        return sum(t.elapsed_seconds for t in self.timings) / len(self.timings)

    @property
    def max_seconds(self) -> float:
        return max((t.elapsed_seconds for t in self.timings), default=0.0)

    @property
    def average_seconds_per_call(self) -> float:
        total_calls = sum(t.recursive_calls for t in self.timings)
        total_seconds = sum(t.elapsed_seconds for t in self.timings)
        if total_calls == 0:
            return 0.0
        return total_seconds / total_calls


def run_figure7(
    schema: Schema,
    oracle: DesignerOracle,
    e: int = 5,
    domain_knowledge: DomainKnowledge | None = None,
    continue_on_error: bool = False,
    retries: int = 0,
    jobs: int = 1,
) -> Figure7Result:
    """Time every workload query at the paper's E=5 setting."""
    outcomes = run_workload(
        schema,
        oracle,
        e=e,
        domain_knowledge=domain_knowledge,
        continue_on_error=continue_on_error,
        retries=retries,
        jobs=jobs,
    )
    timings = [
        QueryTiming(
            query_id=o.query.query_id,
            text=o.query.text,
            recursive_calls=o.recursive_calls,
            elapsed_seconds=o.elapsed_seconds,
        )
        for o in outcomes
    ]
    timings.sort(key=lambda t: t.recursive_calls)
    return Figure7Result(
        timings=tuple(timings), e=e, outcomes=tuple(outcomes)
    )


def render_figure7(result: Figure7Result) -> str:
    """Text rendering of Figure 7."""
    rows = [
        (
            t.query_id,
            t.text,
            t.recursive_calls,
            f"{t.elapsed_seconds:.2f}s",
            f"{t.seconds_per_call * 1000:.3f}ms",
        )
        for t in result.timings
    ]
    chart = bar_chart(
        [t.query_id for t in result.timings],
        [t.elapsed_seconds for t in result.timings],
        unit="s",
    )
    return "\n".join(
        [
            f"Figure 7: Response Time Per Query (E={result.e}, "
            "ordered by processing complexity)",
            (
                f"(paper: avg {PAPER_AVERAGE_SECONDS}s, max "
                f"{PAPER_MAX_SECONDS}s, {PAPER_SECONDS_PER_CALL * 1000:.2f}ms"
                "/call on a 1994 DecStation 5000/25)"
            ),
            "",
            table(
                ["query", "expression", "recursive calls", "time", "per call"],
                rows,
            ),
            "",
            chart,
            "",
            (
                f"measured: avg {result.average_seconds:.2f}s, "
                f"max {result.max_seconds:.2f}s, "
                f"{result.average_seconds_per_call * 1000:.4f}ms/call"
            ),
        ]
    )
