"""Unit tests for the budget specification, the armed meter, and the
ambient-budget context."""

import dataclasses

import pytest

from repro.resilience.budget import (
    Budget,
    BudgetMeter,
    TruncationReason,
    get_budget,
    use_budget,
)
from repro.resilience.faults import FakeClock


class TestBudgetSpec:
    def test_default_budget_is_unlimited(self):
        assert Budget().is_unlimited

    def test_any_bounded_dimension_makes_it_limited(self):
        assert not Budget(max_seconds=1.0).is_unlimited
        assert not Budget(max_nodes=10).is_unlimited
        assert not Budget(max_paths=5).is_unlimited
        assert not Budget(max_stack_depth=8).is_unlimited

    @pytest.mark.parametrize(
        "field", ["max_seconds", "max_nodes", "max_paths", "max_stack_depth"]
    )
    def test_nonpositive_limits_are_rejected(self, field):
        with pytest.raises(ValueError):
            Budget(**{field: 0})
        with pytest.raises(ValueError):
            Budget(**{field: -1})

    def test_check_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Budget(check_interval=0)

    def test_from_millis(self):
        budget = Budget.from_millis(250.0, max_nodes=99, partial_ok=True)
        assert budget.max_seconds == pytest.approx(0.25)
        assert budget.max_nodes == 99
        assert budget.partial_ok

    def test_from_millis_without_deadline(self):
        assert Budget.from_millis(None, max_nodes=5).max_seconds is None

    def test_allowing_partial_flips_only_the_policy(self):
        budget = Budget(max_nodes=10)
        relaxed = budget.allowing_partial()
        assert relaxed.partial_ok
        assert relaxed.max_nodes == 10
        assert not budget.partial_ok  # original untouched (frozen)

    def test_allowing_partial_is_identity_when_already_partial(self):
        budget = Budget(max_nodes=10, partial_ok=True)
        assert budget.allowing_partial() is budget

    def test_describe_mentions_every_bounded_dimension(self):
        text = Budget(
            max_seconds=0.05, max_nodes=7, max_paths=3, max_stack_depth=9
        ).describe()
        assert "deadline=50ms" in text
        assert "nodes<=7" in text
        assert "paths<=3" in text
        assert "depth<=9" in text
        assert "raise-on-trip" in text

    def test_budget_is_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            Budget().max_nodes = 1


class TestBudgetMeter:
    def test_unlimited_meter_never_trips(self):
        meter = Budget().start()
        for step in range(1000):
            assert meter.tripped(step, step, step) is None

    def test_node_cap_trips(self):
        meter = Budget(max_nodes=10).start()
        assert meter.tripped(9, 0, 0) is None
        assert meter.tripped(10, 0, 0) == TruncationReason.NODES

    def test_path_cap_trips(self):
        meter = Budget(max_paths=3).start()
        assert meter.tripped(1, 2, 0) is None
        assert meter.tripped(2, 3, 0) == TruncationReason.PATHS

    def test_depth_cap_trips(self):
        meter = Budget(max_stack_depth=4).start()
        assert meter.tripped(1, 0, 3) is None
        assert meter.tripped(2, 0, 4) == TruncationReason.DEPTH

    def test_deadline_trips_on_virtual_clock(self):
        clock = FakeClock()
        meter = Budget(
            max_seconds=1.0, clock=clock, check_interval=1
        ).start()
        assert meter.tripped(1, 0, 0) is None
        clock.advance(2.0)
        assert meter.tripped(2, 0, 0) == TruncationReason.DEADLINE

    def test_deadline_sampling_starts_at_stride_one(self):
        clock = FakeClock()
        meter = Budget(
            max_seconds=1.0, clock=clock, check_interval=4
        ).start()
        clock.advance(5.0)  # already past the deadline...
        # ...and the adaptive stride starts at 1, so the very first
        # check reads the clock and trips — a blown deadline is never
        # carried for check_interval - 1 further calls.
        assert meter.tripped(1, 0, 0) == TruncationReason.DEADLINE

    def test_deadline_sampling_widens_while_inside_deadline(self):
        reads = 0
        clock = FakeClock()

        def counting_clock() -> float:
            nonlocal reads
            reads += 1
            return clock()

        meter = Budget(
            max_seconds=1.0, clock=counting_clock, check_interval=64
        ).start()
        # Far from the deadline the stride grows geometrically toward
        # check_interval: 1000 cheap calls cost far fewer clock reads.
        for call in range(1, 1001):
            clock.advance(0.00001)
            assert meter.tripped(call, 0, 0) is None
        assert reads < 100

    def test_trip_reason_latches(self):
        meter = Budget(max_nodes=5).start()
        assert meter.tripped(5, 0, 0) == TruncationReason.NODES
        # Lower counts later cannot un-trip a shared meter.
        assert meter.tripped(0, 0, 0) == TruncationReason.NODES
        assert meter.reason == TruncationReason.NODES

    def test_check_deadline_now_bypasses_sampling(self):
        clock = FakeClock()
        meter = Budget(
            max_seconds=1.0, clock=clock, check_interval=1000
        ).start()
        assert meter.check_deadline_now() is None
        clock.advance(1.5)
        assert meter.check_deadline_now() == TruncationReason.DEADLINE

    def test_elapsed_and_remaining_on_virtual_clock(self):
        clock = FakeClock(start=10.0)
        meter = Budget(max_seconds=4.0, clock=clock).start()
        clock.advance(1.0)
        assert meter.elapsed_seconds() == pytest.approx(1.0)
        assert meter.remaining_seconds() == pytest.approx(3.0)
        clock.advance(10.0)
        assert meter.remaining_seconds() == 0.0

    def test_remaining_is_none_without_deadline(self):
        assert Budget(max_nodes=5).start().remaining_seconds() is None

    def test_meter_repr_mentions_trip_state(self):
        meter = Budget(max_nodes=1).start()
        assert "tripped=no" in repr(meter)
        meter.tripped(1, 0, 0)
        assert "tripped=nodes" in repr(meter)


class TestTruncationReason:
    def test_meter_reasons_are_enumerated(self):
        assert set(TruncationReason.ALL) == {
            "deadline",
            "nodes",
            "paths",
            "depth",
            "cancelled",
        }

    def test_degraded_reason_carries_the_e_level(self):
        assert TruncationReason.degraded(2) == "degraded:e=2"


class TestAmbientBudget:
    def test_default_is_none(self):
        assert get_budget() is None

    def test_use_budget_installs_and_restores(self):
        budget = Budget(max_nodes=5)
        with use_budget(budget):
            assert get_budget() is budget
        assert get_budget() is None

    def test_nested_scopes_restore_outer(self):
        outer, inner = Budget(max_nodes=5), Budget(max_nodes=7)
        with use_budget(outer):
            with use_budget(inner):
                assert get_budget() is inner
            assert get_budget() is outer

    def test_none_explicitly_clears_an_outer_budget(self):
        with use_budget(Budget(max_nodes=5)):
            with use_budget(None):
                assert get_budget() is None
