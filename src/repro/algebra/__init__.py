"""Path algebra: connectors, CON, AGG, the better-than order, caution sets.

This package implements Section 3 of the paper — the labeled path
algebra that the completion algorithm (``repro.core.completion``) runs
on top of.
"""

from repro.algebra.agg import Aggregator, agg, agg_star, dominates
from repro.algebra.caution import CautionSets, compute_caution_sets
from repro.algebra.con_table import BASE_TABLE, con_c, con_c_sequence
from repro.algebra.connectors import (
    ALL_CONNECTORS,
    PRIMARY_CONNECTORS,
    SECONDARY_CONNECTORS,
    Connector,
    connector_for_kind,
    parse_connector,
)
from repro.algebra.labels import IDENTITY_LABEL, PathLabel, con
from repro.algebra.order import (
    DEFAULT_ORDER,
    PartialOrder,
    default_order,
    flat_order,
    rank_order,
    total_order,
)
from repro.algebra.semantic_length import (
    SemanticLengthState,
    collapse_runs,
    semantic_length_of,
)

__all__ = [
    "ALL_CONNECTORS",
    "Aggregator",
    "BASE_TABLE",
    "CautionSets",
    "Connector",
    "DEFAULT_ORDER",
    "IDENTITY_LABEL",
    "PRIMARY_CONNECTORS",
    "PartialOrder",
    "PathLabel",
    "SECONDARY_CONNECTORS",
    "SemanticLengthState",
    "agg",
    "agg_star",
    "collapse_runs",
    "con",
    "con_c",
    "con_c_sequence",
    "compute_caution_sets",
    "connector_for_kind",
    "default_order",
    "dominates",
    "flat_order",
    "parse_connector",
    "rank_order",
    "semantic_length_of",
    "total_order",
]
