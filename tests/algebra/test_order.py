"""Tests for the better-than partial order (Figure 3 reconstruction)."""

import pytest

from repro.algebra.connectors import ALL_CONNECTORS, Connector
from repro.algebra.order import (
    DEFAULT_ORDER,
    default_order,
    flat_order,
    rank_order,
    total_order,
)
from repro.algebra.properties import (
    check_paper_incomparability_constraints,
    check_partial_order_axioms,
)

ISA = Connector.ISA
MAY = Connector.MAY_BE
HP = Connector.HAS_PART
PO = Connector.IS_PART_OF
AS = Connector.ASSOC
SB = Connector.SHARES_SUBPARTS
SP = Connector.SHARES_SUPERPARTS
IN = Connector.INDIRECT_ASSOC


class TestDefaultOrderAxioms:
    def test_is_a_strict_partial_order(self):
        assert check_partial_order_axioms(DEFAULT_ORDER) == []

    def test_satisfies_the_papers_incomparability_constraints(self):
        assert check_paper_incomparability_constraints(DEFAULT_ORDER) == []


class TestDefaultOrderShape:
    def test_isa_beats_every_non_taxonomic_connector(self):
        for connector in ALL_CONNECTORS:
            if connector.is_taxonomic:
                continue
            assert DEFAULT_ORDER.better(ISA, connector), connector.symbol

    def test_isa_and_maybe_are_incomparable(self):
        assert DEFAULT_ORDER.incomparable(ISA, MAY)

    def test_part_whole_beats_association(self):
        assert DEFAULT_ORDER.better(HP, AS)
        assert DEFAULT_ORDER.better(PO, AS)

    def test_association_beats_sharing(self):
        assert DEFAULT_ORDER.better(AS, SB)
        assert DEFAULT_ORDER.better(AS, SP)

    def test_sharing_beats_indirect(self):
        assert DEFAULT_ORDER.better(SB, IN)
        assert DEFAULT_ORDER.better(SP, IN)

    def test_inverses_are_incomparable(self):
        assert DEFAULT_ORDER.incomparable(HP, PO)
        assert DEFAULT_ORDER.incomparable(SB, SP)

    def test_plain_vs_its_possibly_incomparable(self):
        assert DEFAULT_ORDER.incomparable(HP, HP.possibly)
        assert DEFAULT_ORDER.incomparable(AS, AS.possibly)

    def test_possibly_sits_between_its_base_level_and_the_next(self):
        # plain has-part beats possibly-assoc; possibly-has-part beats assoc
        assert DEFAULT_ORDER.better(HP, AS.possibly)
        assert DEFAULT_ORDER.better(HP.possibly, AS)

    def test_possibly_inverse_pairs_are_incomparable(self):
        assert DEFAULT_ORDER.incomparable(HP, PO.possibly)
        assert DEFAULT_ORDER.incomparable(HP.possibly, PO.possibly)

    def test_minimal_picks_unbeaten_connectors(self):
        assert DEFAULT_ORDER.minimal({ISA, HP, IN}) == {ISA}
        assert DEFAULT_ORDER.minimal({HP, PO}) == {HP, PO}
        assert DEFAULT_ORDER.minimal(set()) == set()


class TestVariants:
    def test_flat_order_compares_nothing(self):
        order = flat_order()
        for first in ALL_CONNECTORS:
            for second in ALL_CONNECTORS:
                assert not order.better(first, second)

    def test_flat_order_is_a_valid_partial_order(self):
        assert check_partial_order_axioms(flat_order()) == []

    def test_rank_order_is_a_valid_partial_order(self):
        assert check_partial_order_axioms(rank_order()) == []
        assert check_partial_order_axioms(rank_order(strict_possibly=True)) == []

    def test_total_order_compares_almost_everything(self):
        order = total_order()
        comparable_pairs = sum(
            1
            for first in ALL_CONNECTORS
            for second in ALL_CONNECTORS
            if first is not second and order.comparable(first, second)
        )
        assert comparable_pairs == 14 * 13

    def test_total_order_violates_paper_constraints(self):
        # the point of the ablation: forcing totality breaks Figure 3
        assert check_paper_incomparability_constraints(total_order()) != []

    def test_default_order_factory_matches_module_default(self):
        assert default_order().pairs() == DEFAULT_ORDER.pairs()


class TestBeatsMap:
    def test_beats_map_mirrors_better(self):
        beats = DEFAULT_ORDER.beats_map()
        for first in ALL_CONNECTORS:
            for second in ALL_CONNECTORS:
                assert (second in beats[first]) == DEFAULT_ORDER.better(
                    first, second
                )

    def test_repr_mentions_name(self):
        assert "default" in repr(DEFAULT_ORDER)
