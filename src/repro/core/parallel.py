"""Worker-pool helpers for fanning a completion workload out.

:meth:`Disambiguator.complete_batch` is the strict entry point — input
order, one result per input, exceptions propagated.  This module holds
the forgiving variant the query evaluators and experiment harness use:
:func:`prewarm` runs a set of expressions through an engine purely to
fill the artifact's shared completion cache, swallowing per-expression
:class:`~repro.errors.ReproError` so the failure surfaces later at the
point of use, exactly where the sequential code would have raised it.

Two backends, selected by the ``executor`` knob (default ``"thread"``,
env ``REPRO_EXECUTOR``):

* **Threads** cost nothing to start and share the artifact cache
  in-place, but a cold completion is a pure-Python search loop holding
  the GIL, so thread workers mostly interleave rather than overlap.
  They win when the cache is already warm, the schema is tiny, or the
  batch is too small to amortize any pool start-up.
* **Processes** (:mod:`repro.core.procpool`) shard the cold misses
  across cores.  Warming is exactly the workload that justifies the
  hand-off cost: by definition it is a batch of cold completions, and
  the adopted entries land in the same shared cache the sequential
  pass reads.  When ambient state cannot cross the pickle boundary
  (live tracer/audit/slow-log, cancel-bearing budgets) the call falls
  back to threads automatically.
"""

from __future__ import annotations

import concurrent.futures
import contextvars
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.procpool import process_batch, resolve_executor
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - circular at runtime
    from repro.core.ast import PathExpression
    from repro.core.engine import Disambiguator

__all__ = ["prewarm"]


def prewarm(
    engine: "Disambiguator",
    expressions: Iterable["str | PathExpression"],
    jobs: int,
    executor: str | None = None,
) -> int:
    """Complete ``expressions`` concurrently to warm the shared cache.

    Returns the number of expressions that completed (exhaustively or
    not); expressions raising a :class:`~repro.errors.ReproError` are
    skipped — a caller's own sequential pass will hit the same error at
    its usual place with its usual handling (retries, per-query error
    records, ...).  Duplicate expressions are submitted once, on either
    backend.  Thread workers run in a copy of the calling thread's
    context, so ambient budgets, metrics, and tracers govern the
    warming runs too; the process backend recreates the effective
    budget worker-side and falls back to threads when ambient state
    cannot cross the process boundary.

    With ``jobs <= 1`` this is a no-op returning 0: the sequential pass
    is about to do the same work anyway, so there is nothing to overlap.
    """
    if jobs <= 1:
        return 0
    unique = list(dict.fromkeys(expressions))
    if not unique:
        return 0
    if resolve_executor(executor) == "process":
        warmed = _prewarm_process(engine, unique, jobs)
        if warmed is not None:
            return warmed

    def complete_one(expression) -> bool:
        try:
            engine.complete(expression)
        except ReproError:
            return False
        return True

    with concurrent.futures.ThreadPoolExecutor(
        max_workers=jobs, thread_name_prefix="repro-prewarm"
    ) as pool:
        futures = [
            pool.submit(
                contextvars.copy_context().run, complete_one, expression
            )
            for expression in unique
        ]
        return sum(future.result() for future in futures)


def _prewarm_process(
    engine: "Disambiguator",
    unique: "list[str | PathExpression]",
    jobs: int,
) -> int | None:
    """Warm via the process backend; ``None`` → fall back to threads.

    Unparseable expressions count as skipped without being dispatched
    (parse errors cannot cross the pickle boundary, and the sequential
    pass will re-raise them at the point of use anyway).
    """
    from repro.core.parser import parse_path_expression

    texts: list[str] = []
    for expression in unique:
        try:
            if isinstance(expression, str):
                expression = parse_path_expression(expression)
        except ReproError:
            continue
        texts.append(str(expression))
    if not texts:
        return 0
    outcomes = process_batch(
        engine, texts, jobs, engine._effective_budget(None)
    )
    if outcomes is None:
        return None
    cache = engine.compiled.cache
    warmed = 0
    for outcome in outcomes:
        if outcome[0] == "err":
            continue
        if outcome[0] == "ok":
            for key, value in outcome[2]:
                cache.put(key, value)
        warmed += 1
    return warmed
