"""Tests for the cooperative cancel signal (satellite of the drain
path): a :class:`CancelSignal` threaded into a :class:`Budget` must
trip the meter on the very next ``tripped()`` call — every expansion
checks it, not just the sampled clock reads."""

import threading

import pytest

from repro.core.completion import CompletionSearch
from repro.core.compiled import CompiledSchema
from repro.core.engine import RelationshipTarget
from repro.resilience.budget import (
    Budget,
    CancelSignal,
    TruncationReason,
)
from repro.errors import BudgetExceededError
from repro.resilience.faults import FakeClock
from repro.schemas.cupid import build_cupid_schema


class TestCancelSignal:
    def test_starts_unset(self):
        signal = CancelSignal()
        assert not signal.cancelled
        assert signal.reason == TruncationReason.CANCELLED

    def test_cancel_is_idempotent(self):
        signal = CancelSignal()
        signal.cancel()
        signal.cancel()
        assert signal.cancelled

    def test_custom_reason(self):
        signal = CancelSignal()
        signal.cancel(reason="deadline")
        assert signal.cancelled
        assert signal.reason == "deadline"

    def test_repr_tracks_state(self):
        signal = CancelSignal()
        assert "armed" in repr(signal)
        signal.cancel()
        assert "cancelled" in repr(signal)

    def test_cancelled_is_in_the_reason_enumeration(self):
        assert TruncationReason.CANCELLED in TruncationReason.ALL


class TestCancellableBudget:
    def test_cancel_only_budget_is_not_unlimited(self):
        # is_unlimited gates meter creation in the engine — a budget
        # that can be cancelled must always arm a meter.
        assert Budget().is_unlimited
        assert not Budget(cancel=CancelSignal()).is_unlimited

    def test_unfired_signal_never_trips(self):
        meter = Budget(cancel=CancelSignal()).start()
        for step in range(100):
            assert meter.tripped(step, 0, 0) is None

    def test_fired_signal_trips_on_the_next_check(self):
        signal = CancelSignal()
        meter = Budget(
            cancel=signal, max_seconds=1000.0, check_interval=1_000_000
        ).start()
        assert meter.tripped(1, 0, 0) is None
        signal.cancel()
        # The cancel check is unconditional — it does not wait for the
        # adaptive deadline-sampling stride to come around.
        assert meter.tripped(2, 0, 0) == TruncationReason.CANCELLED

    def test_trip_reason_latches(self):
        signal = CancelSignal()
        meter = Budget(cancel=signal).start()
        signal.cancel()
        assert meter.tripped(1, 0, 0) == TruncationReason.CANCELLED
        assert meter.reason == TruncationReason.CANCELLED
        assert meter.tripped(0, 0, 0) == TruncationReason.CANCELLED

    def test_custom_reason_propagates_to_meter(self):
        signal = CancelSignal()
        signal.cancel(reason="deadline")
        meter = Budget(cancel=signal).start()
        assert meter.tripped(1, 0, 0) == "deadline"

    def test_check_deadline_now_sees_the_cancel(self):
        signal = CancelSignal()
        clock = FakeClock()
        meter = Budget(
            cancel=signal, max_seconds=100.0, clock=clock
        ).start()
        assert meter.check_deadline_now() is None
        signal.cancel()
        assert meter.check_deadline_now() == TruncationReason.CANCELLED

    def test_cancel_fires_across_threads(self):
        signal = CancelSignal()
        meter = Budget(cancel=signal).start()
        seen = threading.Event()

        def spin():
            while meter.tripped(1, 0, 0) is None:
                pass
            seen.set()

        worker = threading.Thread(target=spin)
        worker.start()
        signal.cancel()
        worker.join(timeout=5.0)
        assert seen.is_set()
        assert meter.reason == TruncationReason.CANCELLED


class TestCancelledSearch:
    @pytest.fixture()
    def compiled(self):
        return CompiledSchema(build_cupid_schema())

    def test_prefired_cancel_yields_partial_result(self, compiled):
        budget = Budget(cancel=_fired(), partial_ok=True)
        search = CompletionSearch(compiled.graph, order=compiled.order, e=1)
        result = search.run(
            "experiment", RelationshipTarget("conductance"), budget=budget
        )
        assert not result.exhausted
        assert result.truncation_reason == TruncationReason.CANCELLED

    def test_prefired_cancel_without_partial_raises(self, compiled):
        budget = Budget(cancel=_fired())
        search = CompletionSearch(compiled.graph, order=compiled.order, e=1)
        with pytest.raises(BudgetExceededError) as info:
            search.run(
                "experiment", RelationshipTarget("conductance"), budget=budget
            )
        assert info.value.reason == TruncationReason.CANCELLED


def _fired() -> CancelSignal:
    signal = CancelSignal()
    signal.cancel()
    return signal
