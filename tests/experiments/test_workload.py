"""Tests validating the calibrated CUPID workload against the schema and
the algorithm — the workload's intent strings are pinned fixtures, so
these tests fail loudly if the schema or the algorithm drifts."""

import pytest

from repro.core.engine import Disambiguator
from repro.core.parser import parse_path_expression
from repro.experiments.workload import (
    ABSTRACT_UMBRELLA_CLASSES,
    build_cupid_workload,
    designer_domain_knowledge,
)


@pytest.fixture(scope="module")
def oracle():
    return build_cupid_workload()


class TestShape:
    def test_ten_queries(self, oracle):
        assert len(oracle) == 10

    def test_all_queries_are_simple_incomplete(self, oracle):
        for query in oracle:
            expression = parse_path_expression(query.text)
            assert expression.is_simple_incomplete

    def test_exactly_two_idiosyncratic_intents(self, oracle):
        """q09 and q10 carry the flat-90%-recall misses."""
        multi_intent = [q for q in oracle if len(q.intended) > 1]
        assert {q.query_id for q in multi_intent} == {"q02", "q09", "q10"}


class TestIntentValidity:
    def test_every_intent_is_a_valid_complete_expression(
        self, cupid, oracle
    ):
        engine = Disambiguator(cupid)
        for query in oracle:
            for text in query.intended + query.also_plausible:
                expression = parse_path_expression(text)
                assert expression.is_complete, text
                result = engine.complete(expression)  # validates steps
                assert result.expressions == [text]

    def test_intents_are_consistent_with_their_query(self, oracle):
        for query in oracle:
            incomplete = parse_path_expression(query.text)
            for text in query.intended + query.also_plausible:
                complete = parse_path_expression(text)
                assert complete.root == incomplete.root, text
                assert complete.last_name == incomplete.last_name, text


class TestCalibration:
    def test_findable_intents_are_returned_at_e1(self, cupid_engine, oracle):
        idiosyncratic = {
            "simulation<$experiment.investigator.curates.name",
            "phenology$>growth_stage.fruit.dry_mass",
        }
        for query in oracle:
            returned = set(
                cupid_engine.complete(query.text).expressions
            )
            findable = set(query.intended) - idiosyncratic
            assert findable <= returned, query.query_id

    def test_idiosyncratic_intents_never_returned(self, cupid, oracle):
        """The two engineered misses stay out of S at every E we sweep —
        the source of the flat 90% recall."""
        for e in (1, 2, 3):
            engine = Disambiguator(cupid, e=e)
            q09 = set(engine.complete("simulation ~ name").expressions)
            assert (
                "simulation<$experiment.investigator.curates.name" not in q09
            )
            q10 = set(engine.complete("phenology ~ dry_mass").expressions)
            assert "phenology$>growth_stage.fruit.dry_mass" not in q10

    def test_e1_returns_exactly_the_findable_intent_sets(
        self, cupid_engine, oracle
    ):
        """Precision 100% at E=1: S is a subset of U for every query."""
        for query in oracle:
            returned = cupid_engine.complete(query.text).expressions
            intent = query.final_intent(returned)
            assert set(returned) <= intent, query.query_id


class TestDomainKnowledge:
    def test_validates_against_cupid(self, cupid):
        assert designer_domain_knowledge().validate_against(cupid) == []

    def test_excludes_hubs_and_umbrellas(self):
        knowledge = designer_domain_knowledge()
        assert "units_registry" in knowledge.excluded_classes
        assert set(ABSTRACT_UMBRELLA_CLASSES) <= knowledge.excluded_classes

    def test_no_intent_routes_through_excluded_classes(self, cupid, oracle):
        """Exclusion must not hurt recall (the paper's observation), so
        no intended completion may visit an excluded class."""
        engine = Disambiguator(cupid)
        excluded = designer_domain_knowledge().excluded_classes
        for query in oracle:
            for text in query.intended:
                path = engine.complete(text).paths[0]
                assert excluded.isdisjoint(path.classes()), text
