"""Inheritance semantics over a schema (paper Section 2.1).

An *Isa* relationship makes a subclass inherit all the relationships of
its superclass; the subclass may refine them and add its own.  Multiple
inheritance is allowed.  This module computes:

* ancestor / descendant closures of the Isa graph;
* the *effective* relationships of a class — its own plus everything
  inherited, with subclass declarations shadowing (refining) inherited
  ones of the same name, and nearer ancestors shadowing farther ones;
* linearized ancestor orders used to detect multiple-inheritance
  ambiguities (the case the paper's Inheritance Semantics Criterion
  leaves to the user).
"""

from __future__ import annotations

from collections import deque

from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship
from repro.model.schema import Schema

__all__ = [
    "ancestors",
    "descendants",
    "is_subclass_of",
    "isa_edges",
    "effective_relationships",
    "resolve_inherited",
    "inheritance_depth",
]


def isa_edges(schema: Schema) -> list[tuple[str, str]]:
    """All direct Isa edges as ``(subclass, superclass)`` pairs, sorted.

    The inheritance graph at edge granularity — the view delta scripts
    and edit sessions work with when adding or removing single
    inheritance edges.
    """
    return sorted(
        (rel.source, rel.target)
        for rel in schema.relationships()
        if rel.kind is RelationshipKind.ISA
    )


def ancestors(schema: Schema, name: str) -> list[str]:
    """All (transitive) superclasses of ``name`` in BFS order.

    BFS order means nearer ancestors come first, which is the shadowing
    order used by :func:`effective_relationships`.  The class itself is
    not included.
    """
    seen: dict[str, None] = {}
    queue = deque(schema.isa_parents(name))
    while queue:
        current = queue.popleft()
        if current in seen:
            continue
        seen[current] = None
        queue.extend(schema.isa_parents(current))
    return list(seen)


def descendants(schema: Schema, name: str) -> list[str]:
    """All (transitive) subclasses of ``name`` in BFS order."""
    seen: dict[str, None] = {}
    queue = deque(schema.isa_children(name))
    while queue:
        current = queue.popleft()
        if current in seen:
            continue
        seen[current] = None
        queue.extend(schema.isa_children(current))
    return list(seen)


def is_subclass_of(schema: Schema, sub: str, sup: str) -> bool:
    """True if ``sub`` is ``sup`` or a transitive subclass of it."""
    return sub == sup or sup in ancestors(schema, sub)


def inheritance_depth(schema: Schema, sub: str, sup: str) -> int | None:
    """Length of the shortest Isa chain from ``sub`` up to ``sup``.

    Returns 0 when the two names are equal and None when ``sup`` is not
    an ancestor of ``sub``.
    """
    if sub == sup:
        return 0
    depth = 1
    frontier = set(schema.isa_parents(sub))
    seen = set(frontier)
    while frontier:
        if sup in frontier:
            return depth
        next_frontier: set[str] = set()
        for node in frontier:
            for parent in schema.isa_parents(node):
                if parent not in seen:
                    seen.add(parent)
                    next_frontier.add(parent)
        frontier = next_frontier
        depth += 1
    return None


def effective_relationships(schema: Schema, name: str) -> dict[str, Relationship]:
    """The relationships visible on ``name``, inherited ones included.

    A relationship declared on the class itself shadows any inherited
    relationship of the same name; among ancestors, nearer ones shadow
    farther ones (BFS order).  When two *equally near* ancestors both
    supply a name, the first-declared Isa edge wins here — the completion
    algorithm itself surfaces such multiple-inheritance conflicts to the
    user instead (paper Section 4.3).
    """
    effective: dict[str, Relationship] = {}
    for rel in schema.relationships_from(name):
        effective[rel.name] = rel
    for ancestor in ancestors(schema, name):
        for rel in schema.relationships_from(ancestor):
            effective.setdefault(rel.name, rel)
    return effective


def resolve_inherited(
    schema: Schema, name: str, relationship_name: str
) -> Relationship | None:
    """Resolve ``relationship_name`` on ``name`` through inheritance.

    Returns the declaring :class:`Relationship` (which may live on an
    ancestor class) or None if no class on the Isa-upward closure declares
    it.
    """
    return effective_relationships(schema, name).get(relationship_name)
