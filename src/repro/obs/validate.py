"""Validate exported observability artifacts against the checked-in
schemas.

Usage::

    python -m repro.obs.validate FILE [FILE ...]

``*.jsonl`` files are treated as JSON-lines trace logs, everything else
as a metrics summary document.  Exit status 0 when every file conforms,
1 otherwise — CI runs this over the quick-bench exports so a format
drift fails the build until the schema files are updated deliberately.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.schema import (
    SchemaValidationError,
    validate_metrics_summary,
    validate_trace_events,
)

__all__ = ["main"]


def _validate_file(path: str) -> list[str]:
    """Problems found in one file (empty = valid)."""
    try:
        with open(path, encoding="utf-8") as handle:
            if path.endswith(".jsonl"):
                records = [
                    json.loads(line)
                    for line in handle
                    if line.strip()
                ]
                validate_trace_events(records)
            else:
                validate_metrics_summary(json.load(handle))
    except FileNotFoundError:
        return [f"{path}: file not found"]
    except json.JSONDecodeError as error:
        return [f"{path}: not valid JSON ({error})"]
    except SchemaValidationError as error:
        return [f"{path}: {problem}" for problem in error.problems]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help="metrics summary (.json) or trace log (.jsonl) to validate",
    )
    args = parser.parse_args(argv)
    failed = False
    for path in args.files:
        problems = _validate_file(path)
        if problems:
            failed = True
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            kind = "trace log" if path.endswith(".jsonl") else "metrics summary"
            print(f"{path}: valid {kind}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
