"""The flat search kernel — an integer-specialized expansion loop.

:meth:`CompletionSearch._traverse_closure
<repro.core.completion.CompletionSearch._traverse_closure>` is the hot
loop of every cold completion, and even after the closure-pruning win it
spends most of its time on CPython object traffic: ``PathLabel``
attribute chains, per-entry :class:`~repro.core.ast.ConcretePath`
allocation, string-keyed ``visited``/``best[u]`` containers.  This
module is a byte-identical rewrite of that loop over dense integers:

* nodes are closure indexes, ``visited`` is one int bitset;
* a path label is a single small int — the *lstate* — encoding
  ``(composed connector index, seam class of the last edge)``; label
  composition and the :meth:`SemanticLengthState.join
  <repro.algebra.semantic_length.SemanticLengthState.join>` seam
  arithmetic are precomputed into flat lookup tables
  (:data:`EXT_LSTATE`, :data:`EXT_DELTA`) at import time;
* adjacency comes preflattened per node
  (:class:`FlatTables`) so the inner loop unpacks int tuples only;
* ``best[u]`` and the ``best[T]`` frontier are the same AGG*-reduced
  ``(length, sort rank, connector index)`` triples the interpreted
  closure loop already uses, held in index-addressed lists;
* complete paths are recorded as ``(edge prefix, edge, connector,
  length)`` tuples and materialized into :class:`ConcretePath` objects
  (with their labels preset) only after the traversal.

Selection is the ``kernel`` knob — ``"interpreted"`` (default) or
``"flat"`` — resolved like ``pruning``: explicit argument, else the
``REPRO_KERNEL`` environment variable.  The knob is part of searcher
and completion-cache keys, so A/B runs never serve each other warm.
The flat kernel only ever runs where the closure loop would
(``pruning="closure"``, static adjacency, closure tables built) and the
interpreted loops remain the reference; equivalence — identical ranked
paths, labels, stats counters, and truncation behavior — is
property-tested in ``tests/core/test_kernel.py``.

An optionally compiled twin (mypyc or Cython, built by ``python -m
repro.core.kernel compile``) is imported when present; absence is not
an error — the pure-Python kernel is the always-available fallback and
:func:`kernel_backend` reports which one is live.

The audit log instruments the interpreted loops' decision sites;
running flat would silence it, so audited searches always take the
interpreted path (the dispatch in ``CompletionSearch._traverse``).
"""

from __future__ import annotations

import os

from repro.algebra.connectors import ALL_CONNECTORS, PRIMARY_CONNECTORS
from repro.algebra.labels import PathLabel
from repro.algebra.semantic_length import _TAXONOMIC, SemanticLengthState
from repro.core.ast import ConcretePath
from repro.core.closure import (
    _CONI,
    _LAST_CLASS_BY_INDEX,
    _LAST_OTHER,
    _N_CONNECTORS,
    _SORT_RANK,
    _seam_adjustment,
    SchemaClosure,
    TargetTables,
)

__all__ = [
    "KERNEL_MODES",
    "KERNEL_ENV_VAR",
    "FlatTables",
    "KernelBudgetTrip",
    "kernel_backend",
    "resolve_kernel",
    "run_flat",
]

#: Accepted values of the ``kernel`` knob.
KERNEL_MODES = ("interpreted", "flat")

#: Environment override consulted when no explicit mode is given — CI's
#: flat matrix leg runs the whole suite with ``REPRO_KERNEL=flat``.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Cutoff sentinel, shared with the interpreted loop's table semantics.
_NO_CUTOFF = 1 << 30


def resolve_kernel(kernel: str | None) -> str:
    """Resolve the ``kernel`` knob: explicit value, else the
    ``REPRO_KERNEL`` environment override, else ``"interpreted"``."""
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV_VAR) or "interpreted"
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"kernel must be one of {KERNEL_MODES}, got {kernel!r}"
        )
    return kernel


class KernelBudgetTrip(Exception):
    """Internal control flow: unwinds the flat loop on a tripped meter.

    The flat kernel's twin of the interpreted loops' ``_BudgetTrip``;
    caught in ``CompletionSearch._traverse`` and converted into the
    anytime truncation reason.  (Defined here, not imported from
    ``completion``, so the dependency arrow stays completion → kernel.)
    """

    def __init__(self, reason: str) -> None:
        self.reason = reason


# ----------------------------------------------------------------------
# The lstate encoding and its composition tables
# ----------------------------------------------------------------------
#
# A traversal label is fully determined, for every decision the loop
# makes, by (composed connector index, semantic length, seam class of
# the last collapsed edge).  The length is carried separately as an
# int; the other two pack into one *lstate*:
#
#     lstate = connector_index * 6 + ls,   ls = 0 (empty path)
#                                               or seam class + 1
#
# giving 14 * 6 = 84 states.  IDENTITY_LABEL is lstate 0 (ISA has
# index 0, empty state).  Extending by an edge with connector c moves
# to ``EXT_LSTATE[lstate * 14 + c]`` and adds ``EXT_DELTA[...]`` to the
# length — exactly ``label.extend(c)``'s connector composition and
# seam arithmetic, precomputed.

_N_LSTATES = _N_CONNECTORS * 6


def _build_ext_tables() -> tuple[tuple[int, ...], tuple[int, ...]]:
    ext_lstate = [0] * (_N_LSTATES * _N_CONNECTORS)
    ext_delta = [0] * (_N_LSTATES * _N_CONNECTORS)
    for ci in range(_N_CONNECTORS):
        for ls in range(6):
            base_index = (ci * 6 + ls) * _N_CONNECTORS
            for c in range(_N_CONNECTORS):
                edge_conn = ALL_CONNECTORS[c]
                delta = 0 if edge_conn in _TAXONOMIC else 1
                if ls > 0 and ls - 1 != _LAST_OTHER:
                    # Classes 0..3 are the singleton collapsible
                    # connectors, so the class representative *is* the
                    # last connector; class 4 ("other") always seams 0.
                    delta += _seam_adjustment(
                        PRIMARY_CONNECTORS[ls - 1], edge_conn
                    )
                ext_lstate[base_index + c] = _CONI[ci][c] * 6 + (
                    _LAST_CLASS_BY_INDEX[c] + 1
                )
                ext_delta[base_index + c] = delta
    return tuple(ext_lstate), tuple(ext_delta)


#: ``EXT_LSTATE[lstate * 14 + c]`` — the lstate after extending by an
#: edge with connector index ``c``.
#: ``EXT_DELTA[lstate * 14 + c]`` — the semantic-length increment of
#: that extension (``base(c) + seam(last, c)``, always 0, 1, or -1+1).
EXT_LSTATE, EXT_DELTA = _build_ext_tables()

#: Composed connector index of an lstate (``lstate // 6``).
CI_OF: tuple[int, ...] = tuple(
    lstate // 6 for lstate in range(_N_LSTATES)
)

#: Label-bound row base of an lstate: ``last class * 14``, the offset
#: into ``TargetTables.rows[u]`` for a prefix in this state.  Only
#: meaningful for non-empty lstates (``ls > 0``); the traversal never
#: bound-checks the empty root label.
LB_ROWBASE: tuple[int, ...] = tuple(
    (max(lstate % 6 - 1, 0)) * _N_CONNECTORS for lstate in range(_N_LSTATES)
)


class FlatTables:
    """Per-(closure, target) adjacency preflattened for the flat loop.

    Built once from a :class:`~repro.core.closure.TargetTables` and
    cached by the owning search (the tables are themselves memoized per
    target, so this adds one small build per (schema, target) pair):

    * ``completing[u]`` — tuples ``(target node index, connector index,
      edge)`` for the completing edges out of node ``u``;
    * ``interior[u]`` — tuples ``(child index, connector index, edge)``
      for the reachability-surviving interior edges;
    * ``rows``, ``conns``, ``reach_pruned`` — shared with the
      interpreted loop's tables (already index-addressed).
    """

    __slots__ = ("completing", "interior", "rows", "conns", "reach_pruned")

    def __init__(
        self,
        completing: tuple,
        interior: tuple,
        rows,
        conns,
        reach_pruned,
    ) -> None:
        self.completing = completing
        self.interior = interior
        self.rows = rows
        self.conns = conns
        self.reach_pruned = reach_pruned

    @classmethod
    def build(
        cls, closure: SchemaClosure, tables: TargetTables
    ) -> "FlatTables":
        index = closure.index
        completing = tuple(
            tuple(
                (index[edge_target], connector_i, edge)
                for edge, edge_target, connector_i in row
            )
            for row in tables.completing
        )
        interior = tuple(
            tuple(
                (child_i, connector_i, edge)
                for _child, child_i, connector_i, edge in row
            )
            for row in tables.interior
        )
        return cls(
            completing,
            interior,
            tables.rows,
            tables.conns,
            tables.reach_pruned,
        )


# ----------------------------------------------------------------------
# The flat expansion loop
# ----------------------------------------------------------------------


def run_flat(
    root: str,
    root_i: int,
    state,
    flat: FlatTables,
    aggregator,
    caution_masks,
    max_depth: int | None,
    meter,
) -> None:
    """Algorithm 2 with closure cuts, on flat integer state.

    Byte-identical in results *and* stats counters to
    ``CompletionSearch._traverse_closure`` (the interpreted closure
    loop) — the best[u] triple update, the cutoff-table rewrite of
    ``keeps`` against ``best[T]``, and both cut rules are literal
    translations; only the data representation changes.  Fills
    ``state.complete`` and ``state.stats`` (also on a budget trip, so
    truncation keeps the best-so-far anytime answer) and raises
    :class:`KernelBudgetTrip` when ``meter`` trips.
    """
    stats = state.stats
    complete = state.complete
    e_param = aggregator.e
    beaten_by = aggregator.beaten_by
    sort_rank = _SORT_RANK
    coni = _CONI
    ext_lstate = EXT_LSTATE
    ext_delta = EXT_DELTA
    ci_of = CI_OF
    lb_rowbase = LB_ROWBASE
    n_conn = _N_CONNECTORS
    no_cutoff = _NO_CUTOFF
    # Depth sentinel: one compare per edge instead of a None test plus
    # a compare (the bound is unreachable when max_depth is None).
    depth_limit = no_cutoff if max_depth is None else max_depth
    completing = flat.completing
    interior = flat.interior
    reach_pruned = flat.reach_pruned
    rows_ = flat.rows
    conns = flat.conns

    visited = 0
    best: list = [None] * len(interior)
    bt: list = []  # best[T] as AGG*-reduced triples
    bt_mask = 0
    bt_dirty = False
    cutoffs = [no_cutoff] * n_conn
    # Recorded complete paths: (edge prefix tuple, completing edge,
    # composed connector index, semantic length), materialized at exit.
    complete_rec: list = []
    complete_rec_append = complete_rec.append

    recursive_calls = 0
    edges_considered = 0
    pruned_visited = 0
    pruned_target_bound = 0
    pruned_best_bound = 0
    rescued_by_caution = 0
    nodes_pruned_reachability = 0
    nodes_pruned_bound = 0

    path_edges: list = []
    path_edges_append = path_edges.append
    path_edges_pop = path_edges.pop
    stack: list = []
    stack_append = stack.append
    stack_pop = stack.pop

    try:
        # -- enter(root): lines 1-5 on the identity label (lstate 0) --
        visited = 1 << root_i
        recursive_calls = 1
        nodes_pruned_reachability = reach_pruned[root_i]
        if meter is not None:
            reason = meter.tripped(1, 0, 0)
            if reason is not None:
                raise KernelBudgetTrip(reason)
        for t_i, c_i, cedge in completing[root_i]:
            if visited >> t_i & 1:
                continue
            cand_lstate = ext_lstate[c_i]
            cand_ci = ci_of[cand_lstate]
            cand_length = ext_delta[c_i]
            cand_triple = (cand_length, sort_rank[cand_ci], cand_ci)
            # Line-5 frontier update: merge(candidate, best[T]).
            if not bt:
                bt = [cand_triple]
                bt_dirty = True
            elif cand_triple not in bt:
                merged = [cand_triple]
                for t in bt:
                    if t[2] != cand_ci or t[0] != cand_length:
                        merged.append(t)
                present = 0
                for t in merged:
                    present |= 1 << t[2]
                survivors = [
                    t for t in merged if not (present & beaten_by[t[2]])
                ]
                if len(survivors) > 1:
                    lengths = sorted({t[0] for t in survivors})
                    if len(lengths) > e_param:
                        allowed = set(lengths[:e_param])
                        survivors = [t for t in survivors if t[0] in allowed]
                survivors.sort()
                if survivors != bt:
                    bt = survivors
                    bt_dirty = True
            # keeps(candidate, best[T]) on the updated frontier.
            present = 1 << cand_ci
            for t in bt:
                present |= 1 << t[2]
            if present & beaten_by[cand_ci]:
                kept = False
            else:
                lengths = {cand_length}
                for t in bt:
                    if not (present & beaten_by[t[2]]):
                        lengths.add(t[0])
                kept = (
                    len(lengths) <= e_param
                    or cand_length <= sorted(lengths)[e_param - 1]
                )
            if kept:
                complete_rec_append(((), cedge, cand_ci, cand_length))
        stack_append((root_i, 0, 0, 0, 0))

        while stack:
            node_i, lstate, length, depth, edge_index = stack_pop()
            edges = interior[node_i]
            n_edges = len(edges)
            # Frame-constant hoists for the per-edge loop below.
            ls_base = lstate * n_conn
            child_depth = depth + 1
            advanced = False
            while edge_index < n_edges:
                child_i, c_i, edge = edges[edge_index]
                edge_index += 1
                edges_considered += 1
                if visited >> child_i & 1:
                    pruned_visited += 1
                    continue
                if child_depth >= depth_limit:
                    continue
                e_idx = ls_base + c_i
                child_lstate = ext_lstate[e_idx]
                child_length = length + ext_delta[e_idx]
                child_ci = ci_of[child_lstate]
                if bt:
                    if bt_dirty:
                        # Rewrite keeps(·, best[T]) as per-connector
                        # cutoffs (the interpreted _rebuild_cutoffs).
                        bt_dirty = False
                        bt_mask = 0
                        for t in bt:
                            bt_mask |= 1 << t[2]
                        for ci in range(n_conn):
                            present = bt_mask | (1 << ci)
                            if present & beaten_by[ci]:
                                cutoffs[ci] = -1
                                continue
                            lengths = {
                                t[0]
                                for t in bt
                                if not (present & beaten_by[t[2]])
                            }
                            if len(lengths) < e_param:
                                cutoffs[ci] = no_cutoff
                            else:
                                cutoffs[ci] = sorted(lengths)[e_param - 1]
                    # Line 9, via the cutoff table.
                    if child_length > cutoffs[child_ci]:
                        pruned_target_bound += 1
                        continue
                # Lines 10-11: bound against best[u], rescued by caution.
                child_bit = 1 << child_ci
                entry = best[child_i]
                if entry is not None:
                    stored_mask, triples = entry
                    candidate_triple = (
                        child_length,
                        sort_rank[child_ci],
                        child_ci,
                    )
                    if candidate_triple not in triples:
                        present = stored_mask | child_bit
                        if present & beaten_by[child_ci]:
                            kept = False
                        else:
                            lengths = {child_length}
                            for known_length, _, known_ci in triples:
                                if not (present & beaten_by[known_ci]):
                                    lengths.add(known_length)
                            kept = (
                                len(lengths) <= e_param
                                or child_length
                                <= sorted(lengths)[e_param - 1]
                            )
                        if not kept:
                            if (
                                caution_masks is not None
                                and stored_mask & caution_masks[child_ci]
                            ):
                                rescued_by_caution += 1
                            else:
                                pruned_best_bound += 1
                                continue
                        # Line 12: best[u] := AGG*({l_u} ∪ best[u]).
                        survivors = []
                        if not (present & beaten_by[child_ci]):
                            survivors.append(candidate_triple)
                        for triple in triples:
                            if not (present & beaten_by[triple[2]]):
                                survivors.append(triple)
                        if len(survivors) > e_param:
                            s_lengths = sorted(
                                {triple[0] for triple in survivors}
                            )
                            if len(s_lengths) > e_param:
                                cut = s_lengths[e_param - 1]
                                survivors = [
                                    triple
                                    for triple in survivors
                                    if triple[0] <= cut
                                ]
                        survivors.sort()
                        new_mask = 0
                        for triple in survivors:
                            new_mask |= 1 << triple[2]
                        best[child_i] = (new_mask, survivors)
                else:
                    best[child_i] = (
                        child_bit,
                        [(child_length, sort_rank[child_ci], child_ci)],
                    )
                # Label-bound pruning (after line 12, as interpreted).
                if bt:
                    row = rows_[child_i]
                    base = lb_rowbase[child_lstate]
                    composed_row = coni[child_ci]
                    survives = False
                    for suffix_ci in conns[child_i]:
                        composed_i = composed_row[suffix_ci]
                        if (
                            caution_masks is not None
                            and bt_mask & caution_masks[composed_i]
                        ):
                            survives = True  # caution exemption
                            break
                        if (
                            child_length + row[base + suffix_ci]
                            <= cutoffs[composed_i]
                        ):
                            survives = True
                            break
                    if not survives:
                        nodes_pruned_bound += 1
                        continue
                # Line 13: recurse — push the parent frame back, then
                # enter the child (lines 1-5 inlined).
                stack_append((node_i, lstate, length, depth, edge_index))
                path_edges_append(edge)
                visited |= 1 << child_i
                recursive_calls += 1
                nodes_pruned_reachability += reach_pruned[child_i]
                if meter is not None:
                    reason = meter.tripped(
                        recursive_calls, len(complete_rec), len(stack)
                    )
                    if reason is not None:
                        raise KernelBudgetTrip(reason)
                prefix = None
                ex_base = child_lstate * n_conn
                for t_i, cc_i, cedge in completing[child_i]:
                    if visited >> t_i & 1:
                        continue
                    cand_lstate = ext_lstate[ex_base + cc_i]
                    cand_ci = ci_of[cand_lstate]
                    cand_length = child_length + ext_delta[ex_base + cc_i]
                    cand_triple = (cand_length, sort_rank[cand_ci], cand_ci)
                    if not bt:
                        bt = [cand_triple]
                        bt_dirty = True
                    elif cand_triple not in bt:
                        merged = [cand_triple]
                        for t in bt:
                            if t[2] != cand_ci or t[0] != cand_length:
                                merged.append(t)
                        present = 0
                        for t in merged:
                            present |= 1 << t[2]
                        survivors = [
                            t
                            for t in merged
                            if not (present & beaten_by[t[2]])
                        ]
                        if len(survivors) > 1:
                            lengths = sorted({t[0] for t in survivors})
                            if len(lengths) > e_param:
                                allowed = set(lengths[:e_param])
                                survivors = [
                                    t for t in survivors if t[0] in allowed
                                ]
                        survivors.sort()
                        if survivors != bt:
                            bt = survivors
                            bt_dirty = True
                    present = 1 << cand_ci
                    for t in bt:
                        present |= 1 << t[2]
                    if present & beaten_by[cand_ci]:
                        kept = False
                    else:
                        lengths = {cand_length}
                        for t in bt:
                            if not (present & beaten_by[t[2]]):
                                lengths.add(t[0])
                        kept = (
                            len(lengths) <= e_param
                            or cand_length <= sorted(lengths)[e_param - 1]
                        )
                    if kept:
                        if prefix is None:
                            prefix = tuple(path_edges)
                        complete_rec_append(
                            (prefix, cedge, cand_ci, cand_length)
                        )
                stack_append(
                    (child_i, child_lstate, child_length, child_depth, 0)
                )
                advanced = True
                break
            if not advanced:
                visited &= ~(1 << node_i)  # line 15
                if depth:
                    path_edges_pop()
    finally:
        stats.recursive_calls += recursive_calls
        stats.edges_considered += edges_considered
        stats.pruned_visited += pruned_visited
        stats.pruned_target_bound += pruned_target_bound
        stats.pruned_best_bound += pruned_best_bound
        stats.rescued_by_caution += rescued_by_caution
        stats.nodes_pruned_reachability += nodes_pruned_reachability
        stats.nodes_pruned_bound += nodes_pruned_bound
        stats.complete_paths_found += len(complete_rec)
        # Materialize the recorded paths — also on a budget trip, so
        # the anytime best-so-far answer survives truncation.
        all_connectors = ALL_CONNECTORS
        concrete_path = ConcretePath
        path_label = PathLabel
        length_state = SemanticLengthState
        set_attr = object.__setattr__
        for prefix, cedge, cand_ci, cand_length in complete_rec:
            edges = prefix + (cedge,)
            path = concrete_path(root, edges)
            set_attr(
                path,
                "_label",
                path_label(
                    all_connectors[cand_ci],
                    length_state(
                        cand_length,
                        edges[0].connector,
                        edges[-1].connector,
                    ),
                ),
            )
            complete.append(path)


# ----------------------------------------------------------------------
# Optional compiled twin
# ----------------------------------------------------------------------

_run_flat_python = run_flat

try:  # pragma: no cover - exercised only when a compiled twin exists
    from repro.core._kernel_c import run_flat as _run_flat_compiled  # type: ignore

    run_flat = _run_flat_compiled  # noqa: F811
    _BACKEND = "compiled"
except Exception:  # ImportError normally; any failure falls back
    _run_flat_compiled = None
    _BACKEND = "python"


def kernel_backend() -> str:
    """Which flat-kernel implementation is live: ``"compiled"`` when an
    ahead-of-time build (mypyc/Cython) of :func:`run_flat` was importable
    as ``repro.core._kernel_c``, else ``"python"``."""
    return _BACKEND


def try_compile() -> str:
    """Attempt an ahead-of-time build of this module (best effort).

    Tries mypyc, then Cython, writing the extension next to this file
    as ``repro.core._kernel_c``.  Neither toolchain is a dependency —
    a missing compiler returns a message instead of raising, and the
    pure-Python kernel remains the fallback either way.
    """
    here = os.path.abspath(__file__)
    try:
        from mypyc.build import mypycify  # type: ignore  # noqa: F401
    except Exception:
        pass
    else:
        return (
            "mypyc available: build with "
            f"`mypyc {here}` and install the extension as "
            "repro.core._kernel_c"
        )
    try:
        import Cython  # type: ignore  # noqa: F401
    except Exception:
        pass
    else:
        return (
            "Cython available: cythonize this module and install it as "
            "repro.core._kernel_c"
        )
    return "no compiler available (mypyc/Cython not installed); using the pure-Python kernel"


if __name__ == "__main__":  # pragma: no cover - operational helper
    import sys

    if len(sys.argv) > 1 and sys.argv[1] == "compile":
        print(try_compile())
    else:
        print(f"kernel backend: {kernel_backend()}")
