"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.core.compiled import CompiledSchema, CompletionCache
from repro.errors import InjectedFaultError, ResilienceError
from repro.resilience.faults import (
    FakeClock,
    FaultPlan,
    FaultyCache,
    FaultyGraph,
    inject,
)


class TestFakeClock:
    def test_starts_where_told_and_advances(self):
        clock = FakeClock(start=5.0)
        assert clock() == 5.0
        assert clock.advance(1.5) == 6.5
        assert clock() == 6.5

    def test_rejects_going_backward(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-0.1)


class TestFaultPlan:
    def test_rates_are_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(edge_fail_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(cache_miss_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(edge_latency=-1.0)

    def test_same_seed_same_schedule(self):
        plan_a = FaultPlan(seed=42, edge_fail_rate=0.3)
        plan_b = FaultPlan(seed=42, edge_fail_rate=0.3)
        schedule_a = [plan_a.should_fail_edge() for _ in range(200)]
        schedule_b = [plan_b.should_fail_edge() for _ in range(200)]
        assert schedule_a == schedule_b
        assert any(schedule_a)  # at 30% something must fire in 200 draws

    def test_different_seeds_differ(self):
        plan_a = FaultPlan(seed=1, edge_fail_rate=0.5)
        plan_b = FaultPlan(seed=2, edge_fail_rate=0.5)
        assert [plan_a.should_fail_edge() for _ in range(100)] != [
            plan_b.should_fail_edge() for _ in range(100)
        ]

    def test_armed_after_delays_injection(self):
        plan = FaultPlan(seed=0, edge_fail_rate=1.0, armed_after=3)
        assert [plan.should_fail_edge() for _ in range(5)] == [
            False,
            False,
            False,
            True,
            True,
        ]

    def test_latency_drives_the_clock(self):
        clock = FakeClock()
        plan = FaultPlan(seed=0, edge_latency=0.25, clock=clock)
        plan.should_fail_edge()
        plan.should_fail_edge()
        assert clock() == pytest.approx(0.5)

    def test_injections_are_recorded(self):
        plan = FaultPlan(seed=0, edge_fail_rate=1.0, cache_miss_rate=1.0)
        plan.should_fail_edge()
        plan.should_miss_cache()
        assert plan.injected == ["graph.edges_from", "cache.get"]
        assert plan.injection_count == 2


class TestFaultyGraph:
    def test_raises_injected_fault_on_schedule(self, university_graph):
        plan = FaultPlan(seed=0, edge_fail_rate=1.0)
        graph = FaultyGraph(university_graph, plan)
        with pytest.raises(InjectedFaultError) as excinfo:
            graph.edges_from("ta")
        assert excinfo.value.site == "graph.edges_from"
        assert isinstance(excinfo.value, ResilienceError)

    def test_delegates_everything_else(self, university_graph):
        graph = FaultyGraph(university_graph, FaultPlan(seed=0))
        assert graph.edges_from("ta") == university_graph.edges_from("ta")
        assert graph.schema is university_graph.schema


class TestFaultyCache:
    def test_forced_misses_and_dropped_puts(self):
        plan = FaultPlan(seed=0, cache_miss_rate=1.0, cache_drop_rate=1.0)
        cache = FaultyCache(CompletionCache(maxsize=4), plan)
        cache.put(("k",), "sentinel")
        assert len(cache) == 0  # put dropped
        assert cache.get(("k",)) is None  # and forced miss anyway

    def test_clean_plan_is_transparent(self):
        cache = FaultyCache(CompletionCache(maxsize=4), FaultPlan(seed=0))
        cache.put(("k",), "sentinel")
        assert cache.get(("k",)) == "sentinel"


class TestInject:
    def test_inject_rewires_and_restore_undoes(self, university):
        compiled = CompiledSchema(university)
        graph, cache = compiled.graph, compiled.cache
        with inject(compiled, FaultPlan(seed=0)) as plan:
            assert isinstance(compiled.graph, FaultyGraph)
            assert isinstance(compiled.cache, FaultyCache)
            assert plan.injection_count == 0
        assert compiled.graph is graph
        assert compiled.cache is cache

    def test_searchers_built_under_injection_see_faults(self, university):
        from repro.core.engine import Disambiguator
        from repro.errors import ReproError

        compiled = CompiledSchema(university)
        with inject(compiled, FaultPlan(seed=0, edge_fail_rate=1.0)):
            engine = Disambiguator(compiled)
            with pytest.raises(ReproError):
                engine.complete("ta ~ name")
        # After restore a fresh engine completes normally.
        engine = Disambiguator(compiled)
        assert engine.complete("ta ~ name").paths
