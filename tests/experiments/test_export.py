"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.experiments.export import (
    export_figure6_csv,
    export_figure7_csv,
    export_outcomes_csv,
    export_sweep_csv,
)
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.harness import run_workload, sweep_e
from repro.experiments.oracle import DesignerOracle, WorkloadQuery


@pytest.fixture()
def mini_oracle():
    return DesignerOracle(
        [
            WorkloadQuery(
                query_id="u1",
                text="ta ~ name",
                intended=(
                    "ta@>grad@>student@>person.name",
                    "ta@>instructor@>teacher@>employee@>person.name",
                ),
            ),
        ]
    )


def _read(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestSweepExport:
    def test_rows_match_points(self, university, mini_oracle, tmp_path):
        points = sweep_e(university, mini_oracle, e_values=(1, 2))
        path = tmp_path / "sweep.csv"
        export_sweep_csv(points, path)
        rows = _read(path)
        assert rows[0] == [
            "e", "average_recall", "average_precision", "average_returned",
        ]
        assert len(rows) == 3
        assert rows[1][0] == "1"
        assert float(rows[1][1]) == 1.0


class TestFigure6Export:
    def test_both_arms_exported(self, university, mini_oracle, tmp_path):
        from repro.core.domain import DomainKnowledge

        result = run_figure6(
            university,
            mini_oracle,
            DomainKnowledge.excluding("course"),
            e_values=(1,),
        )
        path = tmp_path / "fig6.csv"
        export_figure6_csv(result, path)
        rows = _read(path)
        assert rows[0][1:] == ["precision_without_dk", "precision_with_dk"]
        assert len(rows) == 2


class TestFigure7Export:
    def test_one_row_per_query(self, university, mini_oracle, tmp_path):
        result = run_figure7(university, mini_oracle, e=1)
        path = tmp_path / "fig7.csv"
        export_figure7_csv(result, path)
        rows = _read(path)
        assert len(rows) == 2
        assert rows[1][0] == "u1"
        assert int(rows[1][2]) > 0


class TestOutcomesExport:
    def test_raw_outcomes(self, university, mini_oracle, tmp_path):
        outcomes = run_workload(university, mini_oracle, e=1)
        path = tmp_path / "outcomes.csv"
        export_outcomes_csv(outcomes, path)
        rows = _read(path)
        assert len(rows) == 2
        header = rows[0]
        assert "recall" in header and "precision" in header
        record = dict(zip(header, rows[1]))
        assert record["query_id"] == "u1"
        assert float(record["recall"]) == 1.0
