"""Tests for class definitions and the primitive classes."""

import pytest

from repro.errors import SchemaError
from repro.model.classes import (
    BOOLEAN,
    ClassDef,
    INTEGER,
    PRIMITIVE_CLASS_NAMES,
    REAL,
    STRING,
    is_valid_class_name,
    primitive_classes,
)


class TestPrimitives:
    def test_the_four_primitives(self):
        assert PRIMITIVE_CLASS_NAMES == {"I", "R", "C", "B"}
        assert [c.name for c in primitive_classes()] == ["I", "R", "C", "B"]

    def test_primitive_flags(self):
        for cls in (INTEGER, REAL, STRING, BOOLEAN):
            assert cls.primitive

    def test_user_class_cannot_take_a_primitive_name(self):
        with pytest.raises(SchemaError):
            ClassDef("I")

    def test_primitive_flag_restricted_to_reserved_names(self):
        with pytest.raises(SchemaError):
            ClassDef("thing", primitive=True)


class TestNames:
    def test_paper_style_names_are_valid(self):
        for name in ("person", "teaching-asst", "soil_layer", "co2_profile"):
            assert is_valid_class_name(name)

    def test_invalid_names(self):
        for name in ("", "1abc", "a.b", "a b", "a@b", "~x"):
            assert not is_valid_class_name(name)

    def test_constructor_rejects_invalid_names(self):
        with pytest.raises(SchemaError):
            ClassDef("not a name")

    def test_str_is_the_name(self):
        assert str(ClassDef("person")) == "person"

    def test_classdef_is_frozen_and_hashable(self):
        cls = ClassDef("person")
        assert cls in {cls}
        with pytest.raises(Exception):
            cls.name = "other"  # type: ignore[misc]
