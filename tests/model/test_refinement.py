"""Tests for relationship refinement (paper Section 2.1: "the subclass
may refine (redefine) these relationships")."""

import pytest

from repro.errors import InvalidRelationshipError, UnknownRelationshipError
from repro.model.builder import SchemaBuilder
from repro.model.inheritance import resolve_inherited
from repro.model.kinds import RelationshipKind


@pytest.fixture()
def schema():
    return (
        SchemaBuilder("refine")
        .cls("person").attr("name")
        .cls("course").attr("title")
        .cls("grad_course").isa("course")
        .cls("student").isa("person")
        .cls("student").assoc("course", name="take", inverse_name="student")
        .cls("grad").isa("student")
        .build()
    )


class TestRefine:
    def test_covariant_refinement(self, schema):
        refined = schema.refine_relationship("grad", "take", "grad_course")
        assert refined.source == "grad"
        assert refined.target == "grad_course"
        assert refined.kind is RelationshipKind.IS_ASSOCIATED_WITH
        assert "refines" in refined.doc

    def test_refinement_shadows_inherited(self, schema):
        schema.refine_relationship("grad", "take", "grad_course")
        resolved = resolve_inherited(schema, "grad", "take")
        assert resolved.source == "grad"
        assert resolved.target == "grad_course"
        # the superclass still sees the original
        assert resolve_inherited(schema, "student", "take").target == "course"

    def test_same_target_allowed(self, schema):
        refined = schema.refine_relationship("grad", "take", "course")
        assert refined.target == "course"

    def test_non_subclass_target_rejected(self, schema):
        with pytest.raises(InvalidRelationshipError):
            schema.refine_relationship("grad", "take", "person")

    def test_unknown_relationship_rejected(self, schema):
        with pytest.raises(UnknownRelationshipError):
            schema.refine_relationship("grad", "ghost", "course")

    def test_own_declaration_not_refinable(self, schema):
        with pytest.raises(InvalidRelationshipError):
            schema.refine_relationship("student", "take", "grad_course")

    def test_attribute_refinement_skips_inverse(self, schema):
        refined = schema.refine_relationship("grad", "name", "C")
        assert refined.target == "C"
        assert not schema.has_relationship("C", "grad")

    def test_refinement_installs_inverse(self, schema):
        schema.refine_relationship("grad", "take", "grad_course")
        inverse = schema.get_relationship("grad_course", "grad")
        assert inverse.target == "grad"


class TestRefinementAndCompletion:
    def test_completion_uses_the_preempting_refinement(self, schema):
        """The Inheritance Semantics Criterion makes the refined
        declaration preempt the inherited one."""
        from repro.core.completion import complete_paths
        from repro.core.target import RelationshipTarget
        from repro.model.graph import SchemaGraph

        schema.refine_relationship("grad", "take", "grad_course")
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "grad", RelationshipTarget("take"))
        assert result.expressions == ["grad.take"]

    def test_evaluation_follows_the_refined_links(self, schema):
        from repro.model.instances import Database
        from repro.query.evaluator import evaluate

        schema.refine_relationship("grad", "take", "grad_course")
        db = Database(schema)
        grad = db.create("grad")
        seminar = db.create("grad_course")
        db.set_attribute(seminar, "title", "seminar")
        db.link(grad, "take", seminar)
        # completions always spell out Isa traversals, so the evaluable
        # form goes up to course where the attribute is declared
        assert evaluate(db, "grad.take@>course.title") == {"seminar"}
