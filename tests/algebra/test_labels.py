"""Tests for path labels and CON over labels."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra.con_table import con_c_sequence
from repro.algebra.connectors import Connector, PRIMARY_CONNECTORS
from repro.algebra.labels import IDENTITY_LABEL, PathLabel, con
from repro.algebra.semantic_length import semantic_length_of

primary_sequences = st.lists(
    st.sampled_from(PRIMARY_CONNECTORS), min_size=0, max_size=10
)


class TestIdentity:
    def test_identity_is_isa_zero(self):
        assert IDENTITY_LABEL.connector is Connector.ISA
        assert IDENTITY_LABEL.semantic_length == 0
        assert IDENTITY_LABEL.is_identity

    def test_nonempty_pure_isa_label_is_not_theta(self):
        label = PathLabel.of_path([Connector.ISA])
        assert label.key == IDENTITY_LABEL.key
        assert not label.is_identity

    def test_identity_is_neutral_for_join(self):
        label = PathLabel.of_path([Connector.HAS_PART, Connector.ASSOC])
        assert con(IDENTITY_LABEL, label) == label
        assert con(label, IDENTITY_LABEL) == label


class TestConstruction:
    def test_for_edge_matches_kind_semantics(self):
        isa = PathLabel.for_edge(Connector.ISA)
        assert isa.semantic_length == 0
        has_part = PathLabel.for_edge(Connector.HAS_PART)
        assert has_part.semantic_length == 1

    def test_of_path_flagship_example(self):
        # ta@>grad@>student@>person.name
        label = PathLabel.of_path(
            [Connector.ISA, Connector.ISA, Connector.ISA, Connector.ASSOC]
        )
        assert label.connector is Connector.ASSOC
        assert label.semantic_length == 1

    def test_str_form(self):
        label = PathLabel.for_edge(Connector.HAS_PART)
        assert str(label) == "[$>,1]"


class TestExtendAndJoin:
    @given(primary_sequences)
    @settings(max_examples=200)
    def test_of_path_agrees_with_fold_of_extend(self, sequence):
        folded = IDENTITY_LABEL
        for connector in sequence:
            folded = folded.extend(connector)
        assert folded == PathLabel.of_path(sequence)

    @given(primary_sequences, primary_sequences)
    @settings(max_examples=200)
    def test_join_is_concatenation(self, left, right):
        joined = con(PathLabel.of_path(left), PathLabel.of_path(right))
        assert joined == PathLabel.of_path(left + right)

    @given(primary_sequences, primary_sequences, primary_sequences)
    @settings(max_examples=150)
    def test_join_is_associative(self, a, b, c):
        la, lb, lc = map(PathLabel.of_path, (a, b, c))
        assert con(con(la, lb), lc) == con(la, con(lb, lc))

    @given(primary_sequences)
    @settings(max_examples=200)
    def test_components_match_their_own_ground_truths(self, sequence):
        label = PathLabel.of_path(sequence)
        assert label.connector is con_c_sequence(sequence)
        assert label.semantic_length == semantic_length_of(sequence)


class TestEquality:
    def test_key_ignores_boundary_state(self):
        # same (connector, length) through different edge sequences
        first = PathLabel.of_path([Connector.ASSOC])
        second = PathLabel.of_path(
            [Connector.ISA, Connector.ISA, Connector.ASSOC]
        )
        assert first.key == second.key
        assert first != second  # full equality keeps the boundary

    def test_labels_are_hashable(self):
        label = PathLabel.of_path([Connector.HAS_PART])
        assert label in {label}
