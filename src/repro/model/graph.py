"""The schema graph used by the path computation (paper Sections 2.1, 3.2).

A schema *is* a directed graph — classes are nodes, relationships are
edges — but the completion algorithm needs a view optimized for
traversal: adjacency lists of labeled edges, cheap child ordering, and
an export to :mod:`networkx` for analyses (connectivity, diameter,
candidate-path counting cross-checks).

Each edge carries the label of paper Section 3.2: the connector of its
relationship kind and its semantic length (0 for Isa/May-Be, 1
otherwise).
"""

from __future__ import annotations

import dataclasses
import hashlib

import networkx as nx

from repro.algebra.connectors import Connector, connector_for_kind
from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship
from repro.model.schema import Schema

__all__ = ["SchemaEdge", "SchemaGraph"]


@dataclasses.dataclass(frozen=True)
class SchemaEdge:
    """A traversable edge of the schema graph.

    Wraps a :class:`~repro.model.relationships.Relationship` together
    with its path-algebra label components.  The label components are
    materialized at construction (``compare=False`` keeps equality and
    hashing on the relationship alone): the traversal reads
    ``edge.target`` / ``edge.connector`` on its innermost loop, where
    per-access property dispatch is measurable.
    """

    relationship: Relationship
    source: str = dataclasses.field(init=False, compare=False, repr=False)
    target: str = dataclasses.field(init=False, compare=False, repr=False)
    name: str = dataclasses.field(init=False, compare=False, repr=False)
    connector: Connector = dataclasses.field(
        init=False, compare=False, repr=False
    )
    semantic_length: int = dataclasses.field(
        init=False, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        rel = self.relationship
        object.__setattr__(self, "source", rel.source)
        object.__setattr__(self, "target", rel.target)
        object.__setattr__(self, "name", rel.name)
        object.__setattr__(self, "connector", connector_for_kind(rel.kind))
        object.__setattr__(self, "semantic_length", rel.kind.semantic_length)

    @property
    def kind(self) -> RelationshipKind:
        return self.relationship.kind

    def __str__(self) -> str:
        return f"{self.source}{self.kind.symbol}{self.name}"


class SchemaGraph:
    """Adjacency view of a schema for path computations.

    Parameters
    ----------
    schema:
        The schema to wrap.  The graph snapshots the schema's
        relationships at construction time; rebuild it after schema
        edits.
    exclude_classes:
        Optional set of class names whose nodes are removed from the
        traversal view.  This implements the paper's Section 5.2 domain
        knowledge ("certain classes should never be part of any
        completion"): edges into or out of excluded classes are dropped.
    exclude_relationships:
        Optional set of ``(source, name)`` pairs to drop individually.
    """

    def __init__(
        self,
        schema: Schema,
        exclude_classes: frozenset[str] | set[str] = frozenset(),
        exclude_relationships: (
            frozenset[tuple[str, str]] | set[tuple[str, str]]
        ) = frozenset(),
    ) -> None:
        self.schema = schema
        self.exclude_classes = frozenset(exclude_classes)
        self.exclude_relationships = frozenset(exclude_relationships)
        self._adjacency: dict[str, list[SchemaEdge]] = {
            cls.name: [] for cls in schema
        }
        for rel in schema.relationships():
            if rel.source in self.exclude_classes:
                continue
            if rel.target in self.exclude_classes:
                continue
            if rel.key in self.exclude_relationships:
                continue
            self._adjacency[rel.source].append(SchemaEdge(rel))
        # Sort children best-connector-first to aid branch-and-bound
        # (paper: "children[v] ... sorted in the order of best-to-worst
        # label of the edge").
        for edges in self._adjacency.values():
            edges.sort(key=lambda e: (e.connector.sort_rank, e.semantic_length))

    def nodes(self) -> list[str]:
        """All node (class) names, excluded ones removed."""
        return [
            name
            for name in self._adjacency
            if name not in self.exclude_classes
        ]

    def edges_from(self, node: str) -> list[SchemaEdge]:
        """Outgoing edges of ``node``, best label first."""
        return self._adjacency.get(node, [])

    def edges(self) -> list[SchemaEdge]:
        """All edges in the traversal view."""
        return [edge for edges in self._adjacency.values() for edge in edges]

    def edges_named(self, name: str) -> list[SchemaEdge]:
        """All edges whose relationship name is ``name``."""
        return [edge for edge in self.edges() if edge.name == name]

    def out_degree(self, node: str) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self.edges_from(node))

    def fingerprint(self) -> str:
        """Content hash of the *traversal view*: the schema fingerprint
        combined with the applied exclusions.

        Two graphs over content-equal schemas with the same exclusions
        share the fingerprint; note the hash reflects the schema's
        *current* content, not the snapshot taken at construction — a
        mismatch with a stored fingerprint is how staleness is detected.
        """
        hasher = hashlib.sha256()
        hasher.update(self.schema.fingerprint().encode())
        for name in sorted(self.exclude_classes):
            hasher.update(f"XC|{name}\n".encode())
        for source, rel_name in sorted(self.exclude_relationships):
            hasher.update(f"XR|{source}|{rel_name}\n".encode())
        return hasher.hexdigest()

    def evolved(
        self, schema: Schema, touched: frozenset[str] | set[str]
    ) -> "SchemaGraph":
        """A graph over ``schema`` reusing rows untouched by a delta.

        ``touched`` is the delta's class frontier
        (:meth:`~repro.model.delta.SchemaDelta.touched_classes`): only
        those adjacency rows (plus rows for brand-new classes) are
        rebuilt from the schema; every other row — already-constructed
        ``SchemaEdge`` objects included — is shared with this graph.
        Rows of removed classes drop out naturally because the new
        adjacency iterates the *new* schema's class set.  Exclusions
        carry over unchanged.
        """
        clone = SchemaGraph.__new__(SchemaGraph)
        clone.schema = schema
        clone.exclude_classes = self.exclude_classes
        clone.exclude_relationships = self.exclude_relationships
        adjacency: dict[str, list[SchemaEdge]] = {}
        for cls in schema:
            name = cls.name
            if name not in touched and name in self._adjacency:
                adjacency[name] = self._adjacency[name]
                continue
            edges = [
                SchemaEdge(rel)
                for rel in schema.relationships_from(name)
                if rel.source not in self.exclude_classes
                and rel.target not in self.exclude_classes
                and rel.key not in self.exclude_relationships
            ]
            edges.sort(key=lambda e: (e.connector.sort_rank, e.semantic_length))
            adjacency[name] = edges
        clone._adjacency = adjacency
        return clone

    def restricted(
        self,
        exclude_classes: frozenset[str] | set[str] = frozenset(),
        exclude_relationships: (
            frozenset[tuple[str, str]] | set[tuple[str, str]]
        ) = frozenset(),
    ) -> "SchemaGraph":
        """A new graph with additional exclusions applied."""
        return SchemaGraph(
            self.schema,
            exclude_classes=self.exclude_classes | frozenset(exclude_classes),
            exclude_relationships=(
                self.exclude_relationships | frozenset(exclude_relationships)
            ),
        )

    # ------------------------------------------------------------------
    # networkx interop
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export the traversal view as a :class:`networkx.MultiDiGraph`.

        Edge attributes: ``name``, ``kind`` (the symbol string),
        ``semantic_length``.  Useful for structural analyses; the
        completion algorithm itself runs on the native adjacency.
        """
        graph = nx.MultiDiGraph(name=self.schema.name)
        graph.add_nodes_from(self.nodes())
        for edge in self.edges():
            graph.add_edge(
                edge.source,
                edge.target,
                key=edge.name,
                name=edge.name,
                kind=edge.kind.symbol,
                semantic_length=edge.semantic_length,
            )
        return graph

    def structural_stats(self) -> dict[str, float]:
        """Size and shape statistics used in experiment reports."""
        graph = self.to_networkx()
        degrees = [graph.out_degree(node) for node in graph.nodes]
        return {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "max_out_degree": max(degrees) if degrees else 0,
            "mean_out_degree": (
                sum(degrees) / len(degrees) if degrees else 0.0
            ),
            "weakly_connected_components": (
                nx.number_weakly_connected_components(graph)
            ),
        }

    def __repr__(self) -> str:
        return (
            f"SchemaGraph({self.schema.name!r}, nodes={len(self.nodes())}, "
            f"edges={len(self.edges())})"
        )
