"""Validate exported observability artifacts against the checked-in
schemas.

Usage::

    python -m repro.obs.validate FILE [FILE ...]

``*.jsonl`` files hold JSON-lines records whose kind is sniffed from
the first record — access logs (``request_id``/``route`` keys), trace
logs (``type`` key), slow-query logs (``retained``/``elapsed_ms``
keys), search audit logs (``kind``/``seq`` keys), or benchmark-history
rows (``run``/``value`` keys).  ``*.json`` documents are SLO status
payloads when they carry ``objectives``/``state`` keys, kernel bench
reports when they carry ``kernel``/``batch`` keys, metrics summaries
otherwise.  Exit status 0 when every file conforms, 1
otherwise — CI runs this over the quick-bench exports so a format
drift fails the build until the schema files are updated deliberately.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.schema import (
    SchemaValidationError,
    validate_access_records,
    validate_audit_records,
    validate_bench_records,
    validate_kernel_bench,
    validate_metrics_summary,
    validate_slo_status,
    validate_slowlog_entries,
    validate_trace_events,
)

__all__ = ["main"]


def _jsonl_kind(records: list) -> str:
    """Sniff which JSON-lines format a record list is."""
    first = records[0] if records else {}
    if isinstance(first, dict):
        if "request_id" in first and "route" in first:
            return "access log"
        if "retained" in first and "elapsed_ms" in first:
            return "slow-query log"
        if "kind" in first and "seq" in first:
            return "search audit log"
        if "run" in first and "value" in first:
            return "benchmark history"
    return "trace log"


_JSONL_VALIDATORS = {
    "access log": validate_access_records,
    "slow-query log": validate_slowlog_entries,
    "search audit log": validate_audit_records,
    "benchmark history": validate_bench_records,
    "trace log": validate_trace_events,
}


def _validate_file(path: str) -> tuple[str, list[str]]:
    """(detected kind, problems found) for one file (empty = valid)."""
    kind = "metrics summary"
    try:
        with open(path, encoding="utf-8") as handle:
            if path.endswith(".jsonl"):
                records = [
                    json.loads(line)
                    for line in handle
                    if line.strip()
                ]
                kind = _jsonl_kind(records)
                _JSONL_VALIDATORS[kind](records)
            else:
                document = json.load(handle)
                if isinstance(document, dict) and (
                    "objectives" in document and "state" in document
                ):
                    kind = "slo status"
                    validate_slo_status(document)
                elif isinstance(document, dict) and (
                    "kernel" in document and "batch" in document
                ):
                    kind = "kernel bench report"
                    validate_kernel_bench(document)
                else:
                    validate_metrics_summary(document)
    except FileNotFoundError:
        return kind, [f"{path}: file not found"]
    except json.JSONDecodeError as error:
        return kind, [f"{path}: not valid JSON ({error})"]
    except SchemaValidationError as error:
        return kind, [f"{path}: {problem}" for problem in error.problems]
    return kind, []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help="metrics summary (.json) or trace log (.jsonl) to validate",
    )
    args = parser.parse_args(argv)
    failed = False
    for path in args.files:
        kind, problems = _validate_file(path)
        if problems:
            failed = True
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{path}: valid {kind}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
