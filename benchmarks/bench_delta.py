"""Bench PR — schema deltas: incremental maintenance vs rebuild-per-edit.

Runs the scripted CUPID designer session (``repro.experiments.designer``)
once per delta mode from equally cold global caches.  The contract under
test:

* the incremental session is at least 5x faster end-to-end than
  rebuilding the compiled artifact after every edit (measured ~8-11x:
  module-local edits carry the completion cache, so the per-edit
  validation sweep stays warm instead of re-searching cold);
* both modes end at the same schema fingerprint, and every query step
  returns the same number of candidates in both modes (full byte
  identity of evolved completions is property-tested in
  ``tests/core/test_delta_fuzz.py``);
* a single module-local edit evolves the artifact in well under the
  cost of one cold recompile-plus-closure build.

Timings land in ``BENCH_delta.json`` at the repo root and in the
``BENCH_history.jsonl`` perf ledger (gated by
``python -m repro.obs.perf compare`` in CI).  Set ``BENCH_QUICK=1`` (as
CI does) to run one trial per mode instead of taking the best of three.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import pytest

from benchmarks.conftest import emit, record_bench
from repro.core.closure import SchemaClosure
from repro.core.compiled import CompiledSchema, invalidate
from repro.core.target import RelationshipTarget
from repro.experiments.designer import (
    compare_designer_modes,
    cupid_designer_script,
)
from repro.model.delta import AddClass, SchemaDelta

_ROOT = pathlib.Path(__file__).parent.parent
_RESULT_FILE = _ROOT / "BENCH_delta.json"

QUICK = os.environ.get("BENCH_QUICK") == "1"
TRIALS = 1 if QUICK else 3
#: Required end-to-end designer-session speedup of the incremental path
#: over rebuild-per-edit (acceptance bar; measured ~8-11x).
MIN_SPEEDUP = 5.0


@pytest.mark.benchmark(group="delta")
def test_designer_session_speedup(cupid):
    script = cupid_designer_script()
    edits = sum(1 for step in script if not isinstance(step, str))
    queries = len(script) - edits

    best: dict[str, object] = {}
    for _ in range(TRIALS):
        incremental, rebuild = compare_designer_modes(schema=cupid)
        if (
            not best
            or incremental.total_seconds
            < best["incremental"].total_seconds
        ):
            best = {"incremental": incremental, "rebuild": rebuild}
    incremental = best["incremental"]
    rebuild = best["rebuild"]

    speedup = (
        rebuild.total_seconds / incremental.total_seconds
        if incremental.total_seconds > 0
        else float("inf")
    )
    assert incremental.final_fingerprint == rebuild.final_fingerprint
    # Same candidates at every step — the cheap structural half of the
    # byte-identity contract (the fuzz suite asserts the full thing).
    for inc_step, reb_step in zip(incremental.steps, rebuild.steps):
        assert inc_step.kind == reb_step.kind
        assert inc_step.detail == reb_step.detail, (
            f"step {inc_step.index} ({inc_step.description!r}): "
            f"{inc_step.detail} candidates incrementally, "
            f"{reb_step.detail} on rebuild"
        )
    assert incremental.cache_hits > rebuild.cache_hits
    assert speedup >= MIN_SPEEDUP, (
        f"designer session: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"({rebuild.total_seconds * 1000:.0f}ms rebuild -> "
        f"{incremental.total_seconds * 1000:.0f}ms incremental)"
    )

    # ------------------------------------------------------------------
    # Micro: one module-local edit vs one cold recompile with an eager
    # reach build and one warm target table — the latency a live session
    # actually saves per edit (the evolve path *repairs* the table, the
    # cold path rebuilds it from scratch).
    # ------------------------------------------------------------------
    SchemaClosure.clear_cache()
    invalidate()
    target = RelationshipTarget("conductance")
    compiled = CompiledSchema(cupid)
    _ = compiled.closure.reach
    assert compiled.closure.tables_for(target)
    delta = SchemaDelta.of(AddClass("bench_probe_class"))
    start = time.perf_counter()
    evolved = compiled.evolve(delta)
    evolve_seconds = time.perf_counter() - start
    start = time.perf_counter()
    cold = CompiledSchema(evolved.schema)
    _ = cold.closure.reach
    assert cold.closure.tables_for(target)
    cold_seconds = time.perf_counter() - start
    assert evolve_seconds < cold_seconds, (
        f"evolving one class-add ({evolve_seconds * 1000:.2f}ms) should "
        f"beat a cold recompile + reach + table build "
        f"({cold_seconds * 1000:.2f}ms)"
    )

    # The two session totals are the gated ledger series; the speedup is
    # derivable and asserted directly (a faster-than-baseline run would
    # otherwise read as a regression of the ratio).
    record_bench(
        "delta.designer_incremental_seconds",
        incremental.total_seconds,
        quick=QUICK,
    )
    record_bench(
        "delta.designer_rebuild_seconds", rebuild.total_seconds, quick=QUICK
    )

    lines = [
        f"workload: scripted CUPID designer session — {edits} edits, "
        f"{queries} queries" + (" (quick mode)" if QUICK else ""),
        f"incremental: {incremental.total_seconds * 1000:8.1f} ms "
        f"(edits {incremental.edit_seconds * 1000:.1f} ms, queries "
        f"{incremental.query_seconds * 1000:.1f} ms, "
        f"{incremental.cache_hits}/{incremental.query_count} cache hits)",
        f"rebuild:     {rebuild.total_seconds * 1000:8.1f} ms "
        f"(edits {rebuild.edit_seconds * 1000:.1f} ms, queries "
        f"{rebuild.query_seconds * 1000:.1f} ms, "
        f"{rebuild.cache_hits}/{rebuild.query_count} cache hits)",
        f"session speedup: {speedup:5.2f}x (required >= {MIN_SPEEDUP:.0f}x)",
        f"single class-add: evolve {evolve_seconds * 1000:8.2f} ms vs cold "
        f"recompile+reach+table {cold_seconds * 1000:8.2f} ms",
    ]

    record = {
        "schema": "cupid",
        "quick": QUICK,
        "trials": TRIALS,
        "script": {"edits": edits, "queries": queries},
        "incremental_seconds": incremental.total_seconds,
        "rebuild_seconds": rebuild.total_seconds,
        "speedup": speedup,
        "incremental_cache_hits": incremental.cache_hits,
        "rebuild_cache_hits": rebuild.cache_hits,
        "evolve_class_add_seconds": evolve_seconds,
        "cold_recompile_seconds": cold_seconds,
        "final_fingerprint": incremental.final_fingerprint,
        "python": platform.python_version(),
    }
    _RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    emit(
        "Schema deltas: incremental maintenance vs rebuild-per-edit",
        "\n".join(lines),
    )
