"""Process-pool backend for parallel cold completion.

Thread-pool ``complete_batch(jobs=N)`` is GIL-capped: cold completions
are pure-Python search loops, so threads interleave instead of
overlapping and a multi-core machine completes a cold batch no faster
than one core.  This module shards a batch across worker *processes*
behind the ``executor`` knob (``"thread"`` — the default — or
``"process"``; env ``REPRO_EXECUTOR``, CLI ``--executor``).

The hand-off protocol is explicit, because nothing ambient crosses a
process boundary on its own:

* **What crosses the pickle boundary out:** one frozen
  :class:`WorkerSpec` per pool — the schema, partial order, domain
  knowledge, and the engine's scalar configuration (E, ablation flags,
  ``max_depth``, resolved ``pruning``/``kernel`` strings, and the
  effective budget's *limits*).  Each worker's initializer recompiles
  (or registry-hits) the artifact via the content-keyed
  :func:`~repro.core.compiled.compile_schema` and builds its own
  :class:`~repro.core.engine.Disambiguator` once per process.
* **What crosses back:** per expression, either ``("ok", result,
  entries)`` — the frozen :class:`CompletionResult` plus the cache
  entries this completion added in the worker (diffed against a
  pre-call snapshot) — or ``("err", exception)`` for a typed
  :class:`~repro.errors.ReproError`.
* **What the parent does:** serves warm hits from the shared cache
  locally (only misses are dispatched), adopts returned entries into
  the shared :class:`~repro.core.compiled.CompletionCache` — *only*
  exhausted ones, and through :meth:`CompletionCache.put
  <repro.core.compiled.CompletionCache.put>` whose partial-result
  raise is the resilience backstop, so a truncated worker result can
  never poison the parent cache — records per-result metrics, keeps
  results in input order, and raises the earliest failing input's
  exception in submission order (identical semantics to the thread
  backend).

Some ambient state is *deliberately* not shipped: a live tracer, audit
log, or slow-query log would have to stream events back mid-search,
and a budget carrying a :class:`~repro.resilience.budget.CancelSignal`
or an injected clock closes over parent-process state that cannot be
pickled.  In all of those cases — and when the platform offers no
usable start method — :func:`process_batch` returns ``None`` and the
caller falls back to the thread backend (counted on the
``parallel.process_fallbacks`` metric), which preserves today's
semantics exactly.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.algebra.order import PartialOrder
from repro.core.domain import DomainKnowledge
from repro.errors import ReproError
from repro.model.schema import Schema
from repro.obs.metrics import get_metrics
from repro.obs.slowlog import get_slowlog
from repro.obs.tracer import get_tracer
from repro.resilience.budget import Budget

if TYPE_CHECKING:  # pragma: no cover - circular at runtime
    from repro.core.engine import Disambiguator

__all__ = [
    "EXECUTOR_MODES",
    "EXECUTOR_ENV_VAR",
    "WorkerSpec",
    "process_batch",
    "resolve_executor",
    "worker_spec_for",
]

#: Accepted values of the ``executor`` knob.
EXECUTOR_MODES = ("thread", "process")

#: Environment override consulted when no explicit mode is given.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


def resolve_executor(executor: str | None) -> str:
    """Resolve the ``executor`` knob: explicit value, else the
    ``REPRO_EXECUTOR`` environment override, else ``"thread"``."""
    if executor is None:
        executor = os.environ.get(EXECUTOR_ENV_VAR) or "thread"
    if executor not in EXECUTOR_MODES:
        raise ValueError(
            f"executor must be one of {EXECUTOR_MODES}, got {executor!r}"
        )
    return executor


@dataclasses.dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to rebuild the engine.

    Frozen and fully picklable by construction: the schema, order, and
    domain knowledge are value objects, and the budget is carried as
    its scalar limits (the worker reconstructs a
    :class:`~repro.resilience.budget.Budget` with the default monotonic
    clock; specs are only built for budgets without a cancel signal or
    injected clock — see :func:`worker_spec_for`).
    """

    schema: Schema
    order: PartialOrder
    domain_knowledge: DomainKnowledge
    e: int
    use_caution_sets: bool
    apply_inheritance_criterion: bool
    max_depth: int | None
    pruning: str
    kernel: str
    budget_limits: tuple | None  # (seconds, nodes, paths, depth, partial_ok, interval)

    def build_budget(self) -> Budget | None:
        if self.budget_limits is None:
            return None
        seconds, nodes, paths, depth, partial_ok, interval = self.budget_limits
        return Budget(
            max_seconds=seconds,
            max_nodes=nodes,
            max_paths=paths,
            max_stack_depth=depth,
            partial_ok=partial_ok,
            check_interval=interval,
        )


def worker_spec_for(
    engine: "Disambiguator", budget: Budget | None
) -> WorkerSpec | None:
    """The pool's job spec, or ``None`` when the hand-off is impossible.

    ``budget`` is the batch's effective budget (per-call override, else
    the engine default, else the ambient one — resolved by the caller
    so worker engines apply the same governance the sequential loop
    would).  Returns ``None`` — thread fallback — when ambient
    observability (tracer, audit, slow-query log) is live, since its
    event streams cannot follow the work into another process, or when
    the budget closes over parent-process state (a cancel signal, an
    injected clock).
    """
    from repro.core.audit import get_audit

    if get_tracer().enabled or get_audit().enabled or get_slowlog().enabled:
        return None
    budget_limits = None
    if budget is not None:
        if budget.cancel is not None or budget.clock is not time.monotonic:
            return None
        budget_limits = (
            budget.max_seconds,
            budget.max_nodes,
            budget.max_paths,
            budget.max_stack_depth,
            budget.partial_ok,
            budget.check_interval,
        )
    return WorkerSpec(
        schema=engine.schema,
        order=engine.order,
        domain_knowledge=engine.domain_knowledge,
        e=engine.e,
        use_caution_sets=engine.use_caution_sets,
        apply_inheritance_criterion=engine.apply_inheritance_criterion,
        max_depth=engine.max_depth,
        pruning=engine.pruning,
        kernel=engine.kernel,
        budget_limits=budget_limits,
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: The per-process engine, installed by the pool initializer.  One
#: worker process serves many expressions; the engine (and its compiled
#: artifact, via the content-keyed registry) is built exactly once.
_WORKER_ENGINE: "Disambiguator | None" = None


def _init_worker(spec: WorkerSpec) -> None:
    from repro.core.compiled import compile_schema
    from repro.core.engine import Disambiguator

    global _WORKER_ENGINE
    _WORKER_ENGINE = Disambiguator(
        compile_schema(
            spec.schema,
            order=spec.order,
            domain_knowledge=spec.domain_knowledge,
        ),
        e=spec.e,
        use_caution_sets=spec.use_caution_sets,
        apply_inheritance_criterion=spec.apply_inheritance_criterion,
        max_depth=spec.max_depth,
        budget=spec.build_budget(),
        pruning=spec.pruning,
        kernel=spec.kernel,
    )


def _complete_in_worker(text: str) -> tuple:
    """Run one completion in the worker; ship back result + new entries.

    The top-level entry is shipped even when it was already warm in
    *this* worker (a fork-inherited registry artifact can arrive
    pre-warmed): the parent dispatched the text because its own cache
    missed, so without the entry it would re-dispatch the same text on
    every batch.
    """
    engine = _WORKER_ENGINE
    assert engine is not None, "worker used before initialization"
    cache = engine.compiled.cache
    before = {key for key, _ in cache.entries()}
    try:
        result = engine.complete(text)
    except ReproError as err:
        return ("err", err)
    after = dict(cache.entries())
    entries = [
        (key, value)
        for key, value in after.items()
        if key not in before and value.exhausted
    ]
    if result.exhausted:
        key = engine._cache_key(text)
        if key in before and key in after:
            entries.append((key, after[key]))
    return ("ok", result, entries)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _pool_context():
    """The multiprocessing context for the batch pool, or ``None``.

    Prefers ``fork`` (no interpreter re-import, so worker start is
    milliseconds and the batch wins even at modest sizes), then
    ``forkserver``, then ``spawn``.  The spec is picklable either way;
    the preference is purely a start-cost ranking.
    """
    try:
        methods = multiprocessing.get_all_start_methods()
        for preferred in ("fork", "forkserver", "spawn"):
            if preferred in methods:
                return multiprocessing.get_context(preferred)
    except Exception:  # pragma: no cover - exotic platforms
        pass
    return None


def process_batch(
    engine: "Disambiguator",
    expressions: Sequence[str],
    jobs: int,
    budget: Budget | None,
) -> "list[tuple] | None":
    """Shard ``expressions`` across a process pool.

    ``expressions`` are already-normalized texts (the caller parses —
    parse errors never cross the boundary).  Returns a list of per-input
    outcomes in input order — ``("hit", result)`` for parent-cache warm
    hits, ``("ok", result, entries)`` for worker completions, ``("err",
    exception)`` — or ``None`` when the hand-off protocol cannot carry
    the ambient state (the caller falls back to threads).  Adoption,
    metrics, and exception policy stay with the caller so both backends
    share one merge path.
    """
    spec = worker_spec_for(engine, budget)
    context = _pool_context()
    if spec is None or context is None:
        get_metrics().counter("parallel.process_fallbacks").inc()
        return None
    outcomes: list[tuple | None] = [None] * len(expressions)
    pending: list[tuple[int, str]] = []
    cache = engine.compiled.cache
    for position, text in enumerate(expressions):
        key = engine._cache_key(text)
        cached = cache.get(key)
        if cached is not None:
            outcomes[position] = ("hit", cached)
        else:
            pending.append((position, text))
    if pending:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(spec,),
        ) as pool:
            futures = [
                pool.submit(_complete_in_worker, text)
                for _, text in pending
            ]
            for (position, _), future in zip(pending, futures):
                outcomes[position] = future.result()
    return outcomes  # type: ignore[return-value]
