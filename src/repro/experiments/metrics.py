"""Effectiveness metrics (paper Section 5.1).

Let U be the set of complete path expressions the user *meant* and S the
set the system returned.  Then

* recall    = |U ∩ S| / |U|  — proportion of relevant answers retrieved;
* precision = |U ∩ S| / |S|  — proportion of retrieved answers relevant.

Path expressions are compared as canonical strings (the renderer is
deterministic, so string equality is path equality).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

__all__ = ["recall", "precision", "EffectivenessPoint", "average"]


def recall(intended: Iterable[str], returned: Iterable[str]) -> float:
    """``|U ∩ S| / |U|``; vacuously 1.0 when U is empty."""
    intended = set(intended)
    if not intended:
        return 1.0
    return len(intended & set(returned)) / len(intended)


def precision(intended: Iterable[str], returned: Iterable[str]) -> float:
    """``|U ∩ S| / |S|``; vacuously 1.0 when S is empty.

    (An empty answer contains no irrelevant items; the recall metric is
    the one that punishes empty answers.)
    """
    returned = set(returned)
    if not returned:
        return 1.0
    return len(set(intended) & returned) / len(returned)


@dataclasses.dataclass(frozen=True)
class EffectivenessPoint:
    """Recall/precision of one query at one parameter setting."""

    query_id: str
    e: int
    recall: float
    precision: float
    returned_count: int
    intended_count: int


def average(values: Sequence[float]) -> float:
    """Plain average; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)
