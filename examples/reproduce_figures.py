"""Regenerate the paper's evaluation figures in one command.

Thin wrapper over :mod:`repro.experiments.runner`: runs the ten-query
workload across E values, prints the Figure 5/6/7 and in-text-statistic
reports with the paper's numbers alongside, and drops CSV series next
to this script for external plotting.

Run with::

    python examples/reproduce_figures.py            # quick (E up to 3)
    python examples/reproduce_figures.py --full     # the paper's E=5
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.runner import run_all


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="sweep E to 5 as the paper does (several minutes)",
    )
    parser.add_argument(
        "--csv-dir",
        default=str(Path(__file__).parent / "figure_csvs"),
        help="where to write the CSV series",
    )
    args = parser.parse_args()
    run_all(quick=not args.full, csv_dir=args.csv_dir)


if __name__ == "__main__":
    main()
