"""Tests for the schema graph view."""

import networkx as nx

from repro.algebra.connectors import Connector
from repro.model.graph import SchemaGraph


class TestEdges:
    def test_every_relationship_becomes_an_edge(self, university):
        graph = SchemaGraph(university)
        assert len(graph.edges()) == university.relationship_count

    def test_edges_carry_paper_labels(self, university):
        graph = SchemaGraph(university)
        edge = next(
            e
            for e in graph.edges_from("department")
            if e.name == "professor"
        )
        # the paper's example: label [$>, 1]
        assert edge.connector is Connector.HAS_PART
        assert edge.semantic_length == 1

    def test_children_sorted_best_connector_first(self, university):
        graph = SchemaGraph(university)
        ranks = [e.connector.sort_rank for e in graph.edges_from("ta")]
        assert ranks == sorted(ranks)

    def test_edges_named(self, university):
        graph = SchemaGraph(university)
        names = {e.source for e in graph.edges_named("name")}
        assert names == {"person", "course", "department", "university"}

    def test_out_degree(self, university):
        graph = SchemaGraph(university)
        assert graph.out_degree("ta") == 2  # the two Isa edges
        assert graph.out_degree("C") == 0


class TestExclusions:
    def test_excluded_class_removes_its_node_and_edges(self, university):
        graph = SchemaGraph(university, exclude_classes={"course"})
        assert "course" not in graph.nodes()
        assert all(e.target != "course" for e in graph.edges())
        assert all(e.source != "course" for e in graph.edges())

    def test_excluded_relationship_is_individual(self, university):
        graph = SchemaGraph(
            university, exclude_relationships={("student", "take")}
        )
        assert all(
            not (e.source == "student" and e.name == "take")
            for e in graph.edges()
        )
        # the inverse direction survives
        assert any(
            e.source == "course" and e.name == "student"
            for e in graph.edges()
        )

    def test_restricted_unions_exclusions(self, university):
        graph = SchemaGraph(university, exclude_classes={"course"})
        tighter = graph.restricted(exclude_classes={"university"})
        assert "course" not in tighter.nodes()
        assert "university" not in tighter.nodes()


class TestNetworkxExport:
    def test_export_shape(self, university):
        graph = SchemaGraph(university)
        exported = graph.to_networkx()
        assert isinstance(exported, nx.MultiDiGraph)
        assert exported.number_of_edges() == len(graph.edges())

    def test_edge_attributes(self, university):
        exported = SchemaGraph(university).to_networkx()
        data = exported.get_edge_data("department", "professor")
        assert any(attrs["kind"] == "$>" for attrs in data.values())

    def test_structural_stats_keys(self, university):
        stats = SchemaGraph(university).structural_stats()
        assert stats["nodes"] > 0
        assert stats["edges"] == university.relationship_count
        assert stats["max_out_degree"] >= stats["mean_out_degree"]
