"""Bench A2 — ablation of the caution sets (paper Section 4.1).

Without caution sets, Algorithm 2 degenerates to Algorithm 1's
distributivity-based pruning, which the paper warns loses plausible
answers.  The bench counts the answers lost per workload query.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablation import run_caution_ablation
from repro.experiments.reporting import table


@pytest.mark.benchmark(group="ablation-caution")
@pytest.mark.parametrize("e", [1, 2])
def test_caution_sets_on_off(benchmark, cupid, oracle, e):
    rows = benchmark.pedantic(
        run_caution_ablation,
        args=(cupid, oracle),
        kwargs={"e": e},
        rounds=1,
        iterations=1,
    )
    emit(
        f"Ablation A2: caution sets on/off (E={e})",
        table(
            ["query", "paths (caution)", "paths (no caution)", "lost"],
            [
                (
                    row.query_id,
                    row.paths_with_caution,
                    row.paths_without_caution,
                    len(row.lost_paths),
                )
                for row in rows
            ],
        ),
    )
    # disabling a rescue mechanism can only shrink the answer set
    for row in rows:
        assert row.paths_without_caution <= row.paths_with_caution
