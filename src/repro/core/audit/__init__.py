"""Search audit log — EXPLAIN ANALYZE for the disambiguation search.

:func:`repro.core.explain.explain_candidate` justifies a single named
candidate after the fact; this module makes the *search itself*
auditable.  A :class:`SearchAuditLog` installed via :func:`use_audit`
(the same ambient contextvar pattern as the tracer, metrics, slow log,
and budget) receives one compact record per decision the
:class:`~repro.core.completion.CompletionSearch` makes:

``search``
    One header per :meth:`~repro.core.completion.CompletionSearch.run`
    (root, target, E, effective pruning mode).  When an ambient
    request identity is set (:mod:`repro.obs.reqlog`), the header also
    carries ``request_id`` so serving-tier audit streams correlate
    with the access log and slow-query log.
``expand``
    A node entered by the DFS (the paper's recursive ``traverse`` call),
    with its depth, arriving edge, and accumulated label.
``cut``
    An edge *not* taken, with ``rule`` naming which test cut it:

    * ``visited`` / ``dead_end`` / ``max_depth`` — Algorithm 2's
      structural skips;
    * ``target_bound`` — the line-9 bound against ``best[T]`` (carries
      the candidate label and, in closure mode, the exact cutoff it
      exceeded);
    * ``best_bound`` — the lines-10/11 bound against ``best[u]``
      (carries the frontier it lost to);
    * ``reachability`` — closure mode only: the edge's child admits no
      completion, dropped at table-build time;
    * ``label_bound`` — closure mode only: every achievable composed
      connector's optimistic bound exceeds its ``best[T]`` cutoff
      (carries the per-connector ``(bound, cutoff)`` arithmetic).

    Every cut record carries ``caution: false`` — the caution-set
    exemption flag; exemptions that *prevented* a cut appear as
    ``rescue`` records instead.
``rescue``
    A caution-set exemption (AGG does not distribute over CON) that
    overrode a ``best_bound`` or ``label_bound`` cut.
``complete``
    A completing edge reached, with the candidate path, its label, and
    whether ``AGG*`` kept it at that moment.
``cache``
    A completion-cache lookup (hit/miss) with lineage provenance: the
    artifact fingerprint, its lineage depth (how many ``evolve()``
    steps produced it), and — on hits — whether the entry was
    ``carried`` across a schema delta by surgical adoption or
    ``computed`` by a search on this artifact.
``budget_trip``
    A resource budget truncating the search.
``agg_select``
    The finalization funnel: recorded candidates -> AGG*-optimal ->
    deduplicated -> preemption survivors.
``score``
    One per ranked completion: the itemized bill.  ``steps`` decomposes
    the semantic length edge by edge via the exact
    :class:`~repro.algebra.semantic_length.SemanticLengthState` join
    arithmetic (each step's ``delta`` is the length change
    ``extend(connector)`` caused, so the deltas telescope to the
    reported total — asserted by :func:`decompose_path`).

The default log is a shared no-op singleton: the traversal loops hoist
one ``audit.enabled`` check and the disabled path stays byte-identical
with bounded overhead (asserted in ``tests/core/test_audit.py`` and the
ledger-gated ``benchmarks/bench_audit.py``).

Three consumers ship with the module:

* ``repro explain --analyze`` and the session's ``:explain`` render the
  decision tree and score decomposition (:func:`render_analysis`);
* :meth:`SearchAuditLog.write_jsonl` exports records validated by the
  ``audit_record`` schema (``python -m repro.obs.validate`` sniffs the
  kind);
* ``python -m repro.core.audit diff`` replays queries under
  ``pruning=closure`` vs ``pruning=none`` and proves, record by
  record, that every divergence between the two searches is a cut
  backed by an admissible bound (:func:`diff_modes`) — the executable
  form of the closure layer's byte-identical A/B invariant.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from contextlib import contextmanager
from contextvars import ContextVar

from repro.algebra.labels import IDENTITY_LABEL
from repro.obs.reqlog import get_request_id

__all__ = [
    "AuditNode",
    "Divergence",
    "NullAuditLog",
    "QueryDiff",
    "SearchAuditLog",
    "audit_completion",
    "decompose_path",
    "diff_modes",
    "get_audit",
    "main",
    "reconstruct_forest",
    "reconstruct_tree",
    "render_analysis",
    "use_audit",
]


class NullAuditLog:
    """The shared disabled default: every hook is a guarded no-op."""

    __slots__ = ()

    enabled = False

    def record(self, kind: str, **attrs) -> None:
        """Drop the record."""

    def to_records(self) -> list[dict]:
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullAuditLog()"


class SearchAuditLog:
    """An in-memory, append-only log of search decision records.

    Records are plain dicts (``seq`` + ``kind`` + per-kind attributes)
    so export is a straight ``json.dumps`` per line and reconstruction
    needs no class registry.  Not thread-safe by design — install one
    per worker via :func:`use_audit` (contextvars are copied into
    :meth:`~repro.core.engine.Disambiguator.complete_batch` workers, so
    a shared log across jobs would interleave; audit one query at a
    time instead).
    """

    __slots__ = ("records",)

    enabled = True

    def __init__(self) -> None:
        self.records: list[dict] = []

    def record(self, kind: str, **attrs) -> dict:
        entry = {"seq": len(self.records), "kind": kind}
        if kind == "search":
            request_id = get_request_id()
            if request_id is not None:
                entry["request_id"] = request_id
        entry.update(attrs)
        self.records.append(entry)
        return entry

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def to_records(self) -> list[dict]:
        """Copies of the records, export-ready (schema-validatable)."""
        return [dict(record) for record in self.records]

    def of_kind(self, kind: str) -> list[dict]:
        return [record for record in self.records if record["kind"] == kind]

    def cut_counts(self) -> dict[str, int]:
        """How many cuts each rule made, for summaries."""
        counts: dict[str, int] = {}
        for record in self.records:
            if record["kind"] == "cut":
                rule = record["rule"]
                counts[rule] = counts.get(rule, 0) + 1
        return counts

    def write_jsonl(self, target) -> int:
        """Write one JSON object per line (path or open text handle);
        returns the record count."""
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.records
        )
        if hasattr(target, "write"):
            target.write(payload)
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(payload)
        return len(self.records)

    def render(self, max_nodes: int = 40) -> str:
        """Human-readable decision tree + funnel + itemized scores."""
        return render_analysis(self, max_nodes=max_nodes)

    def __repr__(self) -> str:
        return f"SearchAuditLog(records={len(self.records)})"


_NULL_AUDIT = NullAuditLog()
_ACTIVE: ContextVar[NullAuditLog | SearchAuditLog] = ContextVar(
    "repro_audit", default=_NULL_AUDIT
)


def get_audit() -> NullAuditLog | SearchAuditLog:
    """The ambient audit log (the shared no-op unless one is installed)."""
    return _ACTIVE.get()


@contextmanager
def use_audit(audit: NullAuditLog | SearchAuditLog):
    """Install ``audit`` as the ambient log for the ``with`` body."""
    token = _ACTIVE.set(audit)
    try:
        yield audit
    finally:
        _ACTIVE.reset(token)


# ----------------------------------------------------------------------
# Score decomposition
# ----------------------------------------------------------------------


def decompose_path(path) -> list[dict]:
    """Itemize a path's semantic length edge by edge.

    Replays the exact incremental label arithmetic the search ran —
    ``PathLabel.extend`` folds each connector through the CON table and
    the :class:`~repro.algebra.semantic_length.SemanticLengthState`
    seam/collapse rules — and reports each edge's length *delta*.  The
    deltas are not per-edge weights (a collapse can make one negative,
    a seam adjustment can exceed one) but they telescope: their sum is
    exactly the path's reported semantic length, which is what makes
    the bill trustworthy.  Asserted here, not just promised.
    """
    steps: list[dict] = []
    label = IDENTITY_LABEL
    for edge in path.edges:
        extended = label.extend(edge.connector)
        steps.append(
            {
                "edge": edge.name,
                "connector": edge.connector.symbol,
                "delta": extended.semantic_length - label.semantic_length,
                "length": extended.semantic_length,
                "label": str(extended),
            }
        )
        label = extended
    total = path.label().semantic_length
    if sum(step["delta"] for step in steps) != total:  # pragma: no cover
        raise AssertionError(
            f"decomposition of {path} does not telescope to {total}"
        )
    return steps


def record_scores(audit, paths) -> None:
    """Emit one ``score`` record per ranked completion (rank 1 first)."""
    for rank, path in enumerate(paths, start=1):
        label = path.label()
        audit.record(
            "score",
            rank=rank,
            path=str(path),
            label=str(label),
            total=label.semantic_length,
            steps=decompose_path(path),
        )


# ----------------------------------------------------------------------
# Decision-tree reconstruction
# ----------------------------------------------------------------------


@dataclasses.dataclass
class AuditNode:
    """One expanded node of the reconstructed decision tree."""

    record: dict
    children: list["AuditNode"] = dataclasses.field(default_factory=list)
    cuts: list[dict] = dataclasses.field(default_factory=list)
    rescues: list[dict] = dataclasses.field(default_factory=list)
    completions: list[dict] = dataclasses.field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record["node"]

    @property
    def depth(self) -> int:
        return self.record["depth"]


def reconstruct_forest(records) -> list[AuditNode]:
    """Rebuild the DFS decision tree(s) from a flat record stream.

    ``expand`` depths drive a stack replay (preorder with explicit
    depths is a faithful serialization of the walk); ``cut`` /
    ``rescue`` / ``complete`` records attach to the open node at their
    recorded depth.  One tree per search (a general expression's log
    holds one walk per ``~`` segment).  Raises ``ValueError`` on
    streams that do not describe well-nested walks — the JSONL
    round-trip test leans on this to prove export losslessness.
    """
    roots: list[AuditNode] = []
    stack: list[AuditNode] = []
    for record in records:
        kind = record["kind"]
        if kind == "expand":
            depth = record["depth"]
            if depth > len(stack):
                raise ValueError(
                    f"expand record {record['seq']} jumps to depth {depth} "
                    f"with only {len(stack)} open frames"
                )
            del stack[depth:]
            node = AuditNode(record=record)
            if not stack:
                roots.append(node)
            else:
                stack[-1].children.append(node)
            stack.append(node)
        elif kind in ("cut", "rescue", "complete"):
            depth = record["depth"]
            if depth >= len(stack):
                raise ValueError(
                    f"{kind} record {record['seq']} references closed "
                    f"depth {depth}"
                )
            del stack[depth + 1 :]
            owner = stack[depth]
            if owner.name != record["node"]:
                raise ValueError(
                    f"{kind} record {record['seq']} names {record['node']!r} "
                    f"but the open frame at depth {depth} is {owner.name!r}"
                )
            if kind == "cut":
                owner.cuts.append(record)
            elif kind == "rescue":
                owner.rescues.append(record)
            else:
                owner.completions.append(record)
        # search / cache / budget_trip / agg_select / score records are
        # per-run metadata, not tree content.
    return roots


def reconstruct_tree(records) -> AuditNode | None:
    """The single-walk form of :func:`reconstruct_forest`.

    Raises ``ValueError`` when the stream holds more than one walk —
    the diff engine and the round-trip tests audit exactly one search.
    """
    roots = reconstruct_forest(records)
    if len(roots) > 1:
        raise ValueError(f"expected one search walk, found {len(roots)}")
    return roots[0] if roots else None


def _preorder(node: AuditNode):
    yield node
    for child in node.children:
        yield from _preorder(child)


def _walk_forest(roots: list[AuditNode]):
    for root in roots:
        yield from _preorder(root)


def render_analysis(
    log: SearchAuditLog, max_nodes: int = 40
) -> str:
    """The ``EXPLAIN ANALYZE`` rendering: header, tree, funnel, bill."""
    lines: list[str] = []
    records = log.records
    for header in log.of_kind("search"):
        lines.append(
            f"search {header['root']} ~ {header['target']} "
            f"(e={header['e']}, pruning={header['pruning']})"
        )
    for cache in log.of_kind("cache"):
        provenance = cache.get("provenance")
        detail = f", {provenance}" if provenance else ""
        lines.append(
            f"cache {cache['outcome']} [{cache['scope']}] "
            f"artifact {cache['fingerprint']} "
            f"(lineage depth {cache['lineage_depth']}{detail})"
        )
    roots = reconstruct_forest(records)
    if roots:
        lines.append("decision tree:")
        emitted = 0
        truncated = False
        for node in _walk_forest(roots):
            if emitted >= max_nodes:
                truncated = True
                break
            indent = "  " * (node.depth + 1)
            via = (
                f" via {node.record['edge']}"
                if node.record.get("edge")
                else ""
            )
            summary = []
            if node.cuts:
                rules: dict[str, int] = {}
                for cut in node.cuts:
                    rules[cut["rule"]] = rules.get(cut["rule"], 0) + 1
                summary.append(
                    "cut "
                    + ", ".join(
                        f"{count}x {rule}"
                        for rule, count in sorted(rules.items())
                    )
                )
            if node.rescues:
                summary.append(f"{len(node.rescues)} caution rescue(s)")
            for completion in node.completions:
                flag = "kept" if completion["kept"] else "dropped"
                summary.append(
                    f"complete {completion['path']} "
                    f"{completion['label']} [{flag}]"
                )
            suffix = f"  ({'; '.join(summary)})" if summary else ""
            lines.append(
                f"{indent}{node.name}{via} {node.record['label']}{suffix}"
            )
            emitted += 1
        if truncated:
            expansions = len(log.of_kind("expand"))
            lines.append(
                f"  ... {expansions - emitted} more expansions "
                f"(of {expansions} total)"
            )
    counts = log.cut_counts()
    if counts:
        lines.append(
            "cuts: "
            + ", ".join(
                f"{rule}={count}" for rule, count in sorted(counts.items())
            )
        )
    for trip in log.of_kind("budget_trip"):
        lines.append(f"budget trip: {trip['reason']}")
    for funnel in log.of_kind("agg_select"):
        lines.append(
            f"selection: {funnel['candidates']} recorded -> "
            f"{funnel['optimal_labels']} optimal label(s) -> "
            f"{funnel['survivors']} survivor(s), "
            f"{funnel['preempted']} preempted"
        )
    scores = log.of_kind("score")
    if scores:
        lines.append("score decomposition:")
        for score in scores:
            lines.append(
                f"  #{score['rank']} {score['path']}  {score['label']} "
                f"(semantic length {score['total']})"
            )
            for step in score["steps"]:
                lines.append(
                    f"      .{step['edge']} ({step['connector']}) "
                    f"{step['delta']:+d} -> {step['length']}  "
                    f"{step['label']}"
                )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Audited cold runs and the cross-mode diff
# ----------------------------------------------------------------------


def audit_completion(
    schema, text: str, e: int = 1, pruning: str | None = None, order=None
):
    """Run one *cold* single-gap completion with a fresh audit log.

    Deliberately bypasses the completion cache (a warm hit replays no
    decisions, so there would be nothing to audit) by driving the
    compiled artifact's shared searcher directly.  Returns
    ``(CompletionResult, SearchAuditLog)``.
    """
    from repro.core.compiled import CompiledSchema, compile_schema
    from repro.core.parser import parse_path_expression
    from repro.core.target import RelationshipTarget

    compiled = (
        schema
        if isinstance(schema, CompiledSchema)
        else compile_schema(schema, order=order)
    )
    expression = parse_path_expression(str(text))
    if not expression.is_simple_incomplete:
        raise ValueError(
            f"audit replay covers single-gap queries (s ~ N); got "
            f"{expression!s}"
        )
    searcher = compiled.searcher(e=e, pruning=pruning)
    log = SearchAuditLog()
    with use_audit(log):
        result = searcher.run(
            expression.root, RelationshipTarget(expression.last_name)
        )
    return result, log


#: Cut rules that legitimately explain an edge the *other* mode
#: expanded.  The closure mode's extra rules (reachability,
#: label_bound) plus the shared bounds: one-sided subtrees perturb the
#: best[T]/best[u] frontiers mid-search, so either mode can fire a
#: shared bound the other did not — the final results still agree,
#: which the diff asserts separately.
_EXPLAINING_RULES = frozenset(
    {
        "reachability",
        "label_bound",
        "target_bound",
        "best_bound",
        "visited",
        "dead_end",
        "max_depth",
    }
)


def _cut_admissible(cut: dict) -> bool:
    """Re-verify a bound cut's arithmetic from the record alone."""
    rule = cut["rule"]
    if cut.get("caution"):
        return False  # a caution-exempt label must never be cut
    if rule == "label_bound":
        bounds = cut.get("bounds", ())
        return bool(bounds) and all(
            entry["bound"] > entry["cutoff"] for entry in bounds
        )
    if rule == "target_bound" and "cutoff" in cut:
        return cut["length"] > cut["cutoff"]
    # Structural rules and the frontier-carrying reference bounds are
    # admissible by construction; the record still carries the frontier
    # for human inspection.
    return True


@dataclasses.dataclass
class Divergence:
    """One edge expanded in one mode but not the other."""

    path: tuple[str, ...]  # class names, root .. parent
    edge: str
    child: str
    expanded_in: str  # the mode that walked through the edge
    rule: str | None  # the other mode's cut rule; None = unexplained
    admissible: bool = False

    def describe(self) -> str:
        where = ".".join(self.path) or "<root>"
        if self.rule is None:
            return (
                f"UNEXPLAINED: {where} --{self.edge}--> {self.child} "
                f"expanded under {self.expanded_in} with no matching "
                "cut in the other mode"
            )
        flag = "admissible" if self.admissible else "NOT ADMISSIBLE"
        return (
            f"{where} --{self.edge}--> {self.child}: expanded under "
            f"{self.expanded_in}, cut by {self.rule} ({flag})"
        )


@dataclasses.dataclass
class QueryDiff:
    """The cross-mode audit of one query at one E."""

    query: str
    e: int
    identical_results: bool
    reference_expansions: int
    closure_expansions: int
    explained: list[Divergence]
    unexplained: list[Divergence]

    @property
    def ok(self) -> bool:
        """Every divergence explained by an admissible cut, results equal."""
        return (
            self.identical_results
            and not self.unexplained
            and all(d.admissible for d in self.explained)
        )

    def render(self) -> str:
        status = "OK" if self.ok else "FAIL"
        lines = [
            f"[{status}] {self.query} (e={self.e}): "
            f"{self.reference_expansions} reference vs "
            f"{self.closure_expansions} closure expansions, "
            f"{len(self.explained)} divergence(s) explained, "
            f"{len(self.unexplained)} unexplained, results "
            + ("identical" if self.identical_results else "DIFFER")
        ]
        rules: dict[str, int] = {}
        for divergence in self.explained:
            rules[divergence.rule] = rules.get(divergence.rule, 0) + 1
        if rules:
            lines.append(
                "  explained by: "
                + ", ".join(
                    f"{rule}={count}" for rule, count in sorted(rules.items())
                )
            )
        for divergence in self.unexplained:
            lines.append("  " + divergence.describe())
        for divergence in self.explained:
            if not divergence.admissible:
                lines.append("  " + divergence.describe())
        return "\n".join(lines)


def _outcomes(node: AuditNode) -> dict[tuple[str, str], tuple[str, object]]:
    """Per considered interior edge of one node entry: what happened.

    Keyed by ``(edge name, child class)``; the value is ``("expand",
    AuditNode)`` or ``("cut", record)``.  Each out-edge is considered at
    most once per entry, so the mapping is lossless.
    """
    outcomes: dict[tuple[str, str], tuple[str, object]] = {}
    for child in node.children:
        record = child.record
        outcomes[(record["edge"], record["node"])] = ("expand", child)
    for cut in node.cuts:
        outcomes[(cut["edge"], cut["child"])] = ("cut", cut)
    return outcomes


def diff_modes(schema, text: str, e: int = 1, order=None) -> QueryDiff:
    """Audit one query under both pruning modes and align the walks.

    Both searches are replayed cold with audit enabled; the two
    decision trees are walked together from the root.  At every
    mutually expanded node the per-edge outcomes are compared: an edge
    expanded by one mode must carry a cut record in the other, and
    bound-backed cuts must re-verify their arithmetic
    (:func:`_cut_admissible`).  Only mutually expanded children are
    descended into — a one-sided subtree is already accounted for by
    the cut that created it.  Ranked paths, labels, and exhaustion are
    compared for byte-identity on top.
    """
    ref_result, ref_log = audit_completion(
        schema, text, e=e, pruning="none", order=order
    )
    clo_result, clo_log = audit_completion(
        schema, text, e=e, pruning="closure", order=order
    )
    identical = (
        [str(p) for p in ref_result.paths]
        == [str(p) for p in clo_result.paths]
        and [str(l) for l in ref_result.labels]
        == [str(l) for l in clo_result.labels]
        and ref_result.exhausted == clo_result.exhausted
    )
    explained: list[Divergence] = []
    unexplained: list[Divergence] = []

    def visit(ref_node: AuditNode, clo_node: AuditNode, trail: tuple[str, ...]):
        ref_out = _outcomes(ref_node)
        clo_out = _outcomes(clo_node)
        for key in ref_out.keys() | clo_out.keys():
            edge, child = key
            ref_kind, ref_payload = ref_out.get(key, (None, None))
            clo_kind, clo_payload = clo_out.get(key, (None, None))
            if ref_kind == "expand" and clo_kind == "expand":
                visit(ref_payload, clo_payload, trail + (ref_node.name,))
            elif ref_kind == "expand":
                rule = clo_payload["rule"] if clo_kind == "cut" else None
                bucket = Divergence(
                    path=trail + (ref_node.name,),
                    edge=edge,
                    child=child,
                    expanded_in="none",
                    rule=rule if rule in _EXPLAINING_RULES else None,
                    admissible=(
                        clo_kind == "cut" and _cut_admissible(clo_payload)
                    ),
                )
                (unexplained if bucket.rule is None else explained).append(
                    bucket
                )
            elif clo_kind == "expand":
                rule = ref_payload["rule"] if ref_kind == "cut" else None
                bucket = Divergence(
                    path=trail + (clo_node.name,),
                    edge=edge,
                    child=child,
                    expanded_in="closure",
                    rule=rule if rule in _EXPLAINING_RULES else None,
                    admissible=(
                        ref_kind == "cut" and _cut_admissible(ref_payload)
                    ),
                )
                (unexplained if bucket.rule is None else explained).append(
                    bucket
                )
            # cut in both modes: agreement, nothing to explain.
        # The completing edges considered at a matched node must match
        # exactly (the ancestors, hence the cycle filter, are shared);
        # a one-sided candidate would be an unexplained divergence.
        ref_complete = {c["edge"] for c in ref_node.completions}
        clo_complete = {c["edge"] for c in clo_node.completions}
        for edge in ref_complete ^ clo_complete:
            unexplained.append(
                Divergence(
                    path=trail + (ref_node.name,),
                    edge=edge,
                    child=ref_node.name,
                    expanded_in=(
                        "none" if edge in ref_complete else "closure"
                    ),
                    rule=None,
                )
            )

    ref_root = reconstruct_tree(ref_log.records)
    clo_root = reconstruct_tree(clo_log.records)
    if ref_root is not None and clo_root is not None:
        visit(ref_root, clo_root, ())
    elif (ref_root is None) != (clo_root is None):  # pragma: no cover
        unexplained.append(
            Divergence(
                path=(),
                edge="<root>",
                child=text,
                expanded_in="none" if ref_root is not None else "closure",
                rule=None,
            )
        )
    return QueryDiff(
        query=text,
        e=e,
        identical_results=identical,
        reference_expansions=len(ref_log.of_kind("expand")),
        closure_expansions=len(clo_log.of_kind("expand")),
        explained=explained,
        unexplained=unexplained,
    )


# ----------------------------------------------------------------------
# CLI: python -m repro.core.audit diff
# ----------------------------------------------------------------------


def _load_schema(name: str):
    if name == "cupid":
        from repro.schemas.cupid import build_cupid_schema

        return build_cupid_schema()
    from repro.schemas.university import build_university_schema

    return build_university_schema()


def _default_queries(builtin: str) -> list[str]:
    if builtin == "cupid":
        from repro.experiments.workload import build_cupid_workload

        return [query.text for query in build_cupid_workload()]
    return ["ta ~ name"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.audit",
        description=(
            "Replay queries under pruning=closure vs pruning=none with "
            "the audit log enabled and prove every divergence is a cut "
            "backed by an admissible bound."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    diff = sub.add_parser(
        "diff", help="cross-mode replay over one or more queries"
    )
    diff.add_argument(
        "--builtin",
        choices=("cupid", "university"),
        default="cupid",
        help="built-in schema to replay against (default: cupid)",
    )
    diff.add_argument(
        "-e",
        "--e-max",
        type=int,
        default=3,
        dest="e_max",
        help="sweep E=1..E_MAX (default: 3)",
    )
    diff.add_argument(
        "queries",
        nargs="*",
        help=(
            "queries to replay (default: the ten Section-5 CUPID "
            "workload queries)"
        ),
    )
    args = parser.parse_args(argv)

    schema = _load_schema(args.builtin)
    queries = args.queries or _default_queries(args.builtin)
    failures = 0
    for text in queries:
        for e in range(1, args.e_max + 1):
            report = diff_modes(schema, text, e=e)
            print(report.render())
            if not report.ok:
                failures += 1
    if failures:
        print(f"{failures} query/E combination(s) FAILED", file=sys.stderr)
        return 1
    print(
        f"all {len(queries) * args.e_max} query/E combinations verified: "
        "every divergence is an admissible cut"
    )
    return 0
