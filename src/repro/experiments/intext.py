"""The in-text statistics of paper Section 5.3.

Quoted claims this module regenerates on the synthetic workload:

* "an average of over 500 acyclic path expressions are consistent with
  each incomplete path expression" — the size of Ψ, via exhaustive
  enumeration (counted with a safety cap; the synthetic schema is more
  richly connected than a count of 500 suggests, so the cap reports a
  lower bound);
* "only 2-3 of them are returned by the algorithm when E=1";
* "the average length of path expressions returned as an answer by the
  system was about 15" (actual edge count, not semantic length);
* the schema size itself (92 user-defined classes, 364 relationships).
"""

from __future__ import annotations

import dataclasses

from repro.core.enumerate import count_consistent_paths
from repro.core.target import RelationshipTarget
from repro.experiments.harness import run_workload
from repro.experiments.oracle import DesignerOracle
from repro.experiments.reporting import table
from repro.model.graph import SchemaGraph
from repro.model.schema import Schema

__all__ = ["InTextStats", "run_intext_stats", "render_intext_stats"]

#: The paper's published values.
PAPER_AVG_CONSISTENT = 500       # "over 500"
PAPER_RETURNED_AT_E1 = (2, 3)    # "only 2-3 of them"
PAPER_AVG_ANSWER_LENGTH = 15
PAPER_CLASSES = 92
PAPER_RELATIONSHIPS = 364


@dataclasses.dataclass(frozen=True)
class InTextStats:
    """Measured counterparts of the in-text claims."""

    classes: int
    relationships: int
    per_query_consistent: tuple[tuple[str, int, bool], ...]  # id, count, capped
    average_consistent: float
    average_returned_e1: float
    average_answer_length_e1: float

    @property
    def consistent_exceeds_500(self) -> bool:
        return self.average_consistent > PAPER_AVG_CONSISTENT


def run_intext_stats(
    schema: Schema,
    oracle: DesignerOracle,
    enumeration_cap: int = 200_000,
) -> InTextStats:
    """Measure every in-text statistic on the given workload."""
    graph = SchemaGraph(schema)
    per_query: list[tuple[str, int, bool]] = []
    for query in oracle:
        # Workload queries are the simple form  root ~ name.
        from repro.core.parser import parse_path_expression

        expression = parse_path_expression(query.text)
        count = count_consistent_paths(
            graph,
            expression.root,
            RelationshipTarget(expression.last_name),
            max_paths=enumeration_cap,
            # bound the work too: counts are lower bounds once either
            # cap is hit, which suffices for the "over 500" claim
            max_visits=enumeration_cap * 50,
        )
        per_query.append((query.query_id, count, count >= enumeration_cap))

    outcomes = run_workload(schema, oracle, e=1)
    returned_counts = [float(o.returned_count) for o in outcomes]
    lengths = [o.mean_returned_length for o in outcomes if o.returned]

    return InTextStats(
        classes=schema.user_class_count,
        relationships=schema.relationship_count,
        per_query_consistent=tuple(per_query),
        average_consistent=(
            sum(count for _, count, _ in per_query) / len(per_query)
            if per_query
            else 0.0
        ),
        average_returned_e1=(
            sum(returned_counts) / len(returned_counts)
            if returned_counts
            else 0.0
        ),
        average_answer_length_e1=(
            sum(lengths) / len(lengths) if lengths else 0.0
        ),
    )


def render_intext_stats(stats: InTextStats) -> str:
    """Text rendering of the Section 5.3 in-text claims."""
    rows = [
        (
            "schema size",
            f"{PAPER_CLASSES} classes / {PAPER_RELATIONSHIPS} rels",
            f"{stats.classes} classes / {stats.relationships} rels",
        ),
        (
            "avg consistent acyclic paths",
            f"> {PAPER_AVG_CONSISTENT}",
            f"{stats.average_consistent:,.0f}"
            + (
                " (capped)"
                if any(capped for _, _, capped in stats.per_query_consistent)
                else ""
            ),
        ),
        (
            "avg returned at E=1",
            f"{PAPER_RETURNED_AT_E1[0]}-{PAPER_RETURNED_AT_E1[1]}",
            f"{stats.average_returned_e1:.1f}",
        ),
        (
            "avg answer length (edges)",
            f"~{PAPER_AVG_ANSWER_LENGTH}",
            f"{stats.average_answer_length_e1:.1f}",
        ),
    ]
    detail = table(
        ["query", "consistent paths", "hit cap"],
        [
            (qid, f"{count:,}", "yes" if capped else "no")
            for qid, count, capped in stats.per_query_consistent
        ],
    )
    return "\n".join(
        [
            "In-text statistics (paper Section 5.3)",
            "",
            table(["statistic", "paper", "measured"], rows),
            "",
            detail,
            "",
            "(consistent-path counts are lower bounds under the "
            "enumeration's path/visit budget)",
        ]
    )
