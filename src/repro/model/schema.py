"""The schema container (paper Section 2.1).

A :class:`Schema` is a set of classes plus a set of directed, named,
kinded relationships between them — exactly the directed graph the paper
draws (rectangles for user classes, circles for primitives).  The four
primitive classes are always present.

Relationships are identified by ``(source class, name)``.  Following the
paper, :meth:`Schema.add_relationship` installs the inverse relationship
automatically unless told otherwise, and names default to the target
class name.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator

from repro.errors import (
    DuplicateClassError,
    DuplicateRelationshipError,
    InheritanceCycleError,
    InvalidRelationshipError,
    PrimitiveClassError,
    SchemaError,
    UnknownClassError,
    UnknownRelationshipError,
)
from repro.model.classes import ClassDef, PRIMITIVE_CLASS_NAMES, primitive_classes
from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship

__all__ = ["Schema"]


class Schema:
    """A database schema: classes and the relationships between them.

    Parameters
    ----------
    name:
        Optional schema name, used in reports and serialization.

    Examples
    --------
    >>> schema = Schema("tiny")
    >>> _ = schema.add_class("person")
    >>> _ = schema.add_class("student")
    >>> _ = schema.add_relationship(
    ...     "student", "person", RelationshipKind.ISA)
    >>> sorted(r.name for r in schema.relationships_from("student"))
    ['person']
    """

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._classes: dict[str, ClassDef] = {}
        self._relationships: dict[tuple[str, str], Relationship] = {}
        # Outgoing relationship keys per source class, in insertion order.
        self._outgoing: dict[str, list[tuple[str, str]]] = {}
        for cls in primitive_classes():
            self._install_class(cls)

    # ------------------------------------------------------------------
    # Classes
    # ------------------------------------------------------------------

    def _install_class(self, cls: ClassDef) -> None:
        self._classes[cls.name] = cls
        self._outgoing.setdefault(cls.name, [])

    def add_class(self, name: str, doc: str = "") -> ClassDef:
        """Add a user-defined class and return its definition.

        Raises :class:`~repro.errors.DuplicateClassError` if a class with
        this name already exists (including the primitives).
        """
        if name in self._classes:
            raise DuplicateClassError(name)
        cls = ClassDef(name, primitive=False, doc=doc)
        self._install_class(cls)
        return cls

    def add_classes(self, names: Iterable[str]) -> list[ClassDef]:
        """Add several user-defined classes at once."""
        return [self.add_class(name) for name in names]

    def has_class(self, name: str) -> bool:
        """True if a class with this name exists."""
        return name in self._classes

    def get_class(self, name: str) -> ClassDef:
        """Return the class definition, raising on unknown names."""
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(name) from None

    def classes(self, include_primitives: bool = True) -> list[ClassDef]:
        """All classes, optionally excluding the four primitives."""
        values = self._classes.values()
        if include_primitives:
            return list(values)
        return [cls for cls in values if not cls.primitive]

    @property
    def class_names(self) -> list[str]:
        """Names of all classes, primitives included."""
        return list(self._classes)

    @property
    def user_class_count(self) -> int:
        """Number of user-defined (non-primitive) classes."""
        return len(self._classes) - len(PRIMITIVE_CLASS_NAMES)

    # ------------------------------------------------------------------
    # Relationships
    # ------------------------------------------------------------------

    def add_relationship(
        self,
        source: str,
        target: str,
        kind: RelationshipKind,
        name: str = "",
        inverse_name: str = "",
        add_inverse: bool = True,
        doc: str = "",
    ) -> Relationship:
        """Declare a relationship (and, by default, its inverse).

        Parameters
        ----------
        source, target:
            Names of existing classes.
        kind:
            Relationship kind; the inverse gets the inverse kind.
        name:
            Relationship name; defaults to the target class name.
        inverse_name:
            Name for the auto-installed inverse; defaults to the source
            class name.
        add_inverse:
            The paper assumes every relationship's inverse is present;
            pass False to opt out (e.g. for attribute-like edges into
            primitive classes, whose inverses are rarely meaningful).
        """
        source_cls = self.get_class(source)
        self.get_class(target)
        if source_cls.primitive:
            raise PrimitiveClassError(source, "add a relationship from")
        rel = Relationship(source, target, kind, name=name, doc=doc)
        self._install_relationship(rel)
        if add_inverse:
            if self.get_class(target).primitive:
                raise PrimitiveClassError(
                    target, "add an (inverse) relationship from"
                )
            self._install_relationship(rel.make_inverse(inverse_name))
        return rel

    def refine_relationship(
        self,
        subclass: str,
        name: str,
        new_target: str,
        add_inverse: bool = True,
        inverse_name: str = "",
    ) -> Relationship:
        """Refine an inherited relationship on a subclass (Section 2.1).

        The paper: "The subclass may refine (redefine) these
        relationships."  Refinement is covariant: the new target must be
        the inherited target or one of its subclasses, and the kind is
        inherited unchanged.  The refining declaration then shadows the
        inherited one (see :mod:`repro.model.inheritance`).
        """
        from repro.model.inheritance import is_subclass_of, resolve_inherited

        inherited = resolve_inherited(self, subclass, name)
        if inherited is None:
            raise UnknownRelationshipError(subclass, name)
        if inherited.source == subclass:
            raise InvalidRelationshipError(
                f"{subclass}.{name} is declared on the class itself; "
                "nothing to refine"
            )
        if not is_subclass_of(self, new_target, inherited.target):
            raise InvalidRelationshipError(
                f"refinement of {inherited.source}.{name} must target "
                f"{inherited.target!r} or a subclass of it, "
                f"got {new_target!r}"
            )
        target_is_primitive = self.get_class(new_target).primitive
        return self.add_relationship(
            subclass,
            new_target,
            inherited.kind,
            name=name,
            inverse_name=inverse_name,
            add_inverse=add_inverse and not target_is_primitive,
            doc=f"refines {inherited.source}.{name}",
        )

    def add_attribute(
        self, source: str, name: str, primitive: str = "C"
    ) -> Relationship:
        """Shorthand for an association into a primitive class.

        Attributes (e.g. ``person.name`` into strings) are plain
        Is-Associated-With relationships whose target is a primitive class
        and which have no inverse.
        """
        if primitive not in PRIMITIVE_CLASS_NAMES:
            raise SchemaError(
                f"attribute target must be a primitive class, got {primitive!r}"
            )
        return self.add_relationship(
            source,
            primitive,
            RelationshipKind.IS_ASSOCIATED_WITH,
            name=name,
            add_inverse=False,
        )

    def _install_relationship(self, rel: Relationship) -> None:
        if rel.key in self._relationships:
            raise DuplicateRelationshipError(*rel.key)
        self._relationships[rel.key] = rel
        self._outgoing[rel.source].append(rel.key)

    def remove_relationship(self, source: str, name: str) -> Relationship:
        """Remove the relationship ``(source, name)`` and return it.

        Removes exactly one directed edge — the inverse, if one was
        installed, stays and must be removed separately (mirroring the
        single-edge granularity of :mod:`repro.model.delta` commands).
        Raises :class:`~repro.errors.UnknownRelationshipError` if absent.
        """
        rel = self.get_relationship(source, name)
        del self._relationships[rel.key]
        self._outgoing[source].remove(rel.key)
        return rel

    def remove_attribute(self, source: str, name: str) -> Relationship:
        """Remove an attribute (an association into a primitive class).

        The counterpart of :meth:`add_attribute`: refuses to remove a
        relationship whose target is not primitive, so callers reaching
        for the attribute shorthand cannot silently drop a class-level
        relationship with the same name.
        """
        rel = self.get_relationship(source, name)
        if not self.get_class(rel.target).primitive:
            raise SchemaError(
                f"{source}.{name} targets class {rel.target!r}, not a "
                "primitive; use remove_relationship"
            )
        return self.remove_relationship(source, name)

    def remove_class(self, name: str, cascade: bool = False) -> ClassDef:
        """Remove a user-defined class and return its definition.

        By default the class must be isolated: any relationship still
        touching it (outgoing or incoming) is a dangling reference and
        raises :class:`~repro.errors.SchemaError`.  With ``cascade=True``
        every such relationship is removed first.  Primitive classes can
        never be removed.
        """
        cls = self.get_class(name)
        if cls.primitive:
            raise PrimitiveClassError(name, "remove")
        dangling = [
            rel
            for rel in self._relationships.values()
            if rel.source == name or rel.target == name
        ]
        if dangling and not cascade:
            listing = ", ".join(str(rel) for rel in sorted(
                dangling, key=lambda rel: rel.key
            ))
            raise SchemaError(
                f"cannot remove class {name!r}: still referenced by "
                f"{listing}"
            )
        for rel in dangling:
            self.remove_relationship(rel.source, rel.name)
        del self._classes[name]
        del self._outgoing[name]
        return cls

    # ------------------------------------------------------------------
    # Deltas / copying
    # ------------------------------------------------------------------

    def apply(self, delta: object) -> "Schema":
        """Apply a :class:`~repro.model.delta.SchemaDelta` in place.

        Duck-typed on ``apply_to`` so the model layer does not import
        the delta module (which imports this one).  Returns ``self`` for
        chaining.
        """
        delta.apply_to(self)  # type: ignore[attr-defined]
        return self

    def copy(self, name: str | None = None) -> "Schema":
        """An independent, mutable copy of this schema.

        Classes and relationships are frozen values, so the copy shares
        them and only duplicates the containers — editing the copy never
        disturbs the original.  This is what :meth:`CompiledSchema.evolve
        <repro.core.compiled.CompiledSchema.evolve>` edits, keeping the
        source artifact's schema immutable in practice.
        """
        clone = Schema.__new__(Schema)
        clone.name = self.name if name is None else name
        clone._classes = dict(self._classes)
        clone._relationships = dict(self._relationships)
        clone._outgoing = {
            source: list(keys) for source, keys in self._outgoing.items()
        }
        return clone

    def has_relationship(self, source: str, name: str) -> bool:
        """True if ``source`` declares a relationship named ``name``."""
        return (source, name) in self._relationships

    def get_relationship(self, source: str, name: str) -> Relationship:
        """Return the relationship identified by ``(source, name)``."""
        try:
            return self._relationships[(source, name)]
        except KeyError:
            raise UnknownRelationshipError(source, name) from None

    def relationships(self) -> list[Relationship]:
        """All declared relationships (inverses included)."""
        return list(self._relationships.values())

    def relationships_from(self, source: str) -> list[Relationship]:
        """Outgoing relationships of ``source``, in declaration order."""
        self.get_class(source)
        return [self._relationships[key] for key in self._outgoing[source]]

    def relationships_named(self, name: str) -> list[Relationship]:
        """Every relationship in the schema with the given name."""
        return [r for r in self._relationships.values() if r.name == name]

    def relationships_into(self, target: str) -> list[Relationship]:
        """All relationships whose target class is ``target``."""
        return [r for r in self._relationships.values() if r.target == target]

    @property
    def relationship_count(self) -> int:
        """Total number of declared relationships (inverses included)."""
        return len(self._relationships)

    def relationship_names(self) -> set[str]:
        """The set of all relationship names in the schema."""
        return {r.name for r in self._relationships.values()}

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable content hash of the schema (hex digest).

        Covers everything the completion semantics depend on: the class
        set and each relationship's ``(source, name, target, kind)`` —
        Isa edges included, so the inheritance structure is covered too.
        Documentation strings, the schema's display name, and
        declaration order are deliberately excluded: two schemas with
        the same classes and relationships disambiguate identically and
        therefore share a fingerprint.  Any mutation that adds, removes,
        or retargets a class or relationship changes the digest, which
        is what lets :mod:`repro.core.compiled` detect staleness.
        """
        hasher = hashlib.sha256()
        for name in sorted(self._classes):
            cls = self._classes[name]
            hasher.update(f"C|{name}|{int(cls.primitive)}\n".encode())
        for key in sorted(self._relationships):
            rel = self._relationships[key]
            hasher.update(
                f"R|{rel.source}|{rel.name}|{rel.target}|"
                f"{rel.kind.symbol}\n".encode()
            )
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Inheritance helpers (thin wrappers; full logic in model.inheritance)
    # ------------------------------------------------------------------

    def isa_parents(self, name: str) -> list[str]:
        """Direct superclasses of ``name`` (targets of its Isa edges)."""
        return [
            r.target
            for r in self.relationships_from(name)
            if r.kind is RelationshipKind.ISA
        ]

    def isa_children(self, name: str) -> list[str]:
        """Direct subclasses of ``name`` (sources of Isa edges into it)."""
        self.get_class(name)
        return [
            r.source
            for r in self._relationships.values()
            if r.kind is RelationshipKind.ISA and r.target == name
        ]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, require_inverses: bool = False) -> list[str]:
        """Check structural invariants; return a list of problem strings.

        Raises nothing — callers decide whether warnings are fatal.  The
        Isa-acyclicity check *does* raise
        :class:`~repro.errors.InheritanceCycleError` because a cyclic
        inheritance graph breaks every downstream algorithm.
        """
        problems: list[str] = []
        self._check_isa_acyclic()
        if require_inverses:
            for rel in self._relationships.values():
                if self.get_class(rel.target).primitive:
                    continue
                if not any(
                    other.is_inverse_of(rel)
                    for other in self.relationships_from(rel.target)
                ):
                    problems.append(f"missing inverse for {rel}")
        return problems

    def _check_isa_acyclic(self) -> None:
        """Raise if Isa edges form a cycle (three-color DFS)."""
        state: dict[str, int] = {}  # 0 absent, 1 on stack, 2 done

        def visit(node: str, stack: list[str]) -> None:
            state[node] = 1
            stack.append(node)
            for parent in self.isa_parents(node):
                mark = state.get(parent, 0)
                if mark == 1:
                    cycle = stack[stack.index(parent):] + [parent]
                    raise InheritanceCycleError(cycle)
                if mark == 0:
                    visit(parent, stack)
            stack.pop()
            state[node] = 2

        for name in self._classes:
            if state.get(name, 0) == 0:
                visit(name, [])

    # ------------------------------------------------------------------
    # Dunder / display
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[ClassDef]:
        return iter(self._classes.values())

    def __len__(self) -> int:
        return len(self._classes)

    def __repr__(self) -> str:
        return (
            f"Schema({self.name!r}, classes={self.user_class_count}, "
            f"relationships={self.relationship_count})"
        )

    def summary(self) -> str:
        """One-line size summary in the paper's reporting style."""
        return (
            f"{self.name}: {self.user_class_count} user-defined classes, "
            f"{self.relationship_count} relationships"
        )
