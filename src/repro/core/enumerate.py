"""Exhaustive enumeration of consistent acyclic paths.

The set Ψ of paper Section 3: *all* valid acyclic complete path
expressions consistent with an incomplete one.  Used as

* the ground-truth baseline for testing Algorithm 2 (its output must be
  a sound subset of the AGG*-optimal subset of Ψ);
* the denominator of the in-text statistic "over 500 acyclic path
  expressions are consistent with each incomplete path expression".

Plain depth-first enumeration with a visited set; cyclic paths are
skipped per the paper's semantics ("humans do not think circularly").

Two guards keep Ψ-exploration tractable on rich schemas:

* nodes from which no completing edge is reachable are pruned up front
  (reverse reachability) — without this the DFS wanders enormous
  acyclic subtrees that can never produce a consistent path;
* ``max_paths`` caps the number of completions and ``max_visits`` caps
  total node expansions, so callers can trade exactness for a bounded
  lower-bound count.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.core.ast import ConcretePath
from repro.core.target import Target
from repro.model.graph import SchemaGraph

__all__ = [
    "iter_consistent_paths",
    "enumerate_consistent_paths",
    "count_consistent_paths",
]


def _nodes_reaching_target(graph: SchemaGraph, target: Target) -> set[str]:
    """Nodes from which some completing edge is reachable.

    Reverse BFS from the source endpoints of every completing edge.
    (The visited-set discipline of the enumeration can still block an
    individual path, so this is an over-approximation — which is exactly
    what a pruning filter needs.)
    """
    reverse: dict[str, set[str]] = {}
    seeds: set[str] = set()
    for edge in graph.edges():
        if target.is_completing_edge(edge):
            seeds.add(edge.source)
        else:
            reverse.setdefault(edge.target, set()).add(edge.source)
    useful = set(seeds)
    queue = deque(seeds)
    while queue:
        node = queue.popleft()
        for predecessor in reverse.get(node, ()):
            if predecessor not in useful:
                useful.add(predecessor)
                queue.append(predecessor)
    return useful


def iter_consistent_paths(
    graph: SchemaGraph,
    root: str,
    target: Target,
    max_depth: int | None = None,
    max_visits: int | None = None,
) -> Iterator[ConcretePath]:
    """Yield every acyclic path from ``root`` whose last edge satisfies
    ``target``.

    Completing edges terminate a path — they are never extended, matching
    the treatment of T in Algorithms 1 and 2.  ``max_depth`` bounds the
    number of edges per path; ``max_visits`` bounds total node
    expansions (None = unbounded).
    """
    graph.schema.get_class(root)
    useful = _nodes_reaching_target(graph, target)
    visited: set[str] = {root}
    visits = 0

    def walk(current: ConcretePath) -> Iterator[ConcretePath]:
        nonlocal visits
        if max_visits is not None and visits >= max_visits:
            return
        visits += 1
        if max_depth is not None and current.length >= max_depth:
            return
        node = current.target_class
        for edge in graph.edges_from(node):
            # A completing edge that re-enters a visited class would make
            # the whole path cyclic; the paper's semantics ignore those.
            if target.is_completing_edge(edge) and edge.target not in visited:
                yield current.extend(edge)
        for edge in graph.edges_from(node):
            if target.is_completing_edge(edge):
                continue
            if edge.target in visited:
                continue
            if edge.target not in useful:
                continue  # can never reach a completing edge from there
            visited.add(edge.target)
            yield from walk(current.extend(edge))
            visited.remove(edge.target)

    if root in useful or any(
        target.is_completing_edge(edge) for edge in graph.edges_from(root)
    ):
        yield from walk(ConcretePath.start(root))


def enumerate_consistent_paths(
    graph: SchemaGraph,
    root: str,
    target: Target,
    max_depth: int | None = None,
    max_paths: int | None = None,
    max_visits: int | None = None,
) -> list[ConcretePath]:
    """Materialize the consistent-path set Ψ (optionally truncated).

    When ``max_paths`` (completions) or ``max_visits`` (node
    expansions) is reached the enumeration stops; callers that need
    exactness must pass None for both (the defaults).
    """
    paths: list[ConcretePath] = []
    for path in iter_consistent_paths(
        graph, root, target, max_depth=max_depth, max_visits=max_visits
    ):
        paths.append(path)
        if max_paths is not None and len(paths) >= max_paths:
            break
    return paths


def count_consistent_paths(
    graph: SchemaGraph,
    root: str,
    target: Target,
    max_depth: int | None = None,
    max_paths: int | None = None,
    max_visits: int | None = None,
) -> int:
    """Count Ψ without materializing paths (same truncation rules)."""
    count = 0
    for _ in iter_consistent_paths(
        graph, root, target, max_depth=max_depth, max_visits=max_visits
    ):
        count += 1
        if max_paths is not None and count >= max_paths:
            break
    return count
