"""Tests for exhaustive consistent-path enumeration."""

from repro.core.enumerate import (
    count_consistent_paths,
    enumerate_consistent_paths,
)
from repro.core.target import ClassTarget, RelationshipTarget


class TestEnumeration:
    def test_all_paths_are_consistent_and_acyclic(self, university_graph):
        paths = enumerate_consistent_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        assert paths
        for path in paths:
            assert path.root == "ta"
            assert path.edges[-1].name == "name"
            assert path.is_acyclic

    def test_no_duplicates(self, university_graph):
        paths = enumerate_consistent_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        rendered = [str(path) for path in paths]
        assert len(rendered) == len(set(rendered))

    def test_contains_the_paper_completions(self, university_graph):
        rendered = {
            str(path)
            for path in enumerate_consistent_paths(
                university_graph, "ta", RelationshipTarget("name")
            )
        }
        assert "ta@>grad@>student@>person.name" in rendered
        assert (
            "ta@>instructor@>teacher@>employee@>person.name" in rendered
        )
        assert "ta@>grad@>student.take.name" in rendered
        assert "ta@>grad@>student.department.name" in rendered

    def test_count_matches_enumeration(self, university_graph):
        target = RelationshipTarget("name")
        assert count_consistent_paths(
            university_graph, "ta", target
        ) == len(
            enumerate_consistent_paths(university_graph, "ta", target)
        )

    def test_class_target(self, university_graph):
        paths = enumerate_consistent_paths(
            university_graph, "ta", ClassTarget("course")
        )
        assert paths
        assert all(path.edges[-1].target == "course" for path in paths)

    def test_max_depth_bounds_edge_count(self, university_graph):
        paths = enumerate_consistent_paths(
            university_graph, "ta", RelationshipTarget("name"), max_depth=4
        )
        assert paths
        assert all(path.length <= 4 for path in paths)

    def test_max_paths_truncates(self, university_graph):
        paths = enumerate_consistent_paths(
            university_graph, "ta", RelationshipTarget("name"), max_paths=3
        )
        assert len(paths) == 3

    def test_unreachable_target_yields_nothing(self, university_graph):
        assert (
            enumerate_consistent_paths(
                university_graph, "ta", RelationshipTarget("ghost")
            )
            == []
        )

    def test_completing_edges_are_terminal(self, university_graph):
        """A path must not continue past an edge that satisfies the
        target; e.g. for ~name no 'name' edge may appear mid-path."""
        for path in enumerate_consistent_paths(
            university_graph, "ta", RelationshipTarget("name")
        ):
            assert all(edge.name != "name" for edge in path.edges[:-1])
