"""repro — a full reproduction of *Incomplete Path Expressions and their
Disambiguation* (Ioannidis & Lashkari, SIGMOD 1994).

The library lets users of an object-oriented data model write
*incomplete* path expressions (``ta ~ name``) and completes them into
the cognitively most plausible fully-specified paths, via an optimal
path computation over the schema graph.

Quickstart::

    from repro import Disambiguator, build_university_schema

    engine = Disambiguator(build_university_schema())
    for path in engine.complete("ta ~ name").paths:
        print(path)              # the two Isa-chain completions

Package map:

* :mod:`repro.model` — the OO data model (classes, five relationship
  kinds, schemas, inheritance, instances);
* :mod:`repro.algebra` — the path algebra (connectors, CON, AGG, the
  better-than order, caution sets);
* :mod:`repro.core` — parsing, Algorithms 1 & 2, the
  :class:`Disambiguator` facade;
* :mod:`repro.query` — evaluation of completed paths over instance
  stores and the Figure 1 interactive loop;
* :mod:`repro.schemas` — the paper's example schemas (Figure 2
  university, synthetic CUPID) and a random generator;
* :mod:`repro.experiments` — the evaluation harness regenerating every
  figure and statistic of Section 5.
"""

from repro.algebra import (
    Aggregator,
    Connector,
    PartialOrder,
    PathLabel,
    con_c,
    default_order,
)
from repro.core import (
    ClassTarget,
    CompiledSchema,
    CompletionResult,
    CompletionSearch,
    ConcretePath,
    Disambiguator,
    DomainKnowledge,
    PathExpression,
    RelationshipTarget,
    compile_schema,
    parse_path_expression,
)
from repro.model import (
    Database,
    RelationshipKind,
    Schema,
    SchemaBuilder,
    SchemaGraph,
    load_schema,
    parse_schema_dsl,
    save_schema,
)
from repro.query import CompletionSession, evaluate, run_query
from repro.schemas import (
    build_cupid_schema,
    build_parts_schema,
    build_university_schema,
    generate_schema,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "ClassTarget",
    "CompiledSchema",
    "CompletionResult",
    "CompletionSearch",
    "CompletionSession",
    "ConcretePath",
    "Connector",
    "Database",
    "Disambiguator",
    "DomainKnowledge",
    "PartialOrder",
    "PathExpression",
    "PathLabel",
    "RelationshipKind",
    "RelationshipTarget",
    "Schema",
    "SchemaBuilder",
    "SchemaGraph",
    "__version__",
    "build_cupid_schema",
    "build_parts_schema",
    "build_university_schema",
    "compile_schema",
    "con_c",
    "default_order",
    "evaluate",
    "generate_schema",
    "load_schema",
    "parse_path_expression",
    "parse_schema_dsl",
    "run_query",
    "save_schema",
]
