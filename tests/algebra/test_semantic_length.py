"""Tests for semantic length (Section 3.3.2), including the paper's two
worked examples and the incremental-vs-closed-form property."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra.connectors import Connector, PRIMARY_CONNECTORS
from repro.algebra.semantic_length import (
    COLLAPSIBLE,
    SemanticLengthState,
    collapse_runs,
    semantic_length_of,
)

ISA = Connector.ISA
MAY = Connector.MAY_BE
HP = Connector.HAS_PART
PO = Connector.IS_PART_OF
AS = Connector.ASSOC

primary_sequences = st.lists(
    st.sampled_from(PRIMARY_CONNECTORS), min_size=0, max_size=14
)


class TestPaperExamples:
    def test_teacher_chain_has_length_four(self):
        # teacher.teach.student.department$>professor
        assert semantic_length_of([AS, AS, AS, HP]) == 4

    def test_staff_chain_has_length_two(self):
        # staff@>employee<@teacher<@instructor<@teaching-asst@>grad@>student
        assert semantic_length_of([ISA, MAY, MAY, MAY, ISA, ISA]) == 2

    def test_single_edge_lengths_match_section_3_2(self):
        assert semantic_length_of([ISA]) == 0
        assert semantic_length_of([MAY]) == 0
        assert semantic_length_of([HP]) == 1
        assert semantic_length_of([PO]) == 1
        assert semantic_length_of([AS]) == 1


class TestCollapse:
    def test_runs_of_collapsible_connectors_collapse(self):
        assert collapse_runs([HP, HP, HP]) == [HP]
        assert collapse_runs([ISA, ISA, MAY, MAY]) == [ISA, MAY]

    def test_assoc_runs_do_not_collapse(self):
        assert collapse_runs([AS, AS, AS]) == [AS, AS, AS]

    def test_collapsible_set_is_the_four_hierarchical_connectors(self):
        assert COLLAPSIBLE == {ISA, MAY, HP, PO}

    def test_empty(self):
        assert collapse_runs([]) == []


class TestStepRules:
    def test_long_part_chain_counts_once(self):
        # "a long chain of contiguous Part-Of connectors is equivalent
        # to a single Part-Of connector"
        assert semantic_length_of([PO] * 7) == 1
        assert semantic_length_of([PO]) == semantic_length_of([PO] * 7)

    def test_pure_isa_chain_is_free(self):
        assert semantic_length_of([ISA] * 5) == 0

    def test_alternating_isa_maybe_charges_all_but_one(self):
        assert semantic_length_of([ISA, MAY]) == 1
        assert semantic_length_of([ISA, MAY, ISA]) == 2
        assert semantic_length_of([MAY, ISA, MAY, ISA]) == 3

    def test_isolated_isa_between_others_is_free(self):
        # $> @> $> : the singleton isa block donates its one edge
        assert semantic_length_of([HP, ISA, HP]) == 2

    def test_two_separate_isa_blocks_each_get_one_free_edge(self):
        seq = [ISA, MAY, AS, ISA, MAY]
        # collapsed: same; blocks: [isa,may] and [isa,may]
        # edges 5 - 2 blocks = 3
        assert semantic_length_of(seq) == 3

    def test_assoc_contributes_actual_length(self):
        assert semantic_length_of([AS] * 4) == 4


class TestIncrementalState:
    def test_empty_state(self):
        state = SemanticLengthState.empty()
        assert state.is_empty
        assert state.length == 0

    def test_extend_matches_closed_form_on_examples(self):
        seq = [ISA, MAY, MAY, MAY, ISA, ISA]
        state = SemanticLengthState.of(seq)
        assert state.length == semantic_length_of(seq)

    def test_join_of_empty_is_identity(self):
        state = SemanticLengthState.of([HP, AS])
        assert SemanticLengthState.empty().join(state) == state
        assert state.join(SemanticLengthState.empty()) == state

    def test_join_merges_runs_at_the_seam(self):
        left = SemanticLengthState.of([HP])
        right = SemanticLengthState.of([HP, AS])
        assert left.join(right).length == semantic_length_of([HP, HP, AS])

    def test_join_merges_taxonomic_blocks_at_the_seam(self):
        left = SemanticLengthState.of([ISA])
        right = SemanticLengthState.of([MAY])
        assert left.join(right).length == 1

    @given(primary_sequences)
    @settings(max_examples=300)
    def test_incremental_equals_closed_form(self, sequence):
        assert SemanticLengthState.of(sequence).length == semantic_length_of(
            sequence
        )

    @given(primary_sequences, primary_sequences)
    @settings(max_examples=300)
    def test_join_is_concatenation(self, left_seq, right_seq):
        joined = SemanticLengthState.of(left_seq).join(
            SemanticLengthState.of(right_seq)
        )
        assert joined.length == semantic_length_of(left_seq + right_seq)

    @given(primary_sequences, primary_sequences, primary_sequences)
    @settings(max_examples=200)
    def test_join_is_associative(self, a, b, c):
        sa = SemanticLengthState.of(a)
        sb = SemanticLengthState.of(b)
        sc = SemanticLengthState.of(c)
        assert sa.join(sb).join(sc) == sa.join(sb.join(sc))

    @given(primary_sequences)
    @settings(max_examples=200)
    def test_length_is_nonnegative_and_bounded_by_edge_count(self, sequence):
        length = semantic_length_of(sequence)
        assert 0 <= length <= len(sequence)

    @given(primary_sequences, st.sampled_from(PRIMARY_CONNECTORS))
    @settings(max_examples=200)
    def test_extending_never_decreases_length(self, sequence, connector):
        assert semantic_length_of(sequence + [connector]) >= (
            semantic_length_of(sequence)
        )
