"""Tests for general incomplete expressions (multiple ~ / mixed
connectors) — the paper's [17] generalization."""

import pytest

from repro.core.multi import complete_general
from repro.core.parser import parse_path_expression
from repro.errors import NoCompletionError, PathExpressionError


def general(graph, text, **kwargs):
    return complete_general(graph, parse_path_expression(text), **kwargs)


class TestSingleTildeAgreement:
    def test_matches_the_direct_algorithm(self, university_graph):
        from repro.core.completion import complete_paths
        from repro.core.target import RelationshipTarget

        direct = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        viageneral = general(university_graph, "ta ~ name")
        assert set(viageneral.expressions) == set(direct.expressions)


class TestMixedConnectors:
    def test_explicit_prefix_then_tilde(self, university_graph):
        result = general(university_graph, "ta@>grad~name")
        assert "ta@>grad@>student@>person.name" in result.expressions
        # the instructor chain is excluded by the explicit prefix
        assert all(
            expression.startswith("ta@>grad")
            for expression in result.expressions
        )

    def test_tilde_then_explicit_suffix(self, university_graph):
        result = general(university_graph, "ta~take.name")
        # courses taken: must route through student's take
        assert result.expressions == [
            "ta@>grad@>student.take.name"
        ]

    def test_two_tildes(self, university_graph):
        result = general(university_graph, "ta~take~name")
        assert result.paths
        for expression in result.expressions:
            assert expression.startswith("ta")
            assert expression.endswith(".name")
            assert ".take" in expression

    def test_complete_input_passes_through(self, university_graph):
        result = general(university_graph, "student.take.teacher")
        assert result.expressions == ["student.take.teacher"]


class TestSemantics:
    def test_results_are_acyclic(self, university_graph):
        result = general(university_graph, "ta~take~name")
        assert all(path.is_acyclic for path in result.paths)

    def test_explicit_step_with_wrong_connector_fails(self, university_graph):
        with pytest.raises(NoCompletionError):
            general(university_graph, "student$>take.name")

    def test_unsatisfiable_expression_raises(self, university_graph):
        with pytest.raises(NoCompletionError):
            general(university_graph, "ta~ghost")

    def test_empty_expression_rejected(self, university_graph):
        with pytest.raises(PathExpressionError):
            general(university_graph, "ta")

    def test_e_parameter_widens_results(self, university_graph):
        small = general(university_graph, "department~ssn", e=1)
        large = general(university_graph, "department~ssn", e=3)
        assert set(small.expressions) <= set(large.expressions)

    def test_stats_accumulated_across_segments(self, university_graph):
        result = general(university_graph, "ta~take~name")
        assert result.stats.recursive_calls > 0
