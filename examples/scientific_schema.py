"""Ad-hoc querying of a large scientific schema (the paper's CUPID
scenario, Section 5).

A plant-growth simulation's input schema has 92 classes and 364
relationships — nobody remembers where "stomatal conductance" lives.
This example shows the completion engine acting as the shorthand query
mechanism the paper proposes: two-word questions against a deep
part-whole hierarchy, with the E parameter widening the answer set and
domain knowledge (excluded auxiliary classes) keeping it clean.

Run with::

    python examples/scientific_schema.py
"""

from __future__ import annotations

from repro import Disambiguator, build_cupid_schema
from repro.experiments.workload import designer_domain_knowledge


QUESTIONS = (
    ("experiment ~ conductance", "where is stomatal conductance?"),
    ("simulation ~ latitude", "the simulated site's latitude"),
    ("crop ~ depth", "rooting depth of the crop"),
    ("scientist ~ lai", "leaf area index of my simulated canopy"),
)


def main() -> None:
    schema = build_cupid_schema()
    print(f"Schema: {schema.summary()}\n")

    engine = Disambiguator(schema)
    for question, meaning in QUESTIONS:
        result = engine.complete(question)
        print(f"{question}    ({meaning})")
        for path in result.paths:
            print(f"    {path}")
            print(f"        label {path.label()}, {path.length} edges")
        print(f"    [{result.stats.recursive_calls} recursive calls]\n")

    # Widening the answer with E (paper Section 4.4).
    question = "crop ~ depth"
    print(f"Relaxing {question!r} with the E parameter:")
    for e in (1, 2, 3):
        wide = Disambiguator(schema, e=e).complete(question)
        print(f"  E={e}: {len(wide.paths)} completions")
        for path in wide.paths[:4]:
            print(f"       {path}")
    print()

    # Domain knowledge: exclude the auxiliary hub classes (Section 5.2).
    knowledge = designer_domain_knowledge()
    clean = Disambiguator(schema, e=3, domain_knowledge=knowledge)
    raw = Disambiguator(schema, e=3)
    question = "soil_layer ~ amount"
    print(
        f"{question!r} at E=3: "
        f"{len(raw.complete(question).paths)} completions without domain "
        f"knowledge, {len(clean.complete(question).paths)} with "
        f"(excluding {', '.join(sorted(knowledge.excluded_classes))})"
    )


if __name__ == "__main__":
    main()
