"""Tracing spans for the disambiguation pipeline.

A *span* is one named, timed region of work (``parse``, ``compile``,
``traverse``, ``agg_select``, ``preemption``, ``rank``,
``cache_lookup``, ...) with attributes attached as it runs and point
*events* recorded inside it.  Spans nest: entering a span inside
another makes it a child, so one ``complete`` call produces a tree
whose leaves tile the total elapsed time.

Two tracers implement the same duck-typed interface:

* :class:`NullTracer` — the ambient default.  ``span()`` hands back a
  process-wide singleton whose enter/exit/set/event are all no-ops, so
  instrumented code costs one context-variable read plus one method
  call per span when tracing is off.
* :class:`RecordingTracer` — keeps the span trees (one root per
  top-level region, per-thread nesting), renders them as an indented
  tree (:meth:`RecordingTracer.render`), exports them as a JSON-lines
  event log (:meth:`RecordingTracer.write_jsonl`), and aggregates a
  per-span-name summary (:meth:`RecordingTracer.summary`).

The active tracer lives in a :class:`contextvars.ContextVar`, so
``with use_tracer(RecordingTracer()):`` scopes tracing to one CLI
command, session, or test without any global mutable state leaking
between threads or asyncio tasks.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import IO, Iterator

__all__ = [
    "NullTracer",
    "RecordingTracer",
    "Span",
    "get_tracer",
    "use_tracer",
]


class Span:
    """One timed, attributed region of a :class:`RecordingTracer` tree.

    Used as a context manager; attributes set via :meth:`set` and point
    events via :meth:`event` while the span is open.  Durations are
    ``time.perf_counter()`` based.
    """

    __slots__ = (
        "name",
        "attrs",
        "start",
        "end",
        "children",
        "events",
        "_tracer",
    )

    def __init__(self, tracer: "RecordingTracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self.events: list[tuple[float, str, dict]] = []

    # -- recording ----------------------------------------------------

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: object) -> None:
        """Record a point event inside this span."""
        self.events.append((time.perf_counter(), name, attrs))

    @property
    def duration(self) -> float:
        """Span duration in seconds (0.0 while still open)."""
        return max(0.0, self.end - self.start)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator[tuple["Span", int]]:
        """Depth-first ``(span, depth)`` pairs over this subtree."""
        stack: list[tuple[Span, int]] = [(self, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    # -- context manager ----------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = time.perf_counter()
        self._tracer._pop(self)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1000:.3f}ms, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """The shared do-nothing span the :class:`NullTracer` hands out."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The ambient default tracer: every span is the no-op singleton."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN


_NULL_TRACER = NullTracer()


class RecordingTracer:
    """Collects span trees; thread-safe (per-thread nesting stacks).

    One tracer may record many top-level regions (e.g. every ``ask`` of
    a session while ``:trace on``); each becomes one root in
    :attr:`roots`.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- span plumbing ------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        return Span(self, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate exits out of order (a span kept open across threads);
        # only pop spans we actually track.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- inspection ---------------------------------------------------

    @property
    def span_count(self) -> int:
        return sum(1 for root in self.roots for _ in root.walk())

    def find(self, name: str) -> list[Span]:
        """All recorded spans with the given name, in tree order."""
        return [
            span
            for root in self.roots
            for span, _ in root.walk()
            if span.name == name
        ]

    def summary(self) -> dict[str, dict[str, float]]:
        """Aggregate per span name: count, total/self seconds."""
        table: dict[str, dict[str, float]] = {}
        for root in self.roots:
            for span, _ in root.walk():
                entry = table.setdefault(
                    span.name,
                    {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0},
                )
                entry["count"] += 1
                entry["total_seconds"] += span.duration
                entry["self_seconds"] += span.duration - sum(
                    child.duration for child in span.children
                )
        return table

    # -- exporters ----------------------------------------------------

    def render(self, min_ms: float = 0.0) -> str:
        """Human-readable tree dump, one line per span.

        ``min_ms`` hides spans shorter than the threshold (their time
        still shows in the parent).
        """
        lines: list[str] = []
        for root in self.roots:
            epoch = root.start
            for span, depth in root.walk():
                if span.duration * 1000 < min_ms and depth > 0:
                    continue
                attrs = " ".join(
                    f"{key}={value!r}" for key, value in span.attrs.items()
                )
                indent = "  " * depth
                lines.append(
                    f"{indent}{span.name:<{max(1, 24 - len(indent))}}"
                    f" {span.duration * 1000:9.3f}ms"
                    f"  +{(span.start - epoch) * 1000:.3f}ms"
                    + (f"  [{attrs}]" if attrs else "")
                )
                for at, name, event_attrs in span.events:
                    event_rendered = " ".join(
                        f"{key}={value!r}" for key, value in event_attrs.items()
                    )
                    lines.append(
                        f"{indent}  * {name} +{(at - epoch) * 1000:.3f}ms"
                        + (f"  [{event_rendered}]" if event_rendered else "")
                    )
        return "\n".join(lines)

    def to_events(self, roots: list[Span] | None = None) -> list[dict]:
        """The JSON-lines event log as a list of plain dicts.

        One ``span`` record per span (pre-order, so parents precede
        children) and one ``event`` record per point event, all with
        millisecond offsets relative to their root span's start.
        ``roots`` restricts the export to a subset of recorded trees
        (the slow-query log exports one query's trees this way); by
        default every recorded root is exported.
        """
        records: list[dict] = []
        next_id = 0
        for root in self.roots if roots is None else roots:
            epoch = root.start
            ids: dict[int, int] = {}
            parents: dict[int, int | None] = {id(root): None}
            for span, depth in root.walk():
                span_id = next_id
                next_id += 1
                ids[id(span)] = span_id
                for child in span.children:
                    parents[id(child)] = span_id
                records.append(
                    {
                        "type": "span",
                        "id": span_id,
                        "parent": parents.get(id(span)),
                        "name": span.name,
                        "depth": depth,
                        "start_ms": (span.start - epoch) * 1000,
                        "duration_ms": span.duration * 1000,
                        "attrs": _jsonable(span.attrs),
                    }
                )
                for at, name, attrs in span.events:
                    records.append(
                        {
                            "type": "event",
                            "span": span_id,
                            "name": name,
                            "at_ms": (at - epoch) * 1000,
                            "attrs": _jsonable(attrs),
                        }
                    )
        return records

    def write_jsonl(self, target: str | IO[str]) -> int:
        """Write the event log as JSON lines; returns the record count."""
        records = self.to_events()
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        if hasattr(target, "write"):
            target.write(payload)  # type: ignore[union-attr]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(payload)
        return len(records)

    def __repr__(self) -> str:
        return f"RecordingTracer(roots={len(self.roots)}, spans={self.span_count})"


def _jsonable(attrs: dict) -> dict:
    """Attributes coerced to JSON-safe scalars (repr fallback)."""
    safe: dict = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[str(key)] = value
        else:
            safe[str(key)] = repr(value)
    return safe


# ----------------------------------------------------------------------
# The ambient tracer
# ----------------------------------------------------------------------

_ACTIVE: ContextVar[NullTracer | RecordingTracer] = ContextVar(
    "repro_tracer", default=_NULL_TRACER
)


def get_tracer() -> NullTracer | RecordingTracer:
    """The tracer instrumented code should emit spans to."""
    return _ACTIVE.get()


@contextmanager
def use_tracer(tracer: NullTracer | RecordingTracer):
    """Install ``tracer`` as the ambient tracer for the with-block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
