"""Figure 6 — average precision fraction vs E, with and without domain
knowledge (paper Section 5.3).

The paper reports precision 100% at E=1, dropping to ~55% as E rises
(more, semantically longer, mostly unintended paths enter S), while a
small amount of domain knowledge — excluding auxiliary classes — keeps
precision at ~93%.  Recall is unaffected by the exclusions because that
form of knowledge can only *remove* answers.
"""

from __future__ import annotations

import dataclasses

from repro.core.domain import DomainKnowledge
from repro.experiments.harness import SweepPoint, sweep_e
from repro.experiments.oracle import DesignerOracle
from repro.experiments.reporting import percent, table
from repro.model.schema import Schema

__all__ = ["Figure6Result", "run_figure6", "render_figure6"]

#: The paper's reported endpoints (read off the figure).
PAPER_PRECISION_E1 = 1.00
PAPER_PRECISION_E5_NO_DK = 0.55
PAPER_PRECISION_E5_WITH_DK = 0.93


@dataclasses.dataclass(frozen=True)
class Figure6Result:
    """Precision series for the two experiment arms."""

    without_dk: tuple[SweepPoint, ...]
    with_dk: tuple[SweepPoint, ...]
    excluded_classes: tuple[str, ...]

    def series(self, arm: str) -> list[tuple[int, float]]:
        points = self.without_dk if arm == "without" else self.with_dk
        return [(point.e, point.average_precision) for point in points]

    @property
    def dk_improves_precision(self) -> bool:
        """The paper's headline comparison at the largest E."""
        return (
            self.with_dk[-1].average_precision
            > self.without_dk[-1].average_precision
        )


def run_figure6(
    schema: Schema,
    oracle: DesignerOracle,
    domain_knowledge: DomainKnowledge,
    e_values: tuple[int, ...] = (1, 2, 3, 4, 5),
    continue_on_error: bool = False,
    retries: int = 0,
    jobs: int = 1,
) -> Figure6Result:
    """Compute both precision series."""
    without = sweep_e(
        schema,
        oracle,
        e_values=e_values,
        continue_on_error=continue_on_error,
        retries=retries,
        jobs=jobs,
    )
    with_dk = sweep_e(
        schema,
        oracle,
        e_values=e_values,
        domain_knowledge=domain_knowledge,
        continue_on_error=continue_on_error,
        retries=retries,
        jobs=jobs,
    )
    return Figure6Result(
        without_dk=tuple(without),
        with_dk=tuple(with_dk),
        excluded_classes=tuple(sorted(domain_knowledge.excluded_classes)),
    )


def render_figure6(result: Figure6Result) -> str:
    """Text rendering of Figure 6 (both series side by side)."""
    rows = []
    for no_dk, dk in zip(result.without_dk, result.with_dk):
        rows.append(
            (
                no_dk.e,
                percent(no_dk.average_precision),
                percent(dk.average_precision),
                f"{no_dk.average_returned:.1f}",
                f"{dk.average_returned:.1f}",
            )
        )
    return "\n".join(
        [
            "Figure 6: Average Precision Fraction vs E",
            (
                f"(paper: {PAPER_PRECISION_E1:.0%} at E=1; at large E "
                f"~{PAPER_PRECISION_E5_NO_DK:.0%} without domain knowledge, "
                f"~{PAPER_PRECISION_E5_WITH_DK:.0%} with)"
            ),
            f"excluded classes: {', '.join(result.excluded_classes)}",
            "",
            table(
                [
                    "E",
                    "precision (no DK)",
                    "precision (DK)",
                    "|S| (no DK)",
                    "|S| (DK)",
                ],
                rows,
            ),
        ]
    )
