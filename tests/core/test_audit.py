"""Tests for the search audit log — EXPLAIN ANALYZE for disambiguation.

Covers the PR's acceptance criteria: a disabled audit leaves results
byte-identical with bounded (<5%) overhead, the JSONL export round-trips
through the schema validator and reconstructs the exact walk order, every
ranked completion's score decomposition re-sums to its semantic length,
cache records carry lineage provenance, and the reference-vs-closure
diff over the Section 5 workload explains every divergence with an
admissible cut.
"""

import json
import time

import pytest

from repro.core.audit import (
    NullAuditLog,
    SearchAuditLog,
    audit_completion,
    decompose_path,
    diff_modes,
    get_audit,
    reconstruct_forest,
    reconstruct_tree,
    render_analysis,
    use_audit,
)
from repro.core.compiled import CompiledSchema, compile_schema, invalidate
from repro.core.engine import Disambiguator
from repro.core.target import RelationshipTarget
from repro.experiments.workload import build_cupid_workload
from repro.model.delta import AddClass, SchemaDelta
from repro.obs.schema import SchemaValidationError, validate_audit_records

CUPID_QUERY = "experiment ~ conductance"


def _workload_texts():
    return [query.text for query in build_cupid_workload()]


class TestAmbientPlumbing:
    def test_default_is_a_shared_noop(self):
        audit = get_audit()
        assert isinstance(audit, NullAuditLog)
        assert audit.enabled is False
        audit.record("expand", node="x")  # must be a silent no-op
        assert len(audit) == 0
        assert audit.to_records() == []

    def test_use_audit_installs_and_restores(self):
        log = SearchAuditLog()
        before = get_audit()
        with use_audit(log) as installed:
            assert installed is log
            assert get_audit() is log
            assert get_audit().enabled
        assert get_audit() is before


class TestDisabledPath:
    @pytest.mark.parametrize("pruning", ["closure", "none"])
    def test_results_identical_with_and_without_audit(self, cupid, pruning):
        """The audited run re-executes the exact search: same paths,
        same labels, same traversal counters."""
        compiled = CompiledSchema(cupid)
        searcher = compiled.searcher(e=2, pruning=pruning)
        target = RelationshipTarget("conductance")
        bare = searcher.run("experiment", target)
        with use_audit(SearchAuditLog()):
            audited = searcher.run("experiment", target)
        assert [str(p) for p in bare.paths] == [str(p) for p in audited.paths]
        assert [str(l) for l in bare.labels] == [
            str(l) for l in audited.labels
        ]
        assert bare.stats.recursive_calls == audited.stats.recursive_calls
        assert bare.stats.edges_considered == audited.stats.edges_considered
        assert (
            bare.stats.complete_paths_found
            == audited.stats.complete_paths_found
        )

    def test_noop_audit_overhead_under_5_percent(self, cupid):
        """A disabled audit costs one hoisted ``enabled`` read per run
        plus a local-bool branch per decision point; bound (decision
        points x per-check cost) against the measured completion time
        rather than comparing two noisy wall-clock runs (the same
        convention as the no-op tracer bound in tests/obs)."""
        assert isinstance(get_audit(), NullAuditLog)
        compiled = CompiledSchema(cupid)
        searcher = compiled.searcher(e=1)
        target = RelationshipTarget("conductance")
        runs = []
        for _ in range(3):
            start = time.perf_counter()
            result = searcher.run("experiment", target)
            runs.append(time.perf_counter() - start)
        completion_seconds = sorted(runs)[1]

        # The search loops run regardless of auditing; the disabled
        # audit adds only the hoisted-local branch per decision point.
        # Isolate that branch's cost by subtracting an empty loop.
        audit = get_audit()
        audit_on = audit.enabled
        iterations = 200_000
        start = time.perf_counter()
        for _ in range(iterations):
            if audit_on:  # pragma: no cover - never taken
                audit.record("x")
        guarded = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(iterations):
            pass
        baseline = time.perf_counter() - start
        per_check = max(guarded - baseline, 0.0) / iterations
        # Generous bound on guarded decision points per completion: one
        # per recursive call, considered edge, and completing edge, with
        # slack for the search/score/agg_select records.  The hot loops
        # hoist the flag into a local, so the measured contextvar-read
        # cost per check overestimates the real per-point cost.
        stats = result.stats
        checks = 4 * (
            stats.recursive_calls
            + stats.edges_considered
            + stats.complete_paths_found
        ) + 128
        overhead = checks * per_check
        assert overhead < 0.05 * completion_seconds, (
            f"{overhead * 1e6:.1f}us of null-audit overhead vs "
            f"{completion_seconds * 1e3:.2f}ms completion"
        )


class TestRoundTrip:
    @pytest.mark.parametrize("pruning", ["closure", "none"])
    def test_jsonl_round_trip_reconstructs_walk_order(
        self, cupid, tmp_path, pruning
    ):
        compiled = compile_schema(cupid)
        _, log = audit_completion(compiled, CUPID_QUERY, e=1, pruning=pruning)
        path = tmp_path / "audit.jsonl"
        count = log.write_jsonl(path)
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert len(records) == count == len(log)
        validate_audit_records(records)  # must not raise

        # The flat stream reconstructs to one decision tree whose
        # preorder is exactly the expansion order the search ran.
        root = reconstruct_tree(records)
        expanded = [
            record["node"] for record in records if record["kind"] == "expand"
        ]

        def preorder(node):
            yield node.name
            for child in node.children:
                yield from preorder(child)

        assert list(preorder(root)) == expanded
        # And the reconstruction is identity-stable across the export:
        # in-memory records rebuild the same tree shape.
        direct = reconstruct_tree(log.to_records())
        assert list(preorder(direct)) == expanded

    def test_reconstruct_rejects_depth_jumps(self):
        records = [
            {"seq": 0, "kind": "expand", "node": "a", "depth": 0},
            {"seq": 1, "kind": "expand", "node": "b", "depth": 2},
        ]
        with pytest.raises(ValueError):
            reconstruct_forest(records)

    def test_validator_rejects_a_tampered_score(self, cupid):
        compiled = compile_schema(cupid)
        _, log = audit_completion(compiled, CUPID_QUERY, e=1)
        records = log.to_records()
        scores = [r for r in records if r["kind"] == "score"]
        assert scores, "audited completion must bill its ranked paths"
        scores[0]["total"] += 1  # the bill no longer re-sums
        with pytest.raises(SchemaValidationError):
            validate_audit_records(records)

    def test_render_analysis_mentions_the_search_and_cuts(self, cupid):
        compiled = compile_schema(cupid)
        _, log = audit_completion(compiled, CUPID_QUERY, e=1)
        text = render_analysis(log)
        assert CUPID_QUERY.split()[0] in text
        assert "decision tree:" in text
        assert "cuts:" in text
        assert log.render() == text


class TestScoreDecomposition:
    @pytest.mark.parametrize("e", [1, 2])
    def test_every_ranked_completion_resums_exactly(self, cupid, e):
        """Acceptance criterion: the per-edge deltas of every ranked
        completion across the ten Section-5 queries telescope to the
        reported semantic length."""
        compiled = compile_schema(cupid)
        billed = 0
        for text in _workload_texts():
            root, _, rel = text.partition("~")
            result = compiled.complete_simple(root.strip(), rel.strip(), e=e)
            for path in result.paths:
                steps = decompose_path(path)  # raises if it doesn't telescope
                total = path.label().semantic_length
                assert sum(step["delta"] for step in steps) == total
                if steps:
                    assert steps[-1]["length"] == total
                    assert steps[-1]["label"] == str(path.label())
                billed += 1
        assert billed > 0

    def test_score_records_carry_the_decomposition(self, cupid):
        compiled = compile_schema(cupid)
        result, log = audit_completion(compiled, CUPID_QUERY, e=2)
        scores = log.of_kind("score")
        assert [record["path"] for record in scores] == [
            str(path) for path in result.paths
        ]
        for record in scores:
            assert sum(step["delta"] for step in record["steps"]) == (
                record["total"]
            )


class TestCacheProvenance:
    def test_miss_then_hit_then_carried(self, university):
        invalidate()
        try:
            compiled = compile_schema(university)
            engine = Disambiguator(compiled)
            log = SearchAuditLog()
            with use_audit(log):
                engine.complete("ta ~ name")
                engine.complete("ta ~ name")
            cache_records = log.of_kind("cache")
            complete_scope = [
                r for r in cache_records if r["scope"] == "complete"
            ]
            assert [r["outcome"] for r in complete_scope] == ["miss", "hit"]
            assert complete_scope[0]["provenance"] is None
            assert complete_scope[1]["provenance"] == "computed"
            assert complete_scope[1]["lineage_depth"] == 0

            # Evolve: the carried entry is served warm on the evolved
            # artifact and the audit says it was adopted, not recomputed.
            evolved = compiled.evolve(
                SchemaDelta.of(AddClass("annex")), mode="incremental"
            )
            carried_log = SearchAuditLog()
            with use_audit(carried_log):
                Disambiguator(evolved).complete("ta ~ name")
            carried = [
                r
                for r in carried_log.of_kind("cache")
                if r["scope"] == "complete"
            ]
            assert carried[0]["outcome"] == "hit"
            assert carried[0]["provenance"] == "carried"
            assert carried[0]["lineage_depth"] == 1
            assert carried[0]["fingerprint"] == evolved.fingerprint[:12]
        finally:
            invalidate()


class TestCrossModeDiff:
    def test_workload_has_zero_unexplained_divergences_at_e1(self, cupid):
        """Acceptance criterion (E=1 leg; the full E=1..3 sweep runs in
        benchmarks/bench_audit.py): replaying each Section-5 query under
        both pruning modes yields identical results, and every edge the
        closure loop skipped is backed by an admissible recorded cut."""
        for text in _workload_texts():
            diff = diff_modes(cupid, text, e=1)
            assert diff.ok, diff.render()
            assert diff.identical_results
            assert not diff.unexplained
            assert all(d.admissible for d in diff.explained)

    @pytest.mark.parametrize("e", [2, 3])
    def test_deep_query_diff_stays_explained(self, cupid, e):
        diff = diff_modes(cupid, CUPID_QUERY, e=e)
        assert diff.ok, diff.render()
        assert diff.closure_expansions <= diff.reference_expansions

    def test_university_diff(self, university):
        diff = diff_modes(university, "ta ~ name", e=1)
        assert diff.ok, diff.render()
