"""Property-based integration: Algorithm 2 vs exhaustive ground truth on
randomly generated schemas (soundness + nonemptiness; see DESIGN.md
Section 4 for why completeness over incomparable ties is weaker)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra.agg import Aggregator
from repro.core.completion import complete_paths
from repro.core.enumerate import enumerate_consistent_paths
from repro.core.inheritance_criterion import apply_preemption
from repro.core.target import RelationshipTarget
from repro.model.graph import SchemaGraph
from repro.schemas.generator import GeneratorConfig, generate_schema

_GRAPH_CACHE: dict[tuple, SchemaGraph] = {}


def _graph(classes: int, seed: int, association_factor: float) -> SchemaGraph:
    key = (classes, seed, association_factor)
    if key not in _GRAPH_CACHE:
        schema = generate_schema(
            GeneratorConfig(
                classes=classes,
                seed=seed,
                association_factor=association_factor,
            )
        )
        _GRAPH_CACHE[key] = SchemaGraph(schema)
    return _GRAPH_CACHE[key]


@given(
    seed=st.integers(min_value=0, max_value=19),
    root_index=st.integers(min_value=0, max_value=11),
)
@settings(max_examples=40, deadline=None)
def test_algorithm_sound_and_nonempty_vs_ground_truth_at_e1(seed, root_index):
    graph = _graph(12, seed, 0.9)
    roots = [
        cls.name
        for cls in graph.schema.classes(include_primitives=False)
        if graph.edges_from(cls.name)
    ]
    root = roots[root_index % len(roots)]
    target = RelationshipTarget("label")

    result = complete_paths(graph, root, target, e=1)
    everything = enumerate_consistent_paths(graph, root, target)
    aggregator = Aggregator(e=1)
    optimal_keys = {
        label.key
        for label in aggregator.aggregate([p.label() for p in everything])
    }
    optimal = [p for p in everything if p.label().key in optimal_keys]
    optimal, _ = apply_preemption(optimal)
    optimal_set = {str(p) for p in optimal}

    # soundness at E=1: every answer is a globally optimal path
    assert set(result.expressions) <= optimal_set
    assert {p.label().key for p in result.paths} <= optimal_keys
    # nonemptiness: something found whenever something exists
    assert bool(result.paths) == bool(optimal)
    # acyclicity and consistency of every answer
    for path in result.paths:
        assert path.is_acyclic
        assert path.root == root
        assert path.edges[-1].name == "label"


@given(
    seed=st.integers(min_value=0, max_value=19),
    root_index=st.integers(min_value=0, max_value=11),
    e=st.integers(min_value=2, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_algorithm_structural_guarantees_at_larger_e(seed, root_index, e):
    """At E>1 the best[]-bound can drop a whole intermediate length
    class (DESIGN.md Section 4), so global-window membership is NOT
    guaranteed; what always holds: answers are real consistent acyclic
    paths from the enumeration, the best found label class survives,
    something is found whenever something exists, and the answer set
    only grows with E."""
    graph = _graph(12, seed, 0.9)
    roots = [
        cls.name
        for cls in graph.schema.classes(include_primitives=False)
        if graph.edges_from(cls.name)
    ]
    root = roots[root_index % len(roots)]
    target = RelationshipTarget("label")

    result = complete_paths(graph, root, target, e=e)
    everything = {
        str(p) for p in enumerate_consistent_paths(graph, root, target)
    }
    assert set(result.expressions) <= everything
    assert bool(result.paths) == bool(everything)
    narrower = complete_paths(graph, root, target, e=e - 1)
    assert set(narrower.expressions) <= set(result.expressions)
    for path in result.paths:
        assert path.is_acyclic
        assert path.root == root
        assert path.edges[-1].name == "label"


@pytest.mark.parametrize("seed", range(6))
def test_algorithm_visits_far_fewer_nodes_than_enumeration(seed):
    """The branch-and-bound must beat brute force by a wide margin on
    non-trivial schemas (ablation A4's headline)."""
    graph = _graph(18, seed, 1.2)
    target = RelationshipTarget("label")
    roots = [
        cls.name
        for cls in graph.schema.classes(include_primitives=False)
        if graph.edges_from(cls.name)
    ][:3]
    for root in roots:
        result = complete_paths(graph, root, target, e=1)
        enumerated = enumerate_consistent_paths(
            graph, root, target, max_paths=100_000
        )
        if len(enumerated) >= 1000:
            assert result.stats.recursive_calls < len(enumerated)
