"""Tests for completion explanations."""

import pytest

from repro.core.explain import explain_candidate
from repro.errors import PathExpressionError


class TestVerdicts:
    def test_returned(self, university_graph):
        explanation = explain_candidate(
            university_graph, "ta ~ name", "ta@>grad@>student@>person.name"
        )
        assert explanation.verdict == "returned"
        assert "answer set" in explanation.render()

    def test_connector_dominated(self, university_graph):
        explanation = explain_candidate(
            university_graph, "ta ~ name", "ta@>grad@>student.take.name"
        )
        assert explanation.verdict == "connector_dominated"
        assert str(explanation.candidate_label) == "[..,2]"
        assert str(explanation.witness_label) == "[.,1]"
        assert "stronger" in explanation.render()

    def test_length_dominated_with_admitting_e(self, university_graph):
        explanation = explain_candidate(
            university_graph,
            "department ~ ssn",
            "department.student@>person.ssn",
            e=1,
        )
        assert explanation.verdict in (
            "length_dominated",
            "tied_but_pruned",
        )
        if explanation.verdict == "length_dominated":
            assert explanation.admitting_e is not None

    def test_tied_but_pruned_on_the_q10_case(self, cupid_graph):
        explanation = explain_candidate(
            cupid_graph,
            "phenology ~ dry_mass",
            "phenology$>growth_stage.fruit.dry_mass",
        )
        assert explanation.verdict == "tied_but_pruned"
        assert "best[]-bound" in explanation.render()

    def test_inconsistent_wrong_name(self, university_graph):
        explanation = explain_candidate(
            university_graph, "ta ~ name", "ta@>grad@>student@>person.ssn"
        )
        assert explanation.verdict == "inconsistent"

    def test_inconsistent_wrong_root(self, university_graph):
        explanation = explain_candidate(
            university_graph, "ta ~ name", "student@>person.name"
        )
        assert explanation.verdict == "inconsistent"

    def test_invalid_path(self, university_graph):
        explanation = explain_candidate(
            university_graph, "ta ~ name", "ta@>person.name"
        )
        assert explanation.verdict == "invalid"

    def test_cyclic_path(self, university_graph):
        explanation = explain_candidate(
            university_graph,
            "student ~ name",
            "student.take.student.take.name",
        )
        assert explanation.verdict == "cyclic"


class TestEngineConvenience:
    def test_disambiguator_explain(self, university_engine):
        explanation = university_engine.explain(
            "ta ~ name", "ta@>grad@>student.take.name"
        )
        assert explanation.verdict == "connector_dominated"

    def test_engine_e_is_used(self, university):
        from repro.core.engine import Disambiguator

        wide = Disambiguator(university, e=2)
        explanation = wide.explain(
            "department ~ ssn", "department.student@>person.ssn"
        )
        assert explanation.verdict == "returned"


class TestInputValidation:
    def test_query_must_be_simple(self, university_graph):
        with pytest.raises(PathExpressionError):
            explain_candidate(
                university_graph, "ta~x~y", "ta@>grad@>student@>person.name"
            )

    def test_candidate_must_be_complete(self, university_graph):
        with pytest.raises(PathExpressionError):
            explain_candidate(university_graph, "ta ~ name", "ta ~ name")

    def test_precomputed_result_is_honored(self, university_graph):
        from repro.core.completion import complete_paths
        from repro.core.target import RelationshipTarget

        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        explanation = explain_candidate(
            university_graph,
            "ta ~ name",
            "ta@>instructor@>teacher@>employee@>person.name",
            result=result,
        )
        assert explanation.verdict == "returned"
