"""The compile-time label closure (Carré's algebra as a precompute).

The paper frames disambiguation as an optimal-path computation in
Carré's path algebra, yet Algorithm 2 explores the schema graph blind:
it discovers only while traversing that a region can never complete, or
that every completion from a node composes to a label hopelessly worse
than the answers already in hand.  Both facts are properties of the
*schema*, not the query — so, following the algebra's own
transitive-closure formulation, this module computes them once per
compiled artifact:

* **reachability** — an all-pairs reachability matrix over the frozen
  adjacency (bitset rows, iterative Warshall over big-int masks);
* **label bounds** — for each (node, target) pair and each composed
  connector ``c`` achievable by a suffix from the node to a completing
  edge, the minimum semantic length of such a suffix, per seam class of
  the prefix it will be appended to.

:class:`~repro.core.completion.CompletionSearch` uses them as two new
cut rules (see ``pruning="closure"``):

* *reachability pruning* — never expand a node from which no completing
  edge is reachable;
* *label-bound pruning* — prune a node when every optimistic composed
  label from it (best-achievable connector under ``CON``, lower-bounded
  semantic length) is strictly worse than the current ``best[T]``
  frontier under AGG* at the requested E.  Caution-set membership is
  explicitly exempted so non-distributivity stays sound.

Admissibility
-------------
The bound tables are built by a backward 0/1-BFS over states
``(node, composed connector, first collapsed connector)``.  The state
is exact: prepending an edge ``e`` to a suffix whose first collapsed
connector is ``f`` changes the composed connector via ``CON_c`` and the
semantic length by ``base(e) + adj(e, f)`` — the same seam arithmetic
:meth:`~repro.algebra.semantic_length.SemanticLengthState.join` uses —
and every such increment is 0 or 1 (taxonomic edges are free, equal
part-whole connectors merge, everything else costs one).  The only
relaxation is dropping the acyclicity constraint, which *enlarges* the
suffix set and can therefore only lower the minimum: every bound is a
true lower bound on the semantic length of any completion suffix, and a
candidate built from it dominates (or ties) every real completion
through the node.

Costs are amortized like the artifact itself: closures are cached by
the traversal graph's content fingerprint (the
:class:`~repro.algebra.caution.CautionSets` precedent), so only the
first compile of a given schema content pays the build, and the
per-target tables are built lazily on first use and memoized.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

from repro.algebra.con_table import con_c
from repro.algebra.connectors import ALL_CONNECTORS, Connector, PRIMARY_CONNECTORS
from repro.algebra.semantic_length import COLLAPSIBLE, _TAXONOMIC
from repro.core.target import ClassTarget, RelationshipTarget, Target
from repro.model.graph import SchemaGraph

__all__ = [
    "PRUNING_MODES",
    "SchemaClosure",
    "TargetTables",
    "has_static_adjacency",
    "resolve_pruning",
]

#: Accepted values of the ``pruning`` knob.
PRUNING_MODES = ("closure", "none")

#: Environment override consulted when no explicit mode is given — CI's
#: unpruned matrix leg runs the whole suite with ``REPRO_PRUNING=none``.
PRUNING_ENV_VAR = "REPRO_PRUNING"

#: Sentinel for "no suffix with this state exists" in the distance maps.
_INF = 255
#: Distances are capped below the sentinel; capping down is admissible.
_CAP = 254

_N_CONNECTORS = len(ALL_CONNECTORS)
_N_PRIMARY = len(PRIMARY_CONNECTORS)

#: Full-table connector composition by index: ``_CON_ROWS[a][b]`` is the
#: connector of ``CON_c(connector a, connector b)``.  The search uses it
#: to build optimistic complete labels without enum dictionary hops.
_CON_ROWS: tuple[tuple[Connector, ...], ...] = tuple(
    tuple(con_c(first, second) for second in ALL_CONNECTORS)
    for first in ALL_CONNECTORS
)

#: Index-only twin of ``_CON_ROWS`` for pure-integer inner loops.
_CONI: tuple[tuple[int, ...], ...] = tuple(
    tuple(connector.index for connector in row) for row in _CON_ROWS
)

#: ``sort_rank`` by connector index (the AGG tie-break order).
_SORT_RANK: tuple[int, ...] = tuple(
    connector.sort_rank for connector in ALL_CONNECTORS
)

_PRIMARY_INDEX: dict[Connector, int] = {
    connector: position for position, connector in enumerate(PRIMARY_CONNECTORS)
}


def _seam_adjustment(left: Connector, right: Connector) -> int:
    """The seam term of :meth:`SemanticLengthState.join` for one pair."""
    if left is right and left in COLLAPSIBLE:
        return 0 if left in _TAXONOMIC else -1
    if left in _TAXONOMIC and right in _TAXONOMIC:
        return 1
    return 0


#: ``_PREPEND_WEIGHT[p][f]`` — semantic-length increment of prepending an
#: edge with primary connector ``p`` to a suffix whose first collapsed
#: connector is ``f``: ``base(p) + adj(p, f)``, always 0 or 1.
_PREPEND_WEIGHT: tuple[tuple[int, ...], ...] = tuple(
    tuple(
        (0 if edge_conn in _TAXONOMIC else 1)
        + _seam_adjustment(edge_conn, first_conn)
        for first_conn in PRIMARY_CONNECTORS
    )
    for edge_conn in PRIMARY_CONNECTORS
)

#: Seam classes of a prefix's last collapsed connector.  Only the four
#: collapsible connectors interact with the suffix seam; everything else
#: (``.``, and the impossible non-primary cases) adjusts by zero.
_LAST_OTHER = 4
_LAST_CLASS_BY_INDEX: tuple[int, ...] = tuple(
    _PRIMARY_INDEX[connector]
    if connector in COLLAPSIBLE
    else _LAST_OTHER
    for connector in ALL_CONNECTORS
)
_N_LAST_CLASSES = 5

#: ``_SEAM_BY_CLASS[lc][f]`` — seam adjustment between a prefix whose
#: last collapsed connector falls in class ``lc`` and a suffix starting
#: with primary connector ``f``.
_SEAM_BY_CLASS: tuple[tuple[int, ...], ...] = tuple(
    tuple(
        _seam_adjustment(PRIMARY_CONNECTORS[lc], first_conn)
        if lc != _LAST_OTHER
        else 0
        for first_conn in PRIMARY_CONNECTORS
    )
    for lc in (*range(_N_PRIMARY), _LAST_OTHER)
)


def has_static_adjacency(graph: SchemaGraph) -> bool:
    """True when ``graph.edges_from`` is the plain frozen adjacency read.

    The closure tables snapshot the adjacency at build time and the
    closure traversal walks those snapshots instead of calling
    ``edges_from`` per node.  That is only sound — and only honest —
    when the adjacency is static: a proxied or monkeypatched
    ``edges_from`` (fault injection's :class:`FaultyGraph`, virtual-
    latency clocks) is a deliberate interception seam, so such graphs
    fall back to the reference loop, where every adjacency read goes
    through the override.
    """
    return (
        getattr(type(graph), "edges_from", None) is SchemaGraph.edges_from
        and "edges_from" not in getattr(graph, "__dict__", {})
    )


def resolve_pruning(pruning: str | None) -> str:
    """Resolve the ``pruning`` knob: explicit value, else the
    ``REPRO_PRUNING`` environment override, else ``"closure"``."""
    if pruning is None:
        pruning = os.environ.get(PRUNING_ENV_VAR) or "closure"
    if pruning not in PRUNING_MODES:
        raise ValueError(
            f"pruning must be one of {PRUNING_MODES}, got {pruning!r}"
        )
    return pruning


class _Bound:
    """A synthetic optimistic label: just the two attributes the AGG*
    membership test (:meth:`~repro.algebra.agg.Aggregator.keeps`) and
    the caution intersection read."""

    __slots__ = ("connector", "semantic_length")

    def __init__(self, connector: Connector, semantic_length: int) -> None:
        self.connector = connector
        self.semantic_length = semantic_length

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"_Bound({self.connector.symbol}, {self.semantic_length})"


class TargetTables:
    """The closure restricted to one completion target.

    ``reach_mask``
        Bitmask of node indices from which a completing edge departs.
    ``rows``
        Per node, a ``bytes`` table of shape (seam class × connector):
        ``rows[u][lc * 14 + c]`` lower-bounds the semantic length that a
        suffix from node ``u`` with composed connector ``c`` adds to a
        prefix whose last collapsed connector has seam class ``lc``
        (the prefix/suffix seam adjustment is already folded in).
    ``conns``
        Per node, the achievable composed-connector indices, strongest
        (lowest sort rank) first — an empty tuple means no completing
        edge is reachable along interior edges.
    ``completing``
        Per node, the completing edges as ``(edge, target class,
        connector index)`` tuples — what ``enter`` scans instead of the
        full adjacency list.
    ``interior``
        Per node, the traversable edges as ``(child, child index,
        connector index, edge)`` tuples, with reachability pruning
        already applied: edges to children with an empty ``conns`` row
        are dropped at build time.
    ``reach_pruned``
        Per node, how many interior edges reachability pruning removed;
        charged to ``TraversalStats.nodes_pruned_reachability`` once per
        node entry (each entry would have considered each of them once).
    ``reach_dropped``
        Per node, the identities of those removed edges as ``(child,
        connector index, edge)`` tuples — the search audit log
        (:mod:`repro.core.audit`) emits one ``reachability`` cut record
        per entry for each, so the cross-mode diff can account for
        every edge the closure loop never even considered.  Always
        ``len(reach_dropped[u]) == reach_pruned[u]``.
    ``dist``
        The raw pre-collapse state distances (node × composed connector
        × first connector).  Kept so :meth:`SchemaClosure.evolved` can
        repair the table in place after an edge insertion — distances
        only ever decrease under insertions, so a localized relaxation
        seeded from the new edges converges on exactly the from-scratch
        fixpoint.
    """

    __slots__ = (
        "reach_mask",
        "rows",
        "conns",
        "completing",
        "interior",
        "reach_pruned",
        "reach_dropped",
        "dist",
    )

    def __init__(
        self,
        reach_mask: int,
        rows: list[bytes],
        conns: list[tuple[int, ...]],
        completing: list[tuple],
        interior: list[tuple],
        reach_pruned: list[int],
        dist: bytearray,
        reach_dropped: list[tuple] | None = None,
    ) -> None:
        self.reach_mask = reach_mask
        self.rows = rows
        self.conns = conns
        self.completing = completing
        self.interior = interior
        self.reach_pruned = reach_pruned
        self.reach_dropped = [] if reach_dropped is None else reach_dropped
        self.dist = dist


def _target_cache_key(target: Target) -> tuple[str, str] | None:
    """A stable content key for the two concrete target types.

    Exotic :class:`~repro.core.target.Target` subclasses have no stable
    content key, so their tables are not memoized (the search falls back
    to unpruned traversal for them).
    """
    if isinstance(target, RelationshipTarget):
        return ("rel", target.relationship_name)
    if isinstance(target, ClassTarget):
        return ("class", target.class_name)
    return None


def _target_from_cache_key(key: tuple[str, str]) -> Target:
    """Reconstruct the concrete target from its memoization key."""
    kind, name = key
    return RelationshipTarget(name) if kind == "rel" else ClassTarget(name)


class SchemaClosure:
    """All-pairs reachability plus per-target label-bound tables.

    Construct via :meth:`for_graph`, which memoizes by the traversal
    graph's content fingerprint — the same compile-once discipline as
    :class:`~repro.algebra.caution.CautionSets`, so recompiling an
    unchanged schema never pays the closure again.
    """

    _cache: dict[str, "SchemaClosure"] = {}
    _cache_lock = threading.Lock()

    def __init__(self, graph: SchemaGraph) -> None:
        started = time.perf_counter()
        self.graph = graph
        self.nodes: tuple[str, ...] = tuple(graph.nodes())
        self.index: dict[str, int] = {
            name: position for position, name in enumerate(self.nodes)
        }
        self._reach: list[int] | None = None
        self._tables: dict[tuple[str, str], TargetTables] = {}
        self._lock = threading.Lock()
        self.build_seconds = time.perf_counter() - started

    @property
    def reach(self) -> list[int]:
        """Reachability bitset rows, built lazily on first traversal so
        registering the closure never inflates ``compile_seconds``."""
        rows = self._reach
        if rows is None:
            with self._lock:
                rows = self._reach
                if rows is None:
                    started = time.perf_counter()
                    rows = self._build_reachability()
                    self._reach = rows
                    self.build_seconds += time.perf_counter() - started
        return rows

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def for_graph(cls, graph: SchemaGraph) -> "SchemaClosure":
        """The closure for ``graph``, shared by content fingerprint."""
        key = graph.fingerprint()
        with cls._cache_lock:
            closure = cls._cache.get(key)
        if closure is not None:
            return closure
        closure = cls(graph)
        with cls._cache_lock:
            return cls._cache.setdefault(key, closure)

    @classmethod
    def clear_cache(cls) -> None:
        """Drop all cached closures (for tests and benchmarks)."""
        with cls._cache_lock:
            cls._cache.clear()

    # ------------------------------------------------------------------
    # Incremental maintenance under schema deltas
    # ------------------------------------------------------------------

    def evolved(self, new_graph: SchemaGraph) -> "SchemaClosure":
        """The closure for ``new_graph``, patched from this one.

        The incremental path of the delta layer: instead of re-running
        all-pairs Warshall and rebuilding every per-target table, the
        old closure is repaired along the diff between the two traversal
        views —

        * **reachability** is maintained per edge: a deletion recomputes
          only the *affected region* (rows that reached a deleted edge's
          source; every other row provably still holds and is used as a
          shortcut), an insertion ``u -> v`` unions ``reach[v]`` into
          every row that reaches ``u``;
        * **label-bound tables** are repaired by a localized relaxation
          seeded from the inserted edges (distances only decrease under
          insertion, so re-running the 0/1-BFS from the new frontier
          over the kept ``dist`` array converges on exactly the
          from-scratch fixpoint); a table a *deleted* edge participated
          in is dropped and lazily rebuilt — deletions can raise bounds,
          which seeded relaxation cannot express.

        Falls back to a full rebuild when the node-order assumption
        (survivors keep their relative order, new classes appended) does
        not hold.  Either way the result is registered in the shared
        content cache, so a later :meth:`for_graph` on equal content
        finds it.
        """
        key = new_graph.fingerprint()
        with self._cache_lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        closure = self._evolve(new_graph)
        with self._cache_lock:
            return self._cache.setdefault(key, closure)

    def _evolve(self, new_graph: SchemaGraph) -> "SchemaClosure":
        from repro.obs.metrics import get_metrics

        started = time.perf_counter()
        new_nodes = tuple(new_graph.nodes())
        new_set = set(new_nodes)
        removed_classes = {name for name in self.nodes if name not in new_set}
        survivors = [name for name in self.nodes if name in new_set]
        appended = [name for name in new_nodes if name not in self.index]
        if list(new_nodes) != survivors + appended:
            # Node order drifted (e.g. a schema rebuilt from scratch
            # rather than edited in place): positions are meaningless
            # across the two views, so patching would be wrong.
            return SchemaClosure(new_graph)

        removed_edges, added_edges = self._edge_diff(new_graph, new_nodes)

        clone = SchemaClosure.__new__(SchemaClosure)
        clone.graph = new_graph
        clone.nodes = new_nodes
        clone.index = {name: pos for pos, name in enumerate(new_nodes)}
        clone._lock = threading.Lock()
        repairs = 0

        old_reach = self._reach
        if old_reach is None:
            clone._reach = None  # never built — nothing to save
        else:
            clone._reach = self._patched_reach(
                old_reach,
                clone,
                removed_edges,
                added_edges,
                removed_classes,
            )
            repairs += 1

        clone._tables = {}
        with self._lock:
            old_tables = dict(self._tables)
        if not removed_classes:
            # Class removals reorder every node index the tables are
            # built around; cheaper to rebuild lazily than to remap.
            for table_key, tables in old_tables.items():
                target = _target_from_cache_key(table_key)
                if self._table_survives_removals(
                    tables, target, removed_edges
                ):
                    clone._tables[table_key] = clone._repair_tables(
                        tables, target, added_edges
                    )
                    repairs += 1

        clone.build_seconds = time.perf_counter() - started
        if repairs:
            get_metrics().counter("closure.incremental_repairs").inc(repairs)
        return clone

    def _edge_diff(
        self, new_graph: SchemaGraph, new_nodes: tuple[str, ...]
    ) -> tuple[list, list]:
        """Removed/added edges between the two traversal views.

        Edges are keyed by relationship identity ``(source, name)``; a
        retargeted or re-kinded key counts as remove + add, mirroring
        :meth:`SchemaDelta.diff <repro.model.delta.SchemaDelta.diff>`.
        """

        def edge_map(graph: SchemaGraph, nodes: tuple[str, ...]) -> dict:
            return {
                (edge.source, edge.name): edge
                for name in nodes
                for edge in graph.edges_from(name)
            }

        old_edges = edge_map(self.graph, self.nodes)
        new_edges = edge_map(new_graph, new_nodes)

        def differs(a, b) -> bool:
            return a.target != b.target or a.connector is not b.connector

        removed = [
            edge
            for key, edge in old_edges.items()
            if key not in new_edges or differs(edge, new_edges[key])
        ]
        added = [
            edge
            for key, edge in new_edges.items()
            if key not in old_edges or differs(edge, old_edges[key])
        ]
        return removed, added

    def _patched_reach(
        self,
        old_reach: list[int],
        clone: "SchemaClosure",
        removed_edges: list,
        added_edges: list,
        removed_classes: set[str],
    ) -> list[int]:
        """Maintain the reachability rows across the edge diff.

        Deletions first (on the old index space), then column/row
        compression for removed classes, then appended rows for new
        classes, then insertions one by one (on the new index space).
        """
        old_index = self.index
        reach = list(old_reach)

        if removed_edges or removed_classes:
            removed_keys = {
                (edge.source, edge.name) for edge in removed_edges
            }
            removed_src_mask = 0
            for edge in removed_edges:
                removed_src_mask |= 1 << old_index[edge.source]
            # Adjacency of the mid graph: old view minus deleted edges.
            mid_adjacency = [
                [
                    old_index[edge.target]
                    for edge in self.graph.edges_from(name)
                    if (edge.source, edge.name) not in removed_keys
                ]
                for name in self.nodes
            ]
            # A row is affected only if it reached a deleted edge's
            # source: any lost path must cross a deleted edge, and the
            # row reaches that edge's source along the path's prefix.
            affected = [
                position
                for position in range(len(self.nodes))
                if reach[position] & removed_src_mask
            ]
            affected_mask = 0
            for position in affected:
                affected_mask |= 1 << position
            for position in affected:
                # DFS over the mid graph, shortcutting through
                # unaffected rows: their old rows are still exact (no
                # path from them crosses a deleted edge), and anything
                # they reach is itself unaffected, so absorbed bits
                # need no further expansion.
                visited = 1 << position
                stack = [position]
                while stack:
                    current = stack.pop()
                    for child in mid_adjacency[current]:
                        bit = 1 << child
                        if visited & bit:
                            continue
                        if affected_mask & bit:
                            visited |= bit
                            stack.append(child)
                        else:
                            visited |= reach[child]
                reach[position] = visited

        if removed_classes:
            # Surviving rows hold no removed-class bits (every in-edge
            # of a removed class was deleted, so reaching one would
            # have required crossing a deleted edge — an affected row,
            # just recomputed over the mid graph where the class is
            # unreachable).  Compress the columns out and splice the
            # rows.
            removed_positions = sorted(
                (old_index[name] for name in removed_classes), reverse=True
            )
            compressed = []
            for position, name in enumerate(self.nodes):
                if name in removed_classes:
                    continue
                row = reach[position]
                for cut in removed_positions:
                    row = ((row >> (cut + 1)) << cut) | (row & ((1 << cut) - 1))
                compressed.append(row)
            reach = compressed

        for position in range(len(reach), len(clone.nodes)):
            reach.append(1 << position)  # new classes: reflexive only

        new_index = clone.index
        for edge in added_edges:
            # Single-edge closure: every row that reaches u now also
            # reaches everything v reaches.  The snapshot of reach[v]
            # is taken before the row sweep; the result is transitively
            # closed, so edges may be folded in sequentially.
            u_bit = 1 << new_index[edge.source]
            v_row = reach[new_index[edge.target]]
            for position in range(len(reach)):
                if reach[position] & u_bit:
                    reach[position] |= v_row
        return reach

    def _table_survives_removals(
        self, tables: TargetTables, target: Target, removed_edges: list
    ) -> bool:
        """True when no deleted edge participated in this table.

        A deleted *completing* edge shrinks the completion set and can
        raise bounds everywhere.  A deleted interior edge ``u -> v``
        contributed transitions only if ``v`` had any achievable
        completion (non-empty ``conns`` row); if it never contributed,
        the table is untouched by the deletion.
        """
        for edge in removed_edges:
            if target.is_completing_edge(edge):
                return False
            child = self.index.get(edge.target)
            if child is not None and tables.conns[child]:
                return False
        return True

    def _repair_tables(
        self, tables: TargetTables, target: Target, added_edges: list
    ) -> TargetTables:
        """Repair a surviving table for inserted edges (``self`` here is
        the *evolved* closure; ``tables`` comes from its predecessor).

        Distances only decrease under insertion, so seeding the standard
        relaxation worklist from the new edges over the kept ``dist``
        array reaches exactly the fixpoint a from-scratch build would.
        The worklist is order-insensitive (strict-decrease updates over
        bounded non-negative integers), so mixed-distance seeds are
        fine.  Only nodes whose states actually improved are
        re-collapsed; the per-node edge lists are re-derived from the
        new adjacency, which re-admits edges that reachability pruning
        dropped when their child's ``conns`` row was empty.
        """
        n = len(self.nodes)
        stride = _N_CONNECTORS * _N_PRIMARY
        dist = bytearray(tables.dist)
        if len(dist) < n * stride:
            dist.extend(bytearray([_INF]) * (n * stride - len(dist)))
        reach_mask = tables.reach_mask
        index = self.index
        queue: deque[tuple[int, int]] = deque()
        changed: set[int] = set()

        for edge in added_edges:
            position = index[edge.source]
            connector = edge.connector
            primary = _PRIMARY_INDEX[connector]
            if target.is_completing_edge(edge):
                reach_mask |= 1 << position
                base = 0 if connector.is_taxonomic else 1
                state = (
                    position * _N_CONNECTORS + connector.index
                ) * _N_PRIMARY + primary
                if base < dist[state]:
                    dist[state] = base
                    changed.add(position)
                    queue.appendleft((state, base))
            else:
                # Relax the new interior edge once from every finite
                # state of its child; the worklist carries it on.
                child_base = index[edge.target] * stride
                weights = _PREPEND_WEIGHT[primary]
                con_row = _CON_ROWS[connector.index]
                for composed in range(_N_CONNECTORS):
                    offset = child_base + composed * _N_PRIMARY
                    for first in range(_N_PRIMARY):
                        d = dist[offset + first]
                        if d >= _INF:
                            continue
                        nd = d + weights[first]
                        if nd > _CAP:
                            continue
                        state = (
                            position * _N_CONNECTORS + con_row[composed].index
                        ) * _N_PRIMARY + primary
                        if nd < dist[state]:
                            dist[state] = nd
                            changed.add(position)
                            if weights[first]:
                                queue.append((state, nd))
                            else:
                                queue.appendleft((state, nd))

        if queue:
            in_edges: list[list] = [[] for _ in range(n)]
            for position, name in enumerate(self.nodes):
                for edge in self.graph.edges_from(name):
                    if target.is_completing_edge(edge):
                        continue
                    in_edges[index[edge.target]].append(
                        (
                            position,
                            _PRIMARY_INDEX[edge.connector],
                            _PREPEND_WEIGHT[_PRIMARY_INDEX[edge.connector]],
                            _CON_ROWS[edge.connector.index],
                        )
                    )
            while queue:
                state, d = queue.popleft()
                if d > dist[state]:
                    continue
                node, rest = divmod(state, stride)
                composed, first = divmod(rest, _N_PRIMARY)
                for source, primary, weights, con_row in in_edges[node]:
                    weight = weights[first]
                    nd = d + weight
                    if nd > _CAP:
                        continue
                    next_state = (
                        source * _N_CONNECTORS + con_row[composed].index
                    ) * _N_PRIMARY + primary
                    if nd < dist[next_state]:
                        dist[next_state] = nd
                        changed.add(source)
                        if weight:
                            queue.append((next_state, nd))
                        else:
                            queue.appendleft((next_state, nd))

        rows = list(tables.rows)
        conns = list(tables.conns)
        while len(rows) < n:
            rows.append(b"")
            conns.append(())
        for node in sorted(changed | set(range(len(tables.rows), n))):
            rows[node], conns[node] = self._collapse_node(dist, node)

        repaired = TargetTables(
            reach_mask=reach_mask,
            rows=rows,
            conns=conns,
            completing=[],
            interior=[],
            reach_pruned=[],
            dist=dist,
        )
        self._attach_edge_lists(repaired, target)
        return repaired

    def _build_reachability(self) -> list[int]:
        """Reflexive-transitive reachability as big-int bitset rows."""
        n = len(self.nodes)
        index = self.index
        reach = [0] * n
        for position, name in enumerate(self.nodes):
            mask = 1 << position  # reflexive: a node reaches itself
            for edge in self.graph.edges_from(name):
                mask |= 1 << index[edge.target]
            reach[position] = mask
        # Warshall over bitset rows: when i reaches k, fold in k's row.
        for k in range(n):
            bit = 1 << k
            row_k = reach[k]
            for i in range(n):
                row_i = reach[i]
                if row_i & bit and row_i | row_k != row_i:
                    reach[i] = row_i | row_k
        return reach

    # ------------------------------------------------------------------
    # Per-target tables
    # ------------------------------------------------------------------

    def tables_for(self, target: Target) -> TargetTables | None:
        """The bound tables for ``target`` (memoized by content key).

        Returns ``None`` for target types without a stable content key;
        the search then runs without closure pruning for that query.
        """
        key = _target_cache_key(target)
        if key is None:
            return None
        tables = self._tables.get(key)
        if tables is not None:
            return tables
        tables = self._build_tables(target)
        with self._lock:
            return self._tables.setdefault(key, tables)

    def _build_tables(self, target: Target) -> TargetTables:
        """Backward 0/1-BFS over (node, composed connector, first) states."""
        n = len(self.nodes)
        index = self.index
        stride = _N_CONNECTORS * _N_PRIMARY  # states per node
        dist = bytearray([_INF]) * (n * stride)
        queue: deque[tuple[int, int]] = deque()
        reach_mask = 0
        # In-edges along interior (non-completing) edges, as
        # (source index, primary index, weight row, CON row) tuples.
        in_edges: list[list[tuple[int, int, tuple[int, ...], tuple[Connector, ...]]]] = [
            [] for _ in range(n)
        ]
        for position, name in enumerate(self.nodes):
            for edge in self.graph.edges_from(name):
                connector = edge.connector
                primary = _PRIMARY_INDEX[connector]
                if target.is_completing_edge(edge):
                    reach_mask |= 1 << position
                    base = 0 if connector.is_taxonomic else 1
                    state = (
                        position * _N_CONNECTORS + connector.index
                    ) * _N_PRIMARY + primary
                    if base < dist[state]:
                        dist[state] = base
                        queue.appendleft((state, base))
                else:
                    in_edges[index[edge.target]].append(
                        (
                            position,
                            primary,
                            _PREPEND_WEIGHT[primary],
                            _CON_ROWS[connector.index],
                        )
                    )
        while queue:
            state, d = queue.popleft()
            if d > dist[state]:
                continue  # stale queue entry
            node, rest = divmod(state, stride)
            composed, first = divmod(rest, _N_PRIMARY)
            for source, primary, weights, con_row in in_edges[node]:
                weight = weights[first]
                nd = d + weight
                if nd > _CAP:
                    continue
                next_state = (
                    source * _N_CONNECTORS + con_row[composed].index
                ) * _N_PRIMARY + primary
                if nd < dist[next_state]:
                    dist[next_state] = nd
                    if weight:
                        queue.append((next_state, nd))
                    else:
                        queue.appendleft((next_state, nd))
        tables = self._collapse_tables(dist, reach_mask)
        self._attach_edge_lists(tables, target)
        return tables

    def _attach_edge_lists(
        self, tables: TargetTables, target: Target
    ) -> None:
        """Precompute per-node completing/interior edge views.

        Reachability pruning happens here, once: interior edges whose
        child has no achievable completion (empty ``conns`` — tighter
        than raw reachability, since it ignores paths that would cross a
        completing edge) never make it into the traversal's edge list.
        """
        index = self.index
        conns = tables.conns
        is_completing = target.is_completing_edge
        for name in self.nodes:
            comp: list[tuple] = []
            inter: list[tuple] = []
            dropped: list[tuple] = []
            for edge in self.graph.edges_from(name):
                if is_completing(edge):
                    comp.append((edge, edge.target, edge.connector.index))
                else:
                    child_i = index[edge.target]
                    if conns[child_i]:
                        inter.append(
                            (edge.target, child_i, edge.connector.index, edge)
                        )
                    else:
                        dropped.append(
                            (edge.target, edge.connector.index, edge)
                        )
            tables.completing.append(tuple(comp))
            tables.interior.append(tuple(inter))
            tables.reach_pruned.append(len(dropped))
            tables.reach_dropped.append(tuple(dropped))

    @staticmethod
    def _collapse_node(
        dist: bytearray, node: int
    ) -> tuple[bytes, tuple[int, ...]]:
        """One node's collapsed row: fold the (first connector) axis
        into per-seam-class minima."""
        stride = _N_CONNECTORS * _N_PRIMARY
        base = node * stride
        row = bytearray([_INF]) * (_N_LAST_CLASSES * _N_CONNECTORS)
        achievable: list[int] = []
        for composed in range(_N_CONNECTORS):
            offset = base + composed * _N_PRIMARY
            segment = dist[offset : offset + _N_PRIMARY]
            if min(segment) >= _INF:
                continue
            achievable.append(composed)
            for last_class in range(_N_LAST_CLASSES):
                seam = _SEAM_BY_CLASS[last_class]
                best = _INF
                for first in range(_N_PRIMARY):
                    d = segment[first]
                    if d >= _INF:
                        continue
                    value = d + seam[first]
                    if value < best:
                        best = value
                if best < 0:
                    best = 0
                elif best > _CAP:
                    best = _CAP
                row[last_class * _N_CONNECTORS + composed] = best
        achievable.sort(key=lambda ci: ALL_CONNECTORS[ci].sort_rank)
        return bytes(row), tuple(achievable)

    def _collapse_tables(
        self, dist: bytearray, reach_mask: int
    ) -> TargetTables:
        """Fold the (first connector) axis into per-seam-class minima."""
        rows: list[bytes] = []
        conns: list[tuple[int, ...]] = []
        for node in range(len(self.nodes)):
            row, achievable = self._collapse_node(dist, node)
            rows.append(row)
            conns.append(achievable)
        return TargetTables(
            reach_mask=reach_mask,
            rows=rows,
            conns=conns,
            completing=[],
            interior=[],
            reach_pruned=[],
            dist=dist,
        )

    def __repr__(self) -> str:
        return (
            f"SchemaClosure(nodes={len(self.nodes)}, "
            f"targets={len(self._tables)}, "
            f"build={self.build_seconds * 1000:.1f}ms)"
        )
