"""The university schema of the paper's Figure 2.

Reconstructed from the figure's description and every worked example in
Sections 1-4:

* Isa lattice: ``ta`` (teaching assistant) multiply inherits from
  ``grad`` and ``instructor``; ``grad @> student @> person``;
  ``instructor @> teacher @> employee @> person``;
  ``professor @> teacher``; ``staff @> employee``.
* ``student`` takes ``course``s (``take`` / inverse ``student``);
  ``teacher`` teaches ``course``s (``teach`` / inverse ``teacher``).
* ``department`` Has-Part ``professor`` (the paper's ``[$>, 1]`` label
  example); students are associated with departments; universities
  Has-Part departments.
* ``person`` has ``name`` and ``ssn`` attributes; ``course`` and
  ``department`` have ``name`` attributes — which is what makes
  ``ta ~ name`` genuinely ambiguous.

The paper's flagship example must hold on this schema (and is pinned in
the tests): ``ta ~ name`` completes to exactly::

    ta@>grad@>student@>person.name
    ta@>instructor@>teacher@>employee@>person.name
"""

from __future__ import annotations

from repro.model.builder import SchemaBuilder
from repro.model.schema import Schema

__all__ = ["build_university_schema", "UNIVERSITY_EXAMPLES"]


def build_university_schema() -> Schema:
    """Build the Figure 2 schema (fresh instance on every call)."""
    builder = SchemaBuilder("university")

    builder.cls("person", doc="any person known to the university")
    builder.cls("person").attr("name").attr("ssn", "I")

    # Student-side Isa chain.
    builder.cls("student").isa("person")
    builder.cls("grad").isa("student")

    # Employee-side Isa chain.
    builder.cls("employee").isa("person")
    builder.cls("teacher").isa("employee")
    builder.cls("professor").isa("teacher")
    builder.cls("instructor").isa("teacher")
    builder.cls("staff").isa("employee")

    # The teaching assistant multiply inherits (paper Section 2.2.2).
    builder.cls("ta", doc="teaching assistant").isa("grad").isa("instructor")

    # Courses and their associations.
    builder.cls("course").attr("name")
    builder.cls("student").assoc("course", name="take", inverse_name="student")
    builder.cls("teacher").assoc("course", name="teach", inverse_name="teacher")

    # Departments and universities.
    builder.cls("department").attr("name")
    builder.cls("department").has_part(
        "professor", inverse_name="department"
    )
    builder.cls("student").assoc(
        "department", name="department", inverse_name="student"
    )
    builder.cls("university").attr("name")
    builder.cls("university").has_part(
        "department", inverse_name="university"
    )

    return builder.build()


#: Worked examples from the paper, as (expression, meaning) pairs;
#: each must parse and (when complete) validate against the schema.
UNIVERSITY_EXAMPLES: tuple[tuple[str, str], ...] = (
    ("student.take.teacher", "teachers of courses taken by students"),
    ("student@>person.ssn", "soc. sec. nums of persons who are students"),
    (
        "department.student@>person.name",
        "names of persons who are students of departments",
    ),
    ("ta~name", "names of teaching assistants (incomplete)"),
    (
        "ta@>grad@>student@>person.name",
        "names of teaching assistants (via the grad chain)",
    ),
    (
        "ta@>instructor@>teacher@>employee@>person.name",
        "names of teaching assistants (via the instructor chain)",
    ),
    (
        "ta@>grad@>student.take.student@>person.name",
        "names of students taking courses with TAs",
    ),
    ("ta@>grad@>student.take.name", "names of courses taken by TAs"),
    ("ta@>instructor@>teacher.teach.name", "names of courses taught by TAs"),
    ("ta@>grad@>student.department.name", "names of departments of TAs"),
)
