"""Configuration of the always-on serving tier.

One frozen :class:`ServeConfig` fixes every robustness knob of a
:class:`~repro.serve.app.ServingTier` instance: the admission-queue
bound (load shedding), the per-request budget defaults and ceilings,
the drain deadline, the cross-tenant cache memory bound, and the
executor-pool width.  Budgets are *mandatory* by construction — every
admitted request gets a wall-clock deadline (the request can lower it,
or raise it up to ``max_deadline_ms``), which is what makes the drain
guarantee provable: no in-flight request can outlive its own deadline,
and during a drain the server clock makes every armed deadline expire
at the drain boundary at the latest.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Mapping

from repro.core.procpool import EXECUTOR_MODES
from repro.resilience.budget import Budget, CancelSignal

__all__ = ["ServeConfig"]

#: Request headers consulted when deriving the per-request budget.
DEADLINE_HEADER = "x-deadline-ms"
MAX_NODES_HEADER = "x-max-nodes"


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Immutable serving-tier configuration.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks an ephemeral port (tests).
    queue_limit:
        Bound on requests admitted but not yet answered (queued plus
        executing).  The request over the bound is shed with ``429``
        and ``Retry-After`` — the queue never grows without bound.
    workers:
        Threads in the executor pool running the synchronous engine;
        also the true concurrency of completions.  Admitted requests
        beyond this wait in the (bounded) queue.
    executor:
        Worker-pool backend for *boot-time prewarm* fan-out:
        ``"thread"`` (default) or ``"process"`` (shards cold prewarm
        completions across cores, see :mod:`repro.core.procpool`).
        The per-request pool is always threads regardless — every
        admitted request's budget carries the server's drain clock and
        cancel signal, which cannot cross a process boundary (that is
        exactly the process backend's documented fallback condition).
    default_deadline_ms, max_deadline_ms:
        Wall-clock budget applied to a request that names none, and the
        ceiling a request-supplied ``X-Deadline-Ms`` is clamped to.
    default_max_nodes:
        Optional node-expansion cap applied when the request names none
        (``X-Max-Nodes`` overrides, uncapped — node caps only shrink
        work).
    drain_deadline_s:
        After SIGTERM: how long in-flight requests may keep running
        before the server clock expires every armed deadline and the
        remaining requests return best-so-far ``206`` responses.
    retry_after_s:
        The ``Retry-After`` hint attached to shed (``429``) responses;
        drain (``503``) responses advertise the drain deadline instead.
    max_cache_bytes:
        Global bound on the estimated bytes of all tenants' completion
        caches together; crossing it evicts LRU entries from the least
        recently *used tenant* first (see
        :class:`repro.serve.tenants.TenantRegistry`).
    slow_ms:
        Slow-log retention threshold.  The default ``0.0`` retains an
        entry for *every* request (bounded by the slow log's ring
        capacity), which is what the acceptance contract asserts; raise
        it in production to keep only the tail.
    request_timeout_s:
        Socket-read timeout for one request (kills idle keep-alive
        connections and slow-loris writers).
    max_body_bytes:
        Bound on one request body (``413`` beyond it).
    trace_sample_rate:
        Probability that a completion/query request gets a recording
        tracer (head sampling).  ``0.0`` (the default) records no
        traces up front; tail promotion still retains the trace of any
        request that ends slow, truncated, or errored.
    trace_sample_seed:
        Optional RNG seed for the head sampler, for deterministic
        sampling under test and in benchmarks.
    access_log:
        Whether the structured JSONL access log records requests at
        all.  On by default; benchmarks measuring the bare serving
        path turn it off.
    access_log_capacity:
        Ring-buffer bound on in-memory access-log records.
    access_log_path:
        Optional file sink — every access record is also appended (one
        JSON object per line, line-flushed) to this path.
    slo_availability_target:
        Availability objective (fraction of requests that must not be
        5xx/shed), e.g. ``0.999``.
    slo_latency_ms, slo_latency_target:
        Latency objective: at least ``slo_latency_target`` of requests
        must answer within ``slo_latency_ms``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_limit: int = 16
    workers: int = 4
    executor: str = "thread"
    default_deadline_ms: float = 1000.0
    max_deadline_ms: float = 10_000.0
    default_max_nodes: int | None = None
    drain_deadline_s: float = 5.0
    retry_after_s: float = 0.25
    max_cache_bytes: int = 8 * 1024 * 1024
    slow_ms: float = 0.0
    request_timeout_s: float = 10.0
    max_body_bytes: int = 1 << 20
    trace_sample_rate: float = 0.0
    trace_sample_seed: int | None = None
    access_log: bool = True
    access_log_capacity: int = 1024
    access_log_path: str | None = None
    slo_availability_target: float = 0.999
    slo_latency_ms: float = 250.0
    slo_latency_target: float = 0.99

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit!r}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.executor not in EXECUTOR_MODES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_MODES}, "
                f"got {self.executor!r}"
            )
        if self.default_deadline_ms <= 0 or self.max_deadline_ms <= 0:
            raise ValueError("deadlines must be positive")
        if self.default_deadline_ms > self.max_deadline_ms:
            raise ValueError(
                "default_deadline_ms must not exceed max_deadline_ms"
            )
        if self.default_max_nodes is not None and self.default_max_nodes < 1:
            raise ValueError("default_max_nodes must be >= 1")
        if self.drain_deadline_s <= 0:
            raise ValueError("drain_deadline_s must be positive")
        if self.max_cache_bytes < 1:
            raise ValueError("max_cache_bytes must be >= 1")
        if self.request_timeout_s <= 0 or self.max_body_bytes < 1:
            raise ValueError("request_timeout_s and max_body_bytes positive")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], "
                f"got {self.trace_sample_rate!r}"
            )
        if self.access_log_capacity < 1:
            raise ValueError("access_log_capacity must be >= 1")
        if not 0.0 < self.slo_availability_target < 1.0:
            raise ValueError("slo_availability_target must be in (0, 1)")
        if not 0.0 < self.slo_latency_target < 1.0:
            raise ValueError("slo_latency_target must be in (0, 1)")
        if self.slo_latency_ms <= 0:
            raise ValueError("slo_latency_ms must be positive")

    def budget_for(
        self,
        headers: Mapping[str, str],
        clock: Callable[[], float] = time.monotonic,
        cancel: CancelSignal | None = None,
    ) -> Budget:
        """The per-request budget derived from config and headers.

        ``X-Deadline-Ms`` lowers or raises the default deadline (clamped
        to ``max_deadline_ms``); ``X-Max-Nodes`` sets the expansion cap.
        ``partial_ok`` is always on — a tripped request is a ``206``
        with the best-so-far answer, never a hung connection or a bare
        failure.  ``clock`` is the server's drain-aware clock so a
        drain can expire every outstanding deadline at once; ``cancel``
        is the server's drain cancel signal so a drain past its hard
        boundary aborts mid-expansion rather than at the next clock
        sample.
        """
        deadline_ms = self.default_deadline_ms
        raw = headers.get(DEADLINE_HEADER)
        if raw is not None:
            try:
                deadline_ms = float(raw)
            except ValueError as error:
                raise ValueError(
                    f"invalid {DEADLINE_HEADER} header: {raw!r}"
                ) from error
            if deadline_ms <= 0:
                raise ValueError(
                    f"{DEADLINE_HEADER} must be positive, got {raw!r}"
                )
            deadline_ms = min(deadline_ms, self.max_deadline_ms)
        max_nodes = self.default_max_nodes
        raw = headers.get(MAX_NODES_HEADER)
        if raw is not None:
            try:
                max_nodes = int(raw)
            except ValueError as error:
                raise ValueError(
                    f"invalid {MAX_NODES_HEADER} header: {raw!r}"
                ) from error
            if max_nodes < 1:
                raise ValueError(
                    f"{MAX_NODES_HEADER} must be >= 1, got {raw!r}"
                )
        return Budget(
            max_seconds=deadline_ms / 1000.0,
            max_nodes=max_nodes,
            partial_ok=True,
            clock=clock,
            cancel=cancel,
        )
