"""The ten ad-hoc incomplete path expressions of the evaluation
(paper Section 5.2), on the synthetic CUPID schema.

Each query plays the role of one of the schema designer's ad-hoc
questions.  Intent sets are calibrated to the published findings (see
``repro.experiments.oracle`` and DESIGN.md Section 3):

* for eight queries the intent is exactly the strongest/shortest
  completion(s) — the paper observed precision 100% at E=1;
* ``q09`` and ``q10`` each carry one *idiosyncratic* second intent that
  the generic algorithm provably never returns (one connector-dominated,
  one a tie lost to branch-and-bound ordering), reproducing the flat
  ~90% average recall;
* ``also_plausible`` lists completions the designer would accept as
  equally plausible when shown (the paper's U₀-extension rule).

The canonical expression strings below are pinned against the synthetic
CUPID schema; ``tests/experiments/test_workload.py`` asserts that every
intended-and-findable path is actually produced and that the
idiosyncratic ones are valid expressions the algorithm misses.
"""

from __future__ import annotations

from repro.core.domain import DomainKnowledge
from repro.experiments.oracle import DesignerOracle, WorkloadQuery
from repro.schemas.cupid import AUXILIARY_CLASSES

__all__ = [
    "build_cupid_workload",
    "designer_domain_knowledge",
    "ABSTRACT_UMBRELLA_CLASSES",
]

#: Abstract umbrella classes: like the paper's auxiliary classes, they
#: are "connected to a plethora of other classes but without much
#: inherent semantic content" — pure classification nodes whose only
#: role in completions is implausible sibling-hopping (x @> umbrella <@ y).
ABSTRACT_UMBRELLA_CLASSES = (
    "instrument",
    "parameter",
    "process",
    "profile",
    "spec",
)


def designer_domain_knowledge() -> DomainKnowledge:
    """The Section 5.2 domain knowledge: classes that should never be
    part of the completion of any incomplete path expression."""
    return DomainKnowledge.excluding(
        *AUXILIARY_CLASSES, *ABSTRACT_UMBRELLA_CLASSES
    )


def build_cupid_workload() -> DesignerOracle:
    """The ten queries with their calibrated intent sets."""
    queries = (
        WorkloadQuery(
            query_id="q01",
            text="experiment ~ conductance",
            intended=(
                "experiment$>simulation$>crop$>canopy$>canopy_layer"
                "$>leaf_class$>leaf$>stomata.conductance",
            ),
            also_plausible=(
                "experiment$>simulation$>atmosphere$>co2_profile"
                ".stomata.conductance",
                "experiment$>simulation$>atmosphere$>radiation_regime"
                "$>solar_radiation.intercepted_by$>leaf_class$>leaf"
                "$>stomata.conductance",
                "experiment$>simulation$>site$>field$>plot.grows$>canopy"
                "$>canopy_layer$>leaf_class$>leaf$>stomata.conductance",
            ),
            note="stomatal conductance of the experiment's crop leaves",
        ),
        WorkloadQuery(
            query_id="q02",
            text="simulation ~ value",
            intended=(
                "simulation$>crop$>phenology$>development_rate.value",
                "simulation$>numerics$>solver$>tolerance_spec.value",
                "simulation$>soil_profile$>soil_layer$>soil_moisture.value",
                "simulation$>soil_profile$>soil_layer$>soil_temperature.value",
                "simulation$>crop$>canopy$>canopy_layer$>leaf_class"
                "$>leaf_angle.value",
            ),
            also_plausible=(
                "simulation$>numerics$>solver.controls.value",
                "simulation$>numerics$>time_grid.step_size.value",
                "simulation$>site$>weather_station.records.measurement.value",
                "simulation$>site$>field$>plot.grows$>phenology"
                "$>development_rate.value",
                "simulation$>site$>field$>plot.grows$>canopy$>canopy_layer"
                "$>leaf_class$>leaf_angle.value",
            ),
            note="consciously ambiguous: all state values of a simulation",
        ),
        WorkloadQuery(
            query_id="q03",
            text="scientist ~ lai",
            intended=(
                "scientist.runs$>simulation$>crop$>canopy$>canopy_layer.lai",
            ),
            also_plausible=(
                "scientist.runs$>simulation$>atmosphere$>radiation_regime"
                "$>solar_radiation.intercepted_by.lai",
                "scientist.runs$>simulation$>site$>field$>plot.grows"
                "$>canopy$>canopy_layer.lai",
            ),
            note="leaf area index of the scientist's simulated canopy",
        ),
        WorkloadQuery(
            query_id="q04",
            text="crop ~ depth",
            intended=("crop$>root_system.depth",),
            also_plausible=(
                "crop<$simulation$>soil_profile$>drainage_system.depth",
                "crop<$simulation$>soil_profile$>soil_layer.depth",
                "crop<$simulation$>soil_profile$>root_zone.occupant.depth",
            ),
            note="rooting depth of the crop",
        ),
        WorkloadQuery(
            query_id="q05",
            text="weather_station ~ flux",
            intended=(
                "weather_station<$site<$simulation$>atmosphere"
                "$>radiation_regime$>solar_radiation.flux",
            ),
            note="solar radiation flux at the station's site",
        ),
        WorkloadQuery(
            query_id="q06",
            text="soil_layer ~ amount",
            intended=("soil_layer.amendment.amount",),
            also_plausible=(
                "soil_layer<$soil_profile<$simulation$>management"
                "$>fertilization_plan$>fertilizer_application.amount",
                "soil_layer<$soil_profile<$simulation$>management"
                "$>irrigation_system$>irrigation_event.amount",
                "soil_layer<$soil_profile<$simulation$>crop$>root_system"
                ".occupies$>root_segment.extracts.irrigation.amount",
            ),
            note="amendment amounts applied to the layer",
        ),
        WorkloadQuery(
            query_id="q07",
            text="canopy ~ sand_fraction",
            intended=(
                "canopy<$crop<$simulation$>soil_profile$>soil_layer"
                "$>soil_texture.sand_fraction",
            ),
            note="soil texture under the canopy's crop",
        ),
        WorkloadQuery(
            query_id="q08",
            text="simulation ~ latitude",
            intended=("simulation$>site$>location.latitude",),
            note="latitude of the simulated site",
        ),
        WorkloadQuery(
            query_id="q09",
            text="simulation ~ name",
            intended=(
                "simulation.name",
                # Idiosyncratic: "the names of datasets curated by the
                # investigator of this simulation's experiment" — its
                # label [..,4] is connector-dominated by [.,1] at every
                # E, so a generic algorithm never proposes it.
                "simulation<$experiment.investigator.curates.name",
            ),
            note="simulation name (plus an idiosyncratic dataset intent)",
        ),
        WorkloadQuery(
            query_id="q10",
            text="phenology ~ dry_mass",
            intended=(
                "phenology<$crop$>fruit.dry_mass",
                # Idiosyncratic: same optimal label [..,3] as the path
                # above, but reached through growth_stage; Algorithm 2's
                # best[]-bound prunes the fruit node after the stronger
                # [.SP,2] prefix arrives first, so this tie is lost —
                # exactly the "special cases unlikely to be captured by
                # a generic algorithm" the paper describes.
                "phenology$>growth_stage.fruit.dry_mass",
            ),
            note="fruit dry mass at the phenology's stages",
        ),
    )
    return DesignerOracle(queries)
