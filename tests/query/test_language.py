"""Tests for the tiny query language."""

import pytest

from repro.errors import QuerySyntaxError
from repro.model.instances import Database
from repro.query.language import parse_query, run_query


@pytest.fixture()
def db(university):
    db = Database(university)
    alice = db.create("student")
    bob = db.create("ta")
    db.set_attribute(alice, "name", "alice")
    db.set_attribute(alice, "ssn", 100)
    db.set_attribute(bob, "name", "bob")
    db.set_attribute(bob, "ssn", 200)
    return db


class TestParsing:
    def test_plain_get(self):
        query = parse_query("get student@>person.name")
        assert query.path_text == "student@>person.name"
        assert query.operator is None

    def test_where_clause(self):
        query = parse_query("get student@>person.ssn where < 150")
        assert query.operator == "<"
        assert query.literal == 150

    def test_string_literal(self):
        query = parse_query('get person.name where = "alice"')
        assert query.literal == "alice"

    def test_contains(self):
        query = parse_query("get person.name where contains li")
        assert query.operator == "contains"

    def test_boolean_literal(self):
        assert parse_query("get a.b where = true").literal is True

    def test_float_literal(self):
        assert parse_query("get a.b where > 1.5").literal == 1.5

    def test_case_insensitive_keywords(self):
        assert parse_query("GET a.b WHERE = 1").operator == "="

    def test_bad_syntax(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("fetch a.b")

    def test_bad_operator(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("get a.b where ~= 1")


class TestRunning:
    def test_complete_query(self, db):
        result = run_query(db, "get student@>person.name")
        assert result.values == {"alice", "bob"}

    def test_where_filters_values(self, db):
        result = run_query(db, "get student@>person.ssn where < 150")
        assert result.values == {100}

    def test_where_equality(self, db):
        result = run_query(db, 'get student@>person.name where = "bob"')
        assert result.values == {"bob"}

    def test_incomplete_query_is_completed_first(self, db):
        result = run_query(db, "get ta ~ name")
        assert result.values == {"bob"}
        assert len(result.completions) == 2  # both Isa chains evaluated

    def test_per_completion_results(self, db):
        result = run_query(db, "get ta ~ name")
        for expression, values in result.per_completion:
            assert expression.startswith("ta@>")
            assert values == frozenset({"bob"})

    def test_type_mismatch_filters_out(self, db):
        result = run_query(db, "get student@>person.name where < 5")
        assert result.values == frozenset()

    def test_matches_helper(self):
        query = parse_query("get a.b where != 1")
        assert query.matches(2)
        assert not query.matches(1)
