"""Bench A5 — search cost growth with the relaxation parameter E.

Not a paper figure, but the flip side of its Section 4.4/5.4 trade-off:
each extra unit of the AGG* window weakens the branch-and-bound and the
recursive-call count grows superlinearly.  This quantifies the price of
the precision/recall knob that Figures 5/6 sweep.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.completion import CompletionSearch
from repro.core.target import RelationshipTarget
from repro.experiments.reporting import table

E_VALUES = (1, 2, 3, 4)
QUERY = ("experiment", "conductance")


@pytest.mark.benchmark(group="cost-vs-e")
def test_cost_growth_with_e(benchmark, cupid_graph):
    root, name = QUERY
    target = RelationshipTarget(name)
    rows = []

    def sweep():
        rows.clear()
        for e in E_VALUES:
            search = CompletionSearch(cupid_graph, e=e)
            result = search.run(root, target)
            rows.append(
                (
                    e,
                    len(result.paths),
                    result.stats.recursive_calls,
                    f"{result.stats.elapsed_seconds:.2f}s",
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Ablation A5: cost vs E ({root} ~ {name})",
        table(["E", "completions", "recursive calls", "time"], rows),
    )
    calls = [row[2] for row in rows]
    # each step of E costs real work: strictly increasing call counts,
    # with the E=4 search at least an order of magnitude above E=1
    assert calls == sorted(calls)
    assert calls[-1] > 10 * calls[0]
