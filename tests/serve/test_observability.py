"""Request-scoped observability end to end: request IDs, the access
log, sampled tracing with tail promotion, SLO surfacing, the ops debug
endpoint, drain cancellation, and healthz-vs-evolve consistency.

The correlation contract under test: one ``X-Request-Id`` resolves to
a schema-valid access-log record, and — for sampled or degraded
requests — to a slow-log span tree and a search audit record carrying
the same ID.
"""

import threading
import time

from repro.core.audit import SearchAuditLog, use_audit
from repro.core.compiled import CompiledSchema, invalidate
from repro.core.engine import Disambiguator
from repro.model.delta import AddClass, SchemaDelta
from repro.obs.reqlog import RequestContext, use_request
from repro.obs.schema import validate_access_records, validate_slo_status
from repro.obs.slowlog import RETAINED_PROMOTED, RETAINED_SAMPLED
from repro.serve import ServeConfig

from tests.serve.conftest import gate_tenant, make_tier, raw_client

HEX = set("0123456789abcdef")


def _is_minted(request_id: str) -> bool:
    return len(request_id) == 32 and set(request_id) <= HEX


class TestRequestIdentity:
    def test_every_response_carries_a_minted_id(self, university_client):
        for call in (
            lambda: university_client.healthz(),
            lambda: university_client.complete("ta ~ name"),
            lambda: university_client.request("GET", "/nope"),
        ):
            response = call()
            assert _is_minted(response.headers["x-request-id"])

    def test_inbound_id_is_honoured_after_sanitation(
        self, university_client
    ):
        response = university_client.request(
            "GET", "/healthz", headers={"X-Request-Id": "caller-7"}
        )
        assert response.headers["x-request-id"] == "caller-7"

    def test_hostile_inbound_id_is_replaced(self, university_client):
        response = university_client.request(
            "GET", "/healthz", headers={"X-Request-Id": "bad id!" * 40}
        )
        assert _is_minted(response.headers["x-request-id"])

    def test_two_requests_get_distinct_ids(self, university_client):
        first = university_client.healthz().headers["x-request-id"]
        second = university_client.healthz().headers["x-request-id"]
        assert first != second


class TestAccessLogCorrelation:
    def test_ok_request_is_recorded_with_tenant(self, university):
        tier = make_tier({"university": university})
        try:
            client = raw_client(tier)
            response = client.complete("ta ~ name")
            request_id = response.headers["x-request-id"]
            record = tier.access_log.find(request_id)
            assert record is not None
            assert record["route"] == "/v1/complete"
            assert record["status"] == 200
            assert record["outcome"] == "ok"
            assert record["tenant"] == "university"
            assert record["cache_hit"] is False
            validate_access_records([record])
        finally:
            tier.stop(drain=False)

    def test_cache_hit_is_visible_in_the_record(self, university):
        tier = make_tier({"university": university})
        try:
            client = raw_client(tier)
            client.complete("ta ~ name")
            warm = client.complete("ta ~ name")
            record = tier.access_log.find(warm.headers["x-request-id"])
            assert record["cache_hit"] is True
        finally:
            tier.stop(drain=False)

    def test_partial_answer_records_its_truncation_reason(self, university):
        tier = make_tier({"university": university})
        try:
            response = raw_client(tier).complete("ta ~ name", max_nodes=1)
            assert response.status == 206
            record = tier.access_log.find(
                response.headers["x-request-id"]
            )
            assert record["outcome"] == "partial"
            assert record["truncation_reason"] == response.json[
                "truncation_reason"
            ]
            validate_access_records([record])
        finally:
            tier.stop(drain=False)

    def test_chaos_every_degraded_answer_correlates(self, university):
        """The acceptance contract: every 4xx/5xx/206/shed response's
        request ID resolves to a schema-valid access-log record."""
        config = ServeConfig(queue_limit=1, workers=1)
        tier = make_tier({"university": university}, config)
        try:
            client = raw_client(tier)
            gated = gate_tenant(tier.tenants.get("university"))
            responses = []

            def slow():
                responses.append(client.complete("ta ~ name"))

            blocked = threading.Thread(target=slow)
            blocked.start()
            assert gated.entered.acquire(timeout=10.0)
            shed = []
            while len(shed) < 1:  # the queue drains fast; insist on a 429
                answer = client.complete("ta ~ name")
                if answer.status == 429:
                    shed.append(answer)
                responses.append(answer)
            gated.release()
            blocked.join(timeout=10.0)

            # A fresh expression — the warm "ta ~ name" cache entry
            # would answer 200 before the node cap could trip.
            responses.append(
                client.complete("professor ~ name", max_nodes=1)
            )
            responses.append(client.complete("student.ghost"))
            responses.append(client.complete("ta ~ name", tenant="ghost"))
            responses.append(client.request("GET", "/no-such-route"))
            responses.append(client.request("PUT", "/healthz"))

            statuses = {response.status for response in responses}
            assert {200, 206, 400, 404, 429}.issubset(statuses)
            for response in responses:
                request_id = response.headers["x-request-id"]
                record = tier.access_log.find(request_id)
                assert record is not None, f"unlogged {response.status}"
                assert record["status"] == response.status
                validate_access_records([record])
            shed_record = tier.access_log.find(
                shed[0].headers["x-request-id"]
            )
            assert shed_record["outcome"] == "shed"
            assert shed_record["shed_reason"] == "queue_full"
        finally:
            tier.stop(drain=False)

    def test_disabled_access_log_records_nothing(self, university):
        config = ServeConfig(access_log=False)
        tier = make_tier({"university": university}, config)
        try:
            response = raw_client(tier).complete("ta ~ name")
            # The request ID survives; only the log is off.
            assert _is_minted(response.headers["x-request-id"])
            assert len(tier.access_log) == 0
            assert tier.access_log.stats()["enabled"] is False
        finally:
            tier.stop(drain=False)


class TestSampledTracing:
    def _tier(self, university, **config_overrides):
        defaults = dict(
            trace_sample_rate=1.0,
            trace_sample_seed=7,
            slow_ms=10_000.0,  # keep the threshold rule out of the way
        )
        defaults.update(config_overrides)
        return make_tier({"university": university}, ServeConfig(**defaults))

    def test_sampled_request_keeps_its_span_tree(self, university):
        tier = self._tier(university)
        try:
            response = raw_client(tier).complete("ta ~ name")
            request_id = response.headers["x-request-id"]
            entries = tier.slowlog.entries()
            assert len(entries) == 1
            entry = entries[0]
            assert entry.retained == RETAINED_SAMPLED
            assert entry.attrs["request_id"] == request_id
            spans = [
                record for record in entry.spans
                if record["type"] == "span"
            ]
            request_span = next(
                span for span in spans if span["name"] == "request"
            )
            assert request_span["parent"] is None
            assert request_span["attrs"]["request_id"] == request_id
            nested = {
                span["name"]
                for span in spans
                if span["parent"] is not None
            }
            assert "complete" in nested
            record = tier.access_log.find(request_id)
            assert record["sampled"] is True
        finally:
            tier.stop(drain=False)

    def test_unsampled_fast_request_is_not_labelled_sampled(
        self, university
    ):
        tier = self._tier(university, trace_sample_rate=0.0)
        try:
            response = raw_client(tier).complete("ta ~ name")
            assert tier.slowlog.observed == 1
            # Top-K ranking may still retain it, but never as a head
            # sample, and the access log agrees.
            for entry in tier.slowlog.entries():
                assert entry.retained != RETAINED_SAMPLED
            record = tier.access_log.find(
                response.headers["x-request-id"]
            )
            assert record["sampled"] is False
        finally:
            tier.stop(drain=False)

    def test_truncated_request_is_tail_promoted(self, university):
        tier = self._tier(university, trace_sample_rate=0.0)
        try:
            response = raw_client(tier).complete("ta ~ name", max_nodes=1)
            assert response.status == 206
            entries = tier.slowlog.entries()
            assert len(entries) == 1
            entry = entries[0]
            assert entry.retained == RETAINED_PROMOTED
            assert entry.exhausted is False
            assert entry.truncation_reason == response.json[
                "truncation_reason"
            ]
            assert entry.attrs["request_id"] == response.headers[
                "x-request-id"
            ]
        finally:
            tier.stop(drain=False)

    def test_audit_search_records_carry_the_request_id(self, university):
        engine = Disambiguator(CompiledSchema(university))
        audit = SearchAuditLog()
        with use_request(RequestContext("req-correl-1")):
            with use_audit(audit):
                engine.complete("ta ~ name")
        searches = audit.of_kind("search")
        assert searches
        assert all(
            record["request_id"] == "req-correl-1" for record in searches
        )
        # Outside a request scope the field is simply absent.
        audit.clear()
        with use_audit(audit):
            engine.complete("professor ~ name")
        assert all(
            "request_id" not in record
            for record in audit.of_kind("search")
        )


class TestSLOAndDebugSurfaces:
    def test_healthz_embeds_a_valid_slo_payload(self, university_client):
        health = university_client.healthz()
        assert health.status == 200
        payload = health.json
        validate_slo_status(payload["slo"])
        # The serving block keeps its shape for existing dashboards.
        assert payload["serving"]["tenants"] == ["university"]

    def test_debug_endpoint_snapshot(self, university):
        tier = make_tier({"university": university})
        try:
            client = raw_client(tier)
            client.complete("ta ~ name")
            debug = client.debug()
            assert debug.status == 200
            payload = debug.json
            assert payload["serving"]["state"] == "serving"
            assert payload["serving"]["drain_cancelled"] is False
            validate_slo_status(payload["slo"])
            assert payload["sampler"]["rate"] == 0.0
            assert payload["access_log"]["enabled"] is True
            assert payload["slowlog"]["observed"] == 1
            residency = payload["tenants"]["residency"]
            assert [entry["tenant"] for entry in residency] == [
                "university"
            ]
            assert residency[0]["estimated_bytes"] >= 0
            assert payload["tenants"]["total_cache_bytes"] >= 0
        finally:
            tier.stop(drain=False)

    def test_debug_rejects_other_methods(self, university_client):
        response = university_client.request("POST", "/v1/debug")
        assert response.status == 405

    def test_shed_traffic_burns_the_availability_budget(self, university):
        tier = make_tier({"university": university})
        try:
            for _ in range(20):
                tier.slo.record(429, 1.0)
            payload = tier.slo.status()
            availability = next(
                o
                for o in payload["objectives"]
                if o["name"] == "availability"
            )
            assert availability["windows"][0]["bad"] == 20
            assert payload["state"] in ("warn", "page")
        finally:
            tier.stop(drain=False)

    def test_metrics_scrape_exports_slo_gauges(self, university_client):
        university_client.healthz()
        text = university_client.metrics_text()
        assert "repro_slo_state" in text
        assert "repro_slo_burn_rate" in text
        assert "repro_serve_trace_sample_rate" in text
        assert "repro_serve_access_log_records" in text


class TestDrainCancellation:
    def test_drain_deadline_cancels_in_flight_work(self, university):
        """A request parked past the drain deadline is cancelled
        cooperatively: the next expansion trips the meter and a 206
        best-so-far answer comes back (not a hang, not a dropped
        connection)."""
        config = ServeConfig(drain_deadline_s=0.3)
        tier = make_tier({"university": university}, config)
        try:
            client = raw_client(tier)
            gated = gate_tenant(tier.tenants.get("university"))
            answers = []

            def blocked():
                answers.append(client.complete("ta ~ name"))

            worker = threading.Thread(target=blocked)
            worker.start()
            assert gated.entered.acquire(timeout=10.0)
            tier.request_drain()
            deadline = time.monotonic() + 10.0
            while (
                not tier._drain_cancel.cancelled
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert tier._drain_cancel.cancelled
            gated.release()
            worker.join(timeout=10.0)
            assert len(answers) == 1
            response = answers[0]
            assert response.status == 206
            assert response.json["truncation_reason"] == "cancelled"
            record = tier.access_log.find(
                response.headers["x-request-id"]
            )
            assert record["outcome"] == "partial"
            assert record["truncation_reason"] == "cancelled"
        finally:
            tier.stop(drain=False)


class TestHealthzDuringEvolve:
    def test_concurrent_snapshots_are_never_torn(self, university):
        """Hot-swapping a tenant's artifact via ``evolve`` while
        ``/healthz`` and ``/v1/schemas`` poll must never produce a
        snapshot mixing one artifact's fingerprint with another's
        lineage depth, and observed lineage depth is monotone."""
        invalidate()
        try:
            tier = make_tier({"university": university})
            try:
                client = raw_client(tier)
                tenant = tier.tenants.get("university")
                by_fingerprint = {
                    tenant.compiled.fingerprint[:12]: len(
                        tenant.compiled.lineage
                    )
                }
                stop = threading.Event()
                torn: list = []
                depths: list[int] = []

                def poll():
                    while not stop.is_set():
                        snapshot = client.schemas().json["tenants"][0]
                        pair = (
                            snapshot["fingerprint"],
                            snapshot["lineage_depth"],
                        )
                        if by_fingerprint.get(pair[0]) != pair[1]:
                            torn.append(pair)
                            return
                        depths.append(pair[1])

                poller = threading.Thread(target=poll)
                poller.start()
                for step in range(12):
                    evolved = tenant.compiled.evolve(
                        SchemaDelta.of(AddClass(f"annex_{step}"))
                    )
                    by_fingerprint[evolved.fingerprint[:12]] = len(
                        evolved.lineage
                    )
                    tenant.compiled = evolved
                    client.healthz()  # keep traffic interleaving
                stop.set()
                poller.join(timeout=10.0)
                assert torn == [], f"torn snapshot(s): {torn}"
                assert depths == sorted(depths)
                final = client.schemas().json["tenants"][0]
                assert final["lineage_depth"] == 12
            finally:
                tier.stop(drain=False)
        finally:
            invalidate()
