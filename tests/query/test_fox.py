"""Tests for the Fox-flavored select language."""

import pytest

from repro.errors import QuerySyntaxError
from repro.model.instances import Database
from repro.query.fox import parse_fox, run_fox


@pytest.fixture()
def db(university):
    db = Database(university)
    alice = db.create("student")
    bob = db.create("ta")
    carol = db.create("professor")
    cs101 = db.create("course")
    art7 = db.create("course")
    arts = db.create("department")

    db.set_attribute(alice, "name", "alice")
    db.set_attribute(alice, "ssn", 100)
    db.set_attribute(bob, "name", "bob")
    db.set_attribute(bob, "ssn", 200)
    db.set_attribute(carol, "name", "carol")
    db.set_attribute(cs101, "name", "cs101")
    db.set_attribute(art7, "name", "art7")
    db.set_attribute(arts, "name", "arts")

    db.link(alice, "take", cs101)
    db.link(bob, "take", art7)
    db.link(carol, "teach", cs101)
    db.link(arts, "professor", carol)
    db.link(alice, "department", arts)
    return db


class TestParsing:
    def test_basic_shape(self):
        query = parse_fox("for s in student select s@>person.name")
        assert query.variable == "s"
        assert query.class_name == "student"
        assert query.condition is None
        assert query.selections == ("s@>person.name",)

    def test_where_and_multiple_selections(self):
        query = parse_fox(
            "for s in student where s.take.name contains cs "
            "select s@>person.name, s.take.name"
        )
        assert query.condition is not None
        assert len(query.selections) == 2

    def test_and_or_structure(self):
        query = parse_fox(
            "for s in student where s@>person.ssn < 150 and "
            "s.take exists or s@>person.name = 'x' select s"
        )
        assert len(query.condition.clauses) == 2
        assert len(query.condition.clauses[0]) == 2

    def test_bad_syntax(self):
        with pytest.raises(QuerySyntaxError):
            parse_fox("select x from y")

    def test_empty_select(self):
        with pytest.raises(QuerySyntaxError):
            parse_fox("for s in student select ")

    def test_malformed_condition(self):
        with pytest.raises(QuerySyntaxError):
            parse_fox("for s in student where s.take ~~ 3 select s")


class TestRunning:
    def test_plain_selection(self, db):
        rows = run_fox(db, "for s in student select s@>person.name")
        names = set().union(*(row.values[0] for row in rows))
        assert names == {"alice", "bob"}  # ta bob is a student too

    def test_where_filters_bindings(self, db):
        rows = run_fox(
            db,
            "for s in student where s.take.name contains cs "
            "select s@>person.name",
        )
        assert [sorted(row.values[0]) for row in rows] == [["alice"]]

    def test_exists_condition(self, db):
        rows = run_fox(
            db,
            "for d in department where d$>professor exists select d.name",
        )
        assert len(rows) == 1
        assert rows[0].values[0] == frozenset({"arts"})

    def test_numeric_comparison(self, db):
        rows = run_fox(
            db,
            "for s in student where s@>person.ssn > 150 "
            "select s@>person.name",
        )
        assert [row.values[0] for row in rows] == [frozenset({"bob"})]

    def test_and_combines(self, db):
        rows = run_fox(
            db,
            "for s in student where s@>person.ssn > 0 and "
            's.take.name = "cs101" select s@>person.name',
        )
        assert len(rows) == 1

    def test_or_combines(self, db):
        rows = run_fox(
            db,
            "for s in student where s@>person.ssn > 150 or "
            's.take.name = "cs101" select s@>person.name',
        )
        assert len(rows) == 2

    def test_bare_variable_selection(self, db):
        rows = run_fox(db, "for c in course select c")
        assert all(
            next(iter(row.values[0])) == row.binding for row in rows
        )

    def test_multiple_selections_align(self, db):
        rows = run_fox(
            db, "for s in student select s@>person.name, s.take.name"
        )
        by_name = {
            next(iter(row.values[0])): row.values[1] for row in rows
        }
        assert by_name["alice"] == frozenset({"cs101"})
        assert by_name["bob"] == frozenset({"art7"})

    def test_incomplete_path_is_disambiguated(self, db):
        rows = run_fox(db, "for t in ta select t ~ name")
        assert len(rows) == 1
        assert rows[0].values[0] == frozenset({"bob"})

    def test_incomplete_path_in_condition(self, db):
        rows = run_fox(
            db,
            'for c in course where c.teacher~name = "carol" select c.name',
        )
        assert len(rows) == 1
        assert rows[0].values[0] == frozenset({"cs101"})

    def test_rows_ordered_by_oid(self, db):
        rows = run_fox(db, "for p in person select p")
        oids = [row.binding.oid for row in rows]
        assert oids == sorted(oids)

    def test_wrong_variable_in_path(self, db):
        with pytest.raises(QuerySyntaxError):
            run_fox(db, "for s in student select x.take")

    def test_unknown_class(self, db):
        from repro.errors import UnknownClassError

        with pytest.raises(UnknownClassError):
            run_fox(db, "for s in ghost select s")

    def test_type_mismatch_comparisons_are_false(self, db):
        rows = run_fox(
            db,
            "for s in student where s@>person.name > 5 select s",
        )
        assert rows == []
