"""Machine checks for the algebraic properties of CON and AGG.

The paper (Sections 3.1 and 3.5) lists seven properties.  For this
implementation:

1. CON associativity — holds; checked exhaustively over 14^3 triples.
2. AGG 'associativity' — holds at the connector level (maximal-element
   filtering under a genuine partial order is order-insensitive).
3. AGG fixpoint on singletons — holds by construction.
4. ``[@>, 0]`` is the identity of CON — checked exhaustively.
5. Theta annihilates AGG — holds for *realizable* path labels: in a
   schema with acyclic Isa, every nonempty cycle's label is provably
   dominated by Theta (see :func:`check_annihilator_on_cycles`).
6. AGG distributivity over CON — FAILS, exactly as the paper says; the
   checker returns the witnesses, which the caution sets must cover.
7. CON monotonic w.r.t. AGG — extending a path never improves its label.

These checkers are used by the test suite and by the ablation harness to
validate alternative partial orders before benchmarking them.
"""

from __future__ import annotations

import itertools

from repro.algebra.con_table import con_c
from repro.algebra.connectors import ALL_CONNECTORS, Connector
from repro.algebra.labels import PathLabel
from repro.algebra.order import PartialOrder
from repro.algebra.semantic_length import semantic_length_of

__all__ = [
    "check_con_associativity",
    "check_con_identity",
    "check_monotonicity",
    "check_distributivity_failures",
    "check_partial_order_axioms",
    "check_paper_incomparability_constraints",
    "check_annihilator_on_cycles",
]


def check_con_associativity() -> list[tuple[Connector, Connector, Connector]]:
    """Property 1: return all triples where CON_c is not associative."""
    violations = []
    for a, b, c in itertools.product(ALL_CONNECTORS, repeat=3):
        left = con_c(con_c(a, b), c)
        right = con_c(a, con_c(b, c))
        if left is not right:
            violations.append((a, b, c))
    return violations


def check_con_identity() -> list[Connector]:
    """Property 4: connectors for which ``@>`` fails to act as identity."""
    identity = Connector.ISA
    return [
        c
        for c in ALL_CONNECTORS
        if con_c(identity, c) is not c or con_c(c, identity) is not c
    ]


def check_monotonicity(order: PartialOrder) -> list[tuple[Connector, Connector]]:
    """Property 7: pairs where extension strictly improves the connector.

    For monotonicity, ``CON_c(c1, c2)`` must never be strictly better
    than ``c1`` — otherwise a longer path could beat its own prefix and
    branch-and-bound pruning would be unsound.
    """
    return [
        (c1, c2)
        for c1, c2 in itertools.product(ALL_CONNECTORS, repeat=2)
        if order.better(con_c(c1, c2), c1)
    ]


def check_distributivity_failures(
    order: PartialOrder,
) -> list[tuple[Connector, Connector, Connector]]:
    """Property 6 witnesses: triples ``(c1, c2, c3)`` with ``c2 < c1``
    whose common extension by ``c3`` becomes incomparable.

    The paper expects this list to be NONempty — distributivity fails —
    and the caution sets must contain every witness pair.
    """
    failures = []
    for c1, c2, c3 in itertools.product(ALL_CONNECTORS, repeat=3):
        if not order.better(c2, c1):
            continue
        extended1 = con_c(c1, c3)
        extended2 = con_c(c2, c3)
        if extended1 is extended2:
            continue
        if order.incomparable(extended1, extended2):
            failures.append((c1, c2, c3))
    return failures


def check_partial_order_axioms(order: PartialOrder) -> list[str]:
    """Strict-partial-order axioms: irreflexive, antisymmetric, transitive."""
    problems: list[str] = []
    for c in ALL_CONNECTORS:
        if order.better(c, c):
            problems.append(f"reflexive: {c.symbol}")
    for c1, c2 in itertools.combinations(ALL_CONNECTORS, 2):
        if order.better(c1, c2) and order.better(c2, c1):
            problems.append(f"symmetric: {c1.symbol} <> {c2.symbol}")
    for a, b, c in itertools.product(ALL_CONNECTORS, repeat=3):
        if order.better(a, b) and order.better(b, c) and not order.better(a, c):
            problems.append(
                f"intransitive: {a.symbol} < {b.symbol} < {c.symbol}"
            )
    return problems


def check_paper_incomparability_constraints(order: PartialOrder) -> list[str]:
    """The incomparability facts stated under Figure 3.

    Every connector is incomparable to itself, to its inverse, and to its
    Possibly version.
    """
    problems: list[str] = []
    for c in ALL_CONNECTORS:
        if order.comparable(c, c):
            problems.append(f"self-comparable: {c.symbol}")
        inverse = c.inverse_base if not c.is_possibly else None
        if inverse is not None and order.comparable(c, inverse):
            problems.append(f"inverse-comparable: {c.symbol} vs {inverse.symbol}")
        if not c.is_taxonomic:
            twin = c.possibly if not c.is_possibly else c.base
            if order.comparable(c, twin):
                problems.append(
                    f"possibly-comparable: {c.symbol} vs {twin.symbol}"
                )
    return problems


def check_annihilator_on_cycles(
    cycle_connectors: list[list[Connector]], order: PartialOrder
) -> list[list[Connector]]:
    """Property 5 on realizable cycles: Theta must dominate each label.

    Given concrete connector sequences of cyclic paths drawn from a valid
    schema (acyclic Isa), verify AGG({label, Theta}) = {Theta}.  Returns
    the offending sequences.
    """
    from repro.algebra.agg import Aggregator  # local import: avoid cycle

    aggregator = Aggregator(order, e=1)
    offenders = []
    for connectors in cycle_connectors:
        label = PathLabel.of_path(connectors)
        kept = aggregator.aggregate([label, PathLabel.identity()])
        if len(kept) != 1 or not kept[0].is_identity:
            offenders.append(connectors)
    return offenders


def semantic_length_agreement(connectors: list[Connector]) -> bool:
    """Incremental vs closed-form semantic length must agree."""
    return (
        PathLabel.of_path(connectors).semantic_length
        == semantic_length_of(connectors)
    )
