r"""Algorithm 2 — depth-first search for path-expression completion
(paper Section 4.5).

This is the paper's Algorithm 1 (a traditional path-computation DFS)
enhanced with:

* **caution sets** (Section 4.1): because AGG does not distribute over
  CON, a dominated label may still need exploration when a dominating
  label at the node sits in its caution set;
* **path reconstruction** (Section 4.2): the pruning tests use
  set-membership (``l_u ∈ AGG*(...)``) rather than set-change, so paths
  tied with the current best are still explored and reported;
* **the Inheritance Semantics Criterion** (Section 4.3): applied inside
  ``update(paths)`` whenever a complete path is recorded;
* **AGG\*** (Section 4.4): the ``E`` parameter relaxes the semantic-length
  cut to the E lowest distinct lengths.

The traversal is iterative rather than recursive (real schemas produce
search stacks deeper than CPython's recursion limit), but mirrors the
paper's ``traverse`` routine line by line; ``stats.recursive_calls``
counts what would be recursive invocations.
"""

from __future__ import annotations

import dataclasses
import time

from repro.algebra.agg import Aggregator
from repro.algebra.caution import CautionSets
from repro.algebra.labels import PathLabel
from repro.algebra.order import DEFAULT_ORDER, PartialOrder
from repro.core.ast import ConcretePath
from repro.core.inheritance_criterion import apply_preemption
from repro.core.stats import TraversalStats
from repro.core.target import Target
from repro.errors import BudgetExceededError
from repro.model.graph import SchemaGraph
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.budget import Budget, BudgetMeter, get_budget

__all__ = ["CompletionSearch", "CompletionResult", "complete_paths"]


class _BudgetTrip(Exception):
    """Internal control flow: unwinds the traversal on a tripped meter.

    Never escapes :meth:`CompletionSearch.run` — it is converted there
    into an anytime partial result (or a
    :class:`~repro.errors.BudgetExceededError` carrying one).
    """

    def __init__(self, reason: str) -> None:
        self.reason = reason


@dataclasses.dataclass(frozen=True)
class CompletionResult:
    """Outcome of one completion search.

    ``paths`` are the optimal consistent completions, best label first
    (ties broken by semantic length, then actual length, then text).
    ``labels`` are the surviving optimal labels (the best[T] set).

    ``exhausted`` is the anytime flag: ``True`` means the search space
    was fully explored at the requested parameters, so ``paths`` is
    *the* optimal set.  ``False`` means a resource budget tripped (or
    the degradation ladder answered at a lower E); every path is still
    a genuinely consistent completion, but the set may be incomplete or
    non-optimal, and ``truncation_reason`` says why
    (:class:`~repro.resilience.budget.TruncationReason`).  Partial
    results are never stored in the completion cache.
    """

    root: str
    target_description: str
    paths: tuple[ConcretePath, ...]
    labels: tuple[PathLabel, ...]
    stats: TraversalStats
    exhausted: bool = True
    truncation_reason: str | None = None

    @property
    def expressions(self) -> list[str]:
        """The completions rendered as path-expression strings."""
        return [str(path) for path in self.paths]

    @property
    def is_empty(self) -> bool:
        return not self.paths

    @property
    def is_unique(self) -> bool:
        """True when the user has nothing left to choose."""
        return len(self.paths) == 1

    @property
    def is_partial(self) -> bool:
        """True for anytime results (budget-truncated or degraded)."""
        return not self.exhausted

    def __str__(self) -> str:
        suffix = (
            f" [partial: {self.truncation_reason}]" if self.is_partial else ""
        )
        lines = [
            f"completions of {self.root} ~ {self.target_description} "
            f"({len(self.paths)}){suffix}:"
        ]
        for path in self.paths:
            lines.append(f"  {path}  {path.label()}")
        return "\n".join(lines)


class CompletionSearch:
    """A reusable completion engine bound to a graph and an algebra.

    Parameters
    ----------
    graph:
        The schema graph to search (domain-knowledge exclusions are
        applied by restricting the graph before constructing the search).
    order:
        The better-than partial order; defaults to the paper's.
    e:
        The AGG* relaxation parameter (E >= 1).
    use_caution_sets:
        Disable only for the ablation that demonstrates lost answers.
    apply_inheritance_criterion:
        Disable only for ablations; on by default as in the paper.
    max_depth:
        Optional bound on path edge count (None = unbounded, the
        paper's setting; acyclicity already bounds depth by the class
        count).
    caution_sets:
        Optional precomputed :class:`~repro.algebra.caution.CautionSets`
        for ``order`` — a :class:`~repro.core.compiled.CompiledSchema`
        passes its compiled artifact here so every search it hands out
        shares one instance.  Ignored when ``use_caution_sets`` is off.
    """

    def __init__(
        self,
        graph: SchemaGraph,
        order: PartialOrder | None = None,
        e: int = 1,
        use_caution_sets: bool = True,
        apply_inheritance_criterion: bool = True,
        max_depth: int | None = None,
        caution_sets: CautionSets | None = None,
    ) -> None:
        self.graph = graph
        self.order = order if order is not None else DEFAULT_ORDER
        self.aggregator = Aggregator(self.order, e=e)
        if not use_caution_sets:
            self.caution = None
        elif caution_sets is not None:
            self.caution = caution_sets
        else:
            self.caution = CautionSets(self.order)
        self.apply_inheritance_criterion = apply_inheritance_criterion
        self.max_depth = max_depth

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        root: str,
        target: Target,
        budget: Budget | None = None,
        meter: BudgetMeter | None = None,
    ) -> CompletionResult:
        """Find the optimal consistent completions from ``root``.

        Mirrors the paper's ``traverse(S, Theta, S)`` invocation.

        Resource governance: ``budget`` (or, when omitted, the ambient
        :func:`repro.resilience.budget.get_budget`) bounds the
        traversal.  On a trip the best-so-far completions are finalized
        into an anytime result flagged ``exhausted=False``; under the
        budget's ``partial_ok`` policy it is returned, otherwise
        :class:`~repro.errors.BudgetExceededError` is raised carrying
        it.  Pass an armed ``meter`` instead to share one budget across
        several searches (the segments of a general expression, the
        engine's degradation ladder); the meter's own budget then
        supplies the policy.
        """
        self.graph.schema.get_class(root)
        if meter is None:
            if budget is None:
                budget = get_budget()
            if budget is not None and not budget.is_unlimited:
                meter = budget.start()
        stats = TraversalStats()
        started = time.perf_counter()
        state = _SearchState(
            best_target=[],
            complete=[],
            stats=stats,
        )
        with get_tracer().span(
            "traverse",
            root=root,
            target=target.describe(),
            e=self.aggregator.e,
        ) as span:
            reason = self._traverse(
                root,
                PathLabel.identity(),
                ConcretePath.start(root),
                state,
                target,
                meter,
            )
            span.set(
                calls=stats.recursive_calls,
                edges=stats.edges_considered,
                complete_paths=stats.complete_paths_found,
                pruned_visited=stats.pruned_visited,
                pruned_target_bound=stats.pruned_target_bound,
                pruned_best_bound=stats.pruned_best_bound,
                caution_rescues=stats.rescued_by_caution,
            )
            if reason is not None:
                span.set(truncated=reason)
        paths = self._finalize(state)
        stats.elapsed_seconds = time.perf_counter() - started
        labels = tuple(
            self.aggregator.aggregate([path.label() for path in paths])
        )
        if reason is not None:
            stats.budget_trips += 1
            get_metrics().counter("budget.trips").inc()
        result = CompletionResult(
            root=root,
            target_description=target.describe(),
            paths=tuple(paths),
            labels=labels,
            stats=stats,
            exhausted=reason is None,
            truncation_reason=reason,
        )
        if reason is not None and meter is not None and not meter.budget.partial_ok:
            raise BudgetExceededError(reason, partial=result)
        return result

    # ------------------------------------------------------------------
    # The traversal (Algorithm 2)
    # ------------------------------------------------------------------

    def _traverse(
        self,
        root: str,
        root_label: PathLabel,
        root_path: ConcretePath,
        state: "_SearchState",
        target: Target,
        meter: BudgetMeter | None = None,
    ) -> str | None:
        """Iterative rendering of the paper's recursive ``traverse``.

        Each stack frame is ``(node, label, path, next edge index)``;
        pushing a frame corresponds to a recursive call (line 13),
        popping a frame past its last edge to returning past line 15
        (which clears the ``visited`` flag).

        Returns ``None`` on exhaustion, or the truncation reason when
        ``meter`` trips — the state's recorded complete paths are then
        the best-so-far anytime answer.
        """
        visited: set[str] = state.visited
        aggregator = self.aggregator
        stats = state.stats

        stack: list[tuple[str, PathLabel, ConcretePath, int]] = []

        def enter(node: str, label: PathLabel, path: ConcretePath) -> None:
            # Lines 1-5: mark visited, record any complete paths via the
            # completing edges out of this node, run update(paths).
            visited.add(node)
            stats.recursive_calls += 1
            if meter is not None:
                reason = meter.tripped(
                    stats.recursive_calls, len(state.complete), len(stack)
                )
                if reason is not None:
                    raise _BudgetTrip(reason)
            for edge in self.graph.edges_from(node):
                if not target.is_completing_edge(edge):
                    continue
                if edge.target in visited:
                    continue  # would close a cycle; ignored per semantics
                candidate = label.extend(edge.connector)
                state.best_target = aggregator.aggregate(
                    [candidate, *state.best_target]
                )
                if aggregator.keeps(candidate, state.best_target):
                    state.complete.append(path.extend(edge))
                    stats.complete_paths_found += 1
            stack.append((node, label, path, 0))

        try:
            self._traverse_loop(enter, stack, root, root_label, root_path, state, target)
        except _BudgetTrip as trip:
            return trip.reason
        return None

    def _traverse_loop(
        self,
        enter,
        stack: list,
        root: str,
        root_label: PathLabel,
        root_path: ConcretePath,
        state: "_SearchState",
        target: Target,
    ) -> None:
        """The stack-driven DFS loop (split out so a budget trip unwinds
        through one exception handler)."""
        visited = state.visited
        aggregator = self.aggregator
        stats = state.stats
        best = state.best

        enter(root, root_label, root_path)
        while stack:
            node, label, path, edge_index = stack.pop()
            edges = self.graph.edges_from(node)
            advanced = False
            while edge_index < len(edges):
                edge = edges[edge_index]
                edge_index += 1
                if target.is_completing_edge(edge):
                    continue  # handled in enter(); never extended
                child = edge.target
                stats.edges_considered += 1
                if child in visited:
                    stats.pruned_visited += 1
                    continue
                if not self.graph.edges_from(child) and not _can_complete_at(
                    self.graph, child, target
                ):
                    continue  # dead end (e.g. primitive class)
                if (
                    self.max_depth is not None
                    and path.length + 1 >= self.max_depth
                ):
                    continue
                child_label = label.extend(edge.connector)
                # Line 9: bound against the best complete labels so far.
                if state.best_target and not aggregator.keeps(
                    child_label, state.best_target
                ):
                    stats.pruned_target_bound += 1
                    continue
                # Lines 10-11: bound against best[u], rescued by caution.
                child_best = best.get(child, [])
                if child_best and not aggregator.keeps(
                    child_label, child_best
                ):
                    if self.caution is not None and self.caution.intersects(
                        child_label, child_best
                    ):
                        stats.rescued_by_caution += 1
                    else:
                        stats.pruned_best_bound += 1
                        continue
                # Line 12: best[u] := AGG*({l_u} ∪ best[u]).
                best[child] = aggregator.aggregate(
                    [child_label, *child_best]
                )
                # Line 13: recurse — push the parent frame back with its
                # position, then enter the child.
                stack.append((node, label, path, edge_index))
                enter(child, child_label, path.extend(edge))
                advanced = True
                break
            if not advanced:
                visited.discard(node)  # line 15

    # ------------------------------------------------------------------
    # Finalization: update(paths) semantics applied to the full set
    # ------------------------------------------------------------------

    def _finalize(self, state: "_SearchState") -> list[ConcretePath]:
        """Filter recorded complete paths to the AGG*-optimal set and
        apply the Inheritance Semantics Criterion."""
        complete = state.complete
        if not complete:
            return []
        tracer = get_tracer()
        with tracer.span("agg_select", candidates=len(complete)) as span:
            optimal_labels = {
                label.key
                for label in self.aggregator.aggregate(
                    [path.label() for path in complete]
                )
            }
            survivors = [
                path for path in complete if path.label().key in optimal_labels
            ]
            # De-duplicate identical edge sequences (a path can be recorded
            # twice when caution sets force re-exploration).
            unique: dict[tuple, ConcretePath] = {}
            for path in survivors:
                unique.setdefault((path.root, path.edges), path)
            survivors = list(unique.values())
            span.set(optimal_labels=len(optimal_labels), survivors=len(survivors))
        if self.apply_inheritance_criterion:
            with tracer.span("preemption", candidates=len(survivors)) as span:
                survivors, removed = apply_preemption(survivors)
                state.stats.preempted_paths = removed
                span.set(removed=removed)
        with tracer.span("rank", paths=len(survivors)):
            survivors.sort(
                key=lambda p: (
                    p.label().connector.sort_rank,
                    p.semantic_length,
                    p.length,
                    str(p),
                )
            )
        return survivors

    def __repr__(self) -> str:
        return (
            f"CompletionSearch(graph={self.graph!r}, "
            f"order={self.order.name!r}, e={self.aggregator.e}, "
            f"caution={'on' if self.caution else 'off'})"
        )


def _can_complete_at(
    graph: SchemaGraph, node: str, target: Target
) -> bool:
    """True if some completing edge departs from ``node``."""
    return any(
        target.is_completing_edge(edge) for edge in graph.edges_from(node)
    )


@dataclasses.dataclass
class _SearchState:
    """Mutable globals of the traversal (the paper's best[], paths)."""

    best_target: list[PathLabel]
    complete: list[ConcretePath]
    stats: TraversalStats
    best: dict[str, list[PathLabel]] = dataclasses.field(default_factory=dict)
    visited: set[str] = dataclasses.field(default_factory=set)


def complete_paths(
    graph: SchemaGraph,
    root: str,
    target: Target,
    order: PartialOrder | None = None,
    e: int = 1,
    use_caution_sets: bool = True,
    apply_inheritance_criterion: bool = True,
    max_depth: int | None = None,
    budget: Budget | None = None,
) -> CompletionResult:
    """One-shot convenience wrapper around :class:`CompletionSearch`."""
    search = CompletionSearch(
        graph,
        order=order,
        e=e,
        use_caution_sets=use_caution_sets,
        apply_inheritance_criterion=apply_inheritance_criterion,
        max_depth=max_depth,
    )
    return search.run(root, target, budget=budget)
