"""Tests for the tail-based slow-query log (repro.obs.slowlog)."""

import io
import json
import time

import pytest

from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.errors import BudgetExceededError
from repro.obs.schema import SchemaValidationError, validate_slowlog_entries
from repro.obs.slowlog import (
    SLOWLOG_VERSION,
    NullSlowQueryLog,
    SlowQueryLog,
    get_slowlog,
    use_slowlog,
)
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.resilience.budget import Budget
from repro.schemas.cupid import build_cupid_schema
from repro.schemas.university import build_university_schema


def _busy(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class TestRetentionPolicy:
    def test_mixed_workload_retains_only_slow_or_topk(self):
        # Threshold 5ms, top-1: of a mixed fast/slow synthetic workload
        # only the over-threshold queries (plus the single slowest) may
        # survive; the fast bulk is dropped.
        log = SlowQueryLog(threshold_ms=5.0, top_k=1)
        with use_slowlog(log):
            for index in range(20):
                with log.observe("complete", f"fast-{index}"):
                    pass
            for index in range(3):
                with log.observe("complete", f"slow-{index}"):
                    _busy(0.008)
        assert log.observed == 23
        entries = log.entries()
        assert 0 < len(entries) <= 4
        assert all(entry.query.startswith("slow-") for entry in entries)
        assert all(entry.elapsed_ms >= 5.0 for entry in entries)
        threshold_kept = [
            entry for entry in entries if entry.retained == "threshold"
        ]
        assert len(threshold_kept) == 3

    def test_topk_keeps_k_slowest_without_threshold(self):
        log = SlowQueryLog(threshold_ms=None, top_k=2)
        durations = [0.001, 0.012, 0.002, 0.009, 0.0005]
        with use_slowlog(log):
            for index, duration in enumerate(durations):
                with log.observe("complete", f"q{index}"):
                    _busy(duration)
        queries = {entry.query for entry in log.entries()}
        assert queries == {"q1", "q3"}  # the two slowest

    def test_capacity_bounds_threshold_entries(self):
        log = SlowQueryLog(threshold_ms=0.0, top_k=0, capacity=4)
        with use_slowlog(log):
            for index in range(10):
                with log.observe("complete", f"q{index}"):
                    pass
        entries = log.entries()
        assert len(entries) == 4
        assert [entry.query for entry in entries] == ["q6", "q7", "q8", "q9"]

    def test_nested_observations_are_owned_by_the_outermost(self):
        log = SlowQueryLog(threshold_ms=0.0, top_k=10)
        with use_slowlog(log):
            with log.observe("ask", "outer"):
                with log.observe("complete", "inner"):
                    pass
        entries = log.entries()
        assert [entry.query for entry in entries] == ["outer"]
        assert log.observed == 1


class TestEngineIntegration:
    def test_engine_completion_is_observed_with_spans_and_stats(self):
        log = SlowQueryLog(threshold_ms=0.0)
        # A fresh (non-memoized) artifact so the completion cache is
        # cold and the span tree shows a full traverse, regardless of
        # what earlier tests completed.  Pruning is pinned so the
        # stamped-mode assertion below holds under the REPRO_PRUNING
        # matrix legs too.
        engine = Disambiguator(
            CompiledSchema(build_university_schema()), pruning="closure"
        )
        with use_slowlog(log):
            engine.complete("ta ~ name")
        (entry,) = log.entries()
        assert entry.kind == "complete"
        assert entry.query == "ta ~ name"
        assert entry.e == 1
        assert entry.exhausted is True
        assert entry.truncation_reason is None
        assert entry.stats is not None and entry.stats["recursive_calls"] > 0
        assert entry.attrs["paths"] == 2
        # The engine stamps its own search mode on the entry (the v2
        # bugfix: a slow query is only triageable knowing which loop
        # and delta strategy were live).
        assert entry.pruning == engine.pruning == "closure"
        assert entry.delta in ("incremental", "rebuild")
        # The private tracer recorded the whole completion span tree.
        names = {record["name"] for record in entry.spans}
        assert "complete" in names and "traverse" in names

    def test_reference_mode_engine_is_recorded_as_such(self):
        log = SlowQueryLog(threshold_ms=0.0)
        engine = Disambiguator(
            CompiledSchema(build_university_schema()), pruning="none"
        )
        with use_slowlog(log):
            engine.complete("ta ~ name")
        (entry,) = log.entries()
        assert entry.pruning == "none"

    def test_ambient_tracer_is_reused_not_replaced(self):
        log = SlowQueryLog(threshold_ms=0.0)
        tracer = RecordingTracer()
        engine = Disambiguator(build_university_schema())
        with use_tracer(tracer), use_slowlog(log):
            engine.complete("ta ~ name")
        (entry,) = log.entries()
        assert entry.spans  # sliced from the ambient tracer's roots
        assert tracer.roots  # and the ambient tracer kept them too

    def test_budget_tripped_query_records_truncation(self):
        # Acceptance: a budget-tripped query's entry carries
        # exhausted=false and the truncation reason.
        log = SlowQueryLog(threshold_ms=0.0)
        engine = Disambiguator(CompiledSchema(build_cupid_schema()), e=1)
        with use_slowlog(log):
            with pytest.raises(BudgetExceededError):
                engine.complete(
                    "experiment ~ conductance", budget=Budget(max_nodes=5)
                )
        (entry,) = log.entries()
        assert entry.exhausted is False
        assert entry.truncation_reason == "nodes"
        assert entry.error is not None and "BudgetExceeded" in entry.error

    def test_partial_ok_result_records_truncation_without_error(self):
        log = SlowQueryLog(threshold_ms=0.0)
        engine = Disambiguator(CompiledSchema(build_cupid_schema()), e=1)
        with use_slowlog(log):
            result = engine.complete(
                "experiment ~ conductance",
                budget=Budget(max_nodes=5, partial_ok=True),
            )
        assert result.is_partial
        (entry,) = log.entries()
        assert entry.exhausted is False
        assert entry.truncation_reason == "nodes"
        assert entry.error is None


class TestExport:
    def test_jsonl_validates_against_checked_in_schema(self):
        log = SlowQueryLog(threshold_ms=0.0)
        # Pinned pruning: the exported records' stamped mode is
        # asserted literally below, independent of REPRO_PRUNING.
        engine = Disambiguator(build_university_schema(), pruning="closure")
        with use_slowlog(log):
            engine.complete("ta ~ name")
            engine.complete("student ~ name")
        buffer = io.StringIO()
        count = log.write_jsonl(buffer)
        records = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        assert len(records) == count == 2
        validate_slowlog_entries(records)
        assert all(
            record["version"] == SLOWLOG_VERSION for record in records
        )
        assert all(record["pruning"] == "closure" for record in records)

    def test_version_1_records_are_rejected(self):
        """The schema bump is a gate, not a label: records from before
        the pruning/delta fields existed must fail validation."""
        log = SlowQueryLog(threshold_ms=0.0)
        engine = Disambiguator(build_university_schema())
        with use_slowlog(log):
            engine.complete("ta ~ name")
        (record,) = log.to_records()
        v1 = {
            key: value
            for key, value in record.items()
            if key not in ("version", "pruning", "delta")
        }
        with pytest.raises(SchemaValidationError):
            validate_slowlog_entries([v1])
        stale_version = dict(record, version=1)
        with pytest.raises(SchemaValidationError):
            validate_slowlog_entries([stale_version])

    def test_render_reports_retention_and_flags(self):
        log = SlowQueryLog(threshold_ms=0.0)
        engine = Disambiguator(CompiledSchema(build_cupid_schema()), e=1)
        with use_slowlog(log):
            with pytest.raises(BudgetExceededError):
                engine.complete(
                    "experiment ~ conductance", budget=Budget(max_nodes=5)
                )
        rendered = log.render()
        assert "1 retained of 1 observed" in rendered
        assert "partial:nodes" in rendered

    def test_empty_log_renders_placeholder(self):
        assert SlowQueryLog().render() == "slow-query log is empty"


class TestAmbientDefault:
    def test_default_is_noop(self):
        log = get_slowlog()
        assert isinstance(log, NullSlowQueryLog)
        assert not log.enabled
        with log.observe("complete", "q") as observation:
            observation.set(x=1)
            observation.record_result(None)
        assert log.entries() == [] and len(log) == 0
        assert log.render() == "slow-query log is off"

    def test_use_slowlog_scopes_installation(self):
        log = SlowQueryLog()
        with use_slowlog(log):
            assert get_slowlog() is log
        assert isinstance(get_slowlog(), NullSlowQueryLog)

    def test_noop_slowlog_overhead_under_5_percent(self):
        """The uninstalled slow log adds <5% to a CUPID E=1 completion.

        Same bounding strategy as the no-op tracer test: the engine
        consults the ambient slow log once per ``complete`` call, so we
        bound the per-consultation cost against a measured completion.
        """
        cupid = build_cupid_schema()
        compiled = CompiledSchema(cupid)
        engine = Disambiguator(compiled, e=1)
        runs = []
        for _ in range(3):
            fresh = Disambiguator(CompiledSchema(cupid), e=1)
            start = time.perf_counter()
            fresh.complete("experiment ~ conductance")
            runs.append(time.perf_counter() - start)
        completion_seconds = sorted(runs)[1]

        iterations = 20_000
        start = time.perf_counter()
        for _ in range(iterations):
            log = get_slowlog()
            if log.enabled:  # pragma: no cover - ambient default is off
                raise AssertionError
        per_check = (time.perf_counter() - start) / iterations
        checks_per_completion = 4  # complete + ask + fox + slack
        overhead = checks_per_completion * per_check
        assert overhead < 0.05 * completion_seconds, (
            f"{overhead * 1e6:.2f}us of slow-log checks vs "
            f"{completion_seconds * 1e3:.2f}ms completion"
        )
