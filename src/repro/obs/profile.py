"""cProfile hooks attached to the span taxonomy.

A trace tells you *which phase* of a query was slow; a profile tells
you *which functions inside that phase* burned the time.  This module
bridges the two: :class:`SpanProfiler` implements the tracer duck-type
(``span(name, **attrs)``, ``enabled``), wraps any inner tracer, and
enables a per-span-name :class:`cProfile.Profile` whenever a span whose
name is in its taxonomy opens::

    profiler = SpanProfiler(spans={"traverse", "rank"})
    with use_tracer(profiler):
        engine.complete("experiment ~ conductance")
    print(profiler.collapsed())          # flamegraph-ready text
    profiler.write_collapsed("prof.collapsed")

Because CPython allows only one active profiler, nested matches do not
re-attach: the *outermost* matching span owns the profile (so the
default taxonomy — ``complete``, ``compile``, ``evaluate``, ``fox``,
``query``, ``ask``, ``workload``, ``traverse`` — attributes a whole
completion to ``complete`` rather than fragmenting it).  Repeated spans
of one name accumulate into one profile.

The collapsed-stack export (one ``frame;frame;frame count`` line per
call path, counts in microseconds of attributed time) is the input
format of Brendan Gregg's ``flamegraph.pl`` and every compatible
viewer (speedscope, inferno, ...).  cProfile records a caller/callee
graph rather than full stacks, so paths are reconstructed by walking
the call graph from its roots and attributing each function's own time
to the path it was reached by, splitting proportionally to the
per-edge cumulative times when a function has several callers — the
standard flameprof-style approximation, exact for tree-shaped call
graphs.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path
from typing import IO

from repro.obs.tracer import NullTracer, RecordingTracer, _NULL_TRACER

__all__ = ["DEFAULT_PROFILED_SPANS", "SpanProfiler"]

#: Span names profiled when no explicit taxonomy is given: the
#: top-level units of user-visible work plus the traversal inner loop.
DEFAULT_PROFILED_SPANS = frozenset(
    {
        "complete",
        "compile",
        "traverse",
        "evaluate",
        "fox",
        "query",
        "ask",
        "workload",
    }
)

#: Path reconstruction depth bound (cycles are skipped regardless).
_MAX_DEPTH = 24


class _ProfiledSpan:
    """Wraps an inner span; enables the profiler's cProfile on enter."""

    __slots__ = ("_inner", "_profiler", "_name", "_attached")

    def __init__(self, profiler: "SpanProfiler", name: str, inner) -> None:
        self._profiler = profiler
        self._name = name
        self._inner = inner
        self._attached = False

    def set(self, **attrs: object):
        self._inner.set(**attrs)
        return self

    def event(self, name: str, **attrs: object) -> None:
        self._inner.event(name, **attrs)

    def __enter__(self) -> "_ProfiledSpan":
        self._inner.__enter__()
        self._attached = self._profiler._attach(self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._attached:
            self._profiler._detach(self._name)
        self._inner.__exit__(*exc_info)


class SpanProfiler:
    """A tracer wrapper that attaches cProfile to named spans.

    Parameters
    ----------
    inner:
        The tracer whose spans still record normally (a
        :class:`~repro.obs.tracer.RecordingTracer` to keep the trace
        too, or ``None`` for profile-only operation).
    spans:
        The span-name taxonomy to profile; defaults to
        :data:`DEFAULT_PROFILED_SPANS`.
    """

    enabled = True

    def __init__(
        self,
        inner: RecordingTracer | NullTracer | None = None,
        spans: frozenset[str] | set[str] | None = None,
    ) -> None:
        self.inner = inner if inner is not None else _NULL_TRACER
        self.spans = frozenset(
            spans if spans is not None else DEFAULT_PROFILED_SPANS
        )
        self._profiles: dict[str, cProfile.Profile] = {}
        #: Name of the span currently holding the (single) profiler.
        self._active: str | None = None

    # -- tracer duck-type ---------------------------------------------

    def span(self, name: str, **attrs: object):
        if name not in self.spans:
            return self.inner.span(name, **attrs)
        return _ProfiledSpan(self, name, self.inner.span(name, **attrs))

    #: RecordingTracer API passthroughs some callers poke at.
    @property
    def roots(self):
        return getattr(self.inner, "roots", [])

    # -- profile plumbing ---------------------------------------------

    def _attach(self, name: str) -> bool:
        """Enable the profile for ``name`` unless one is already live
        (CPython allows a single active profiler)."""
        if self._active is not None:
            return False
        profile = self._profiles.get(name)
        if profile is None:
            profile = cProfile.Profile()
            self._profiles[name] = profile
        self._active = name
        profile.enable()
        return True

    def _detach(self, name: str) -> None:
        self._profiles[name].disable()
        self._active = None

    # -- exports -------------------------------------------------------

    @property
    def profiled_names(self) -> list[str]:
        """Span names that actually accumulated profile data."""
        return sorted(self._profiles)

    def _stats(self, name: str) -> dict:
        profile = self._profiles[name]
        profile.create_stats()
        return profile.stats  # type: ignore[attr-defined]

    def collapsed(self, name: str | None = None) -> str:
        """Collapsed-stack text, one line per path: ``frames count``.

        ``name`` restricts the export to one span name; by default
        every profiled name is exported, each path prefixed with a
        ``span:<name>`` root frame so one flamegraph shows the whole
        taxonomy side by side.  Counts are microseconds.
        """
        names = [name] if name is not None else self.profiled_names
        lines: list[str] = []
        for span_name in names:
            stats = self._stats(span_name)
            lines.extend(_collapse(stats, root_frame=f"span:{span_name}"))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, target: str | Path | IO[str]) -> int:
        """Write the collapsed stacks; returns the line count."""
        text = self.collapsed()
        if hasattr(target, "write"):
            target.write(text)  # type: ignore[union-attr]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        return len(text.splitlines())

    def report(self, limit: int = 20) -> str:
        """pstats top-``limit`` cumulative-time table per span name."""
        sections: list[str] = []
        for span_name in self.profiled_names:
            buffer = io.StringIO()
            stats = pstats.Stats(self._profiles[span_name], stream=buffer)
            stats.sort_stats("cumulative").print_stats(limit)
            sections.append(f"== span {span_name!r} ==\n{buffer.getvalue()}")
        return "\n".join(sections) if sections else "no profiled spans recorded"

    def __repr__(self) -> str:
        return (
            f"SpanProfiler(spans={sorted(self.spans)}, "
            f"profiled={self.profiled_names})"
        )


def _frame(func: tuple) -> str:
    """One collapsed-stack frame for a cProfile function key."""
    filename, line, name = func
    if filename == "~":  # C builtins
        return name.strip("<>")
    return f"{Path(filename).name}:{name}"


def _collapse(stats: dict, root_frame: str) -> list[str]:
    """flameprof-style path reconstruction from a cProfile stats dict.

    ``stats`` maps ``func -> (cc, nc, tt, ct, callers)`` where
    ``callers`` maps each caller to that edge's ``(cc, nc, tt, ct)``.
    Own time (``tt``) is attributed along reconstructed paths; when a
    function has several callers its subtree is split proportionally to
    the per-edge cumulative times.
    """
    callees: dict[tuple, list[tuple]] = {}
    total_edge_ct: dict[tuple, float] = {}
    for func, (_cc, _nc, _tt, _ct, callers) in stats.items():
        for caller, (_, _, _, edge_ct) in callers.items():
            callees.setdefault(caller, []).append(func)
            total_edge_ct[func] = total_edge_ct.get(func, 0.0) + edge_ct
    roots = [func for func, (_, _, _, _, callers) in stats.items() if not callers]

    lines: list[str] = []

    def walk(func: tuple, path: tuple[str, ...], weight: float, depth: int) -> None:
        if depth > _MAX_DEPTH:
            return
        frame = _frame(func)
        if frame in path:  # cycle guard
            return
        here = path + (frame,)
        _cc, _nc, tt, _ct, _callers = stats[func]
        micros = round(tt * weight * 1_000_000)
        if micros >= 1:
            lines.append(f"{';'.join(here)} {micros}")
        for child in sorted(set(callees.get(func, ())), key=_frame):
            child_callers = stats[child][4]
            edge_ct = child_callers.get(func, (0, 0, 0.0, 0.0))[3]
            total = total_edge_ct.get(child, 0.0)
            fraction = edge_ct / total if total > 0 else 0.0
            if fraction > 0:
                walk(child, here, weight * fraction, depth + 1)

    for root in sorted(roots, key=_frame):
        walk(root, (root_frame,), 1.0, 1)
    return lines
