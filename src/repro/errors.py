"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  The sub-hierarchy mirrors
the package layout: schema construction problems, path-expression syntax
problems, algebra misuse, and query-evaluation problems each have their
own branch.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "DeltaError",
    "DuplicateClassError",
    "UnknownClassError",
    "DuplicateRelationshipError",
    "UnknownRelationshipError",
    "InvalidRelationshipError",
    "InheritanceCycleError",
    "PrimitiveClassError",
    "SerializationError",
    "DslSyntaxError",
    "PathExpressionError",
    "PathSyntaxError",
    "AmbiguityError",
    "NoCompletionError",
    "AlgebraError",
    "UnknownConnectorError",
    "InstanceError",
    "UnknownObjectError",
    "EvaluationError",
    "QuerySyntaxError",
    "ResilienceError",
    "BudgetExceededError",
    "InjectedFaultError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Schema / data-model errors
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """Base class for schema construction and validation errors."""


class DeltaError(SchemaError):
    """A schema delta command cannot be applied to the schema at hand.

    Raised when a command's recorded expectation diverges from the
    schema's actual content — e.g. removing a relationship whose stored
    target or kind no longer matches the command's snapshot.  The
    mismatch check is what keeps deltas invertible: a command that
    applied cleanly can always be undone by its inverse.
    """


class DuplicateClassError(SchemaError):
    """A class with the same name already exists in the schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"class {name!r} already exists in the schema")
        self.name = name


class UnknownClassError(SchemaError):
    """A class name was referenced that the schema does not define."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown class {name!r}")
        self.name = name


class DuplicateRelationshipError(SchemaError):
    """Two relationships with the same (source, name) pair were declared."""

    def __init__(self, source: str, name: str) -> None:
        super().__init__(
            f"class {source!r} already has a relationship named {name!r}"
        )
        self.source = source
        self.name = name


class UnknownRelationshipError(SchemaError):
    """A relationship was referenced that the schema does not define."""

    def __init__(self, source: str, name: str) -> None:
        super().__init__(f"class {source!r} has no relationship named {name!r}")
        self.source = source
        self.name = name


class InvalidRelationshipError(SchemaError):
    """A relationship declaration violates the data-model rules."""


class InheritanceCycleError(SchemaError):
    """The Isa relationships of a schema form a cycle."""

    def __init__(self, cycle: list[str]) -> None:
        super().__init__("Isa cycle detected: " + " @> ".join(cycle))
        self.cycle = cycle


class PrimitiveClassError(SchemaError):
    """An operation is not allowed on a primitive class."""

    def __init__(self, name: str, operation: str) -> None:
        super().__init__(f"cannot {operation} primitive class {name!r}")
        self.name = name
        self.operation = operation


class SerializationError(SchemaError):
    """A schema document could not be serialized or deserialized."""


class DslSyntaxError(SchemaError):
    """The schema DSL text contains a syntax error."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


# ---------------------------------------------------------------------------
# Path-expression errors
# ---------------------------------------------------------------------------


class PathExpressionError(ReproError):
    """Base class for path-expression construction/parsing errors."""


class PathSyntaxError(PathExpressionError):
    """A path expression string could not be parsed."""

    def __init__(self, message: str, position: int, text: str) -> None:
        super().__init__(f"{message} at position {position} in {text!r}")
        self.position = position
        self.text = text


class AmbiguityError(PathExpressionError):
    """An operation required a unique completion but several exist."""

    def __init__(self, message: str, candidates: list[object]) -> None:
        super().__init__(message)
        self.candidates = candidates


class NoCompletionError(PathExpressionError):
    """No complete path expression is consistent with the incomplete one."""


# ---------------------------------------------------------------------------
# Algebra errors
# ---------------------------------------------------------------------------


class AlgebraError(ReproError):
    """Base class for path-algebra misuse."""


class UnknownConnectorError(AlgebraError):
    """A connector symbol is not part of the alphabet Sigma."""

    def __init__(self, symbol: str) -> None:
        super().__init__(f"unknown connector symbol {symbol!r}")
        self.symbol = symbol


# ---------------------------------------------------------------------------
# Instance / query errors
# ---------------------------------------------------------------------------


class InstanceError(ReproError):
    """Base class for instance-store problems."""


class UnknownObjectError(InstanceError):
    """An object identifier is not present in the database."""

    def __init__(self, oid: object) -> None:
        super().__init__(f"unknown object {oid!r}")
        self.oid = oid


class EvaluationError(ReproError):
    """A path expression could not be evaluated against a database."""


class QuerySyntaxError(ReproError):
    """A query string in the tiny query language could not be parsed."""

    def __init__(self, message: str, text: str) -> None:
        super().__init__(f"{message} in query {text!r}")
        self.text = text


# ---------------------------------------------------------------------------
# Resilience errors (budgets, fault injection)
# ---------------------------------------------------------------------------


class ResilienceError(ReproError):
    """Base class for resource-governance and fault-injection errors."""


class BudgetExceededError(ResilienceError):
    """A completion search tripped its resource budget.

    ``partial`` carries the best-so-far result — a
    :class:`~repro.core.completion.CompletionResult` (or
    :class:`~repro.core.multi.GeneralCompletionResult`) flagged
    ``exhausted=False``.  Every path in it is a genuinely consistent
    completion; the set is merely possibly non-optimal and incomplete.
    ``reason`` is one of the
    :class:`~repro.resilience.budget.TruncationReason` strings.
    """

    def __init__(self, reason: str, partial: object = None) -> None:
        found = getattr(partial, "paths", None)
        detail = (
            f"; best-so-far carries {len(found)} path(s)"
            if found is not None
            else ""
        )
        super().__init__(f"completion budget exceeded ({reason}){detail}")
        self.reason = reason
        self.partial = partial

    def __reduce__(self):
        # Exact pickle round-trip (the default would re-run __init__
        # with the already-formatted message as ``reason``).  Budget
        # trips cross the process boundary in the process-pool batch
        # backend, where the parent re-raises the worker's exception.
        return (type(self), (self.reason, self.partial))


class InjectedFaultError(ResilienceError):
    """A deterministic fault injected by the chaos-testing harness.

    Never raised in production code paths — only by
    :mod:`repro.resilience.faults` wrappers — but derives from
    :class:`ReproError` so the same API-boundary handlers that keep a
    session or an experiment runner alive under real failures are
    exercised by the chaos suite.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        super().__init__(
            f"injected fault at {site}" + (f": {detail}" if detail else "")
        )
        self.site = site
