"""Tests for the text rendering helpers."""

import pytest

from repro.experiments.reporting import bar_chart, percent, table


class TestTable:
    def test_alignment(self):
        rendered = table(["a", "bb"], [["xxx", 1], ["y", 22]])
        lines = rendered.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_empty_rows(self):
        rendered = table(["col"], [])
        assert "col" in rendered


class TestBarChart:
    def test_bars_scale_to_peak(self):
        rendered = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = rendered.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_values(self):
        rendered = bar_chart(["a"], [0.0])
        assert "#" not in rendered

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        assert "3s" in bar_chart(["a"], [3.0], unit="s")


class TestPercent:
    def test_format(self):
        assert percent(0.9) == " 90.0%"
        assert percent(1.0) == "100.0%"
