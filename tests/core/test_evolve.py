"""Tests for CompiledSchema.evolve and the surgical completion cache.

The byte-identity contract over random edit scripts lives in
``test_delta_fuzz.py``; these are the targeted semantics: mode
resolution, cache adoption along the eviction frontier, lineage,
registry registration, and the evolve counters/spans.
"""

import pytest

from repro.core.closure import SchemaClosure
from repro.core.compiled import (
    DELTA_MODES,
    CompiledSchema,
    compile_schema,
    invalidate,
    resolve_delta_mode,
)
from repro.core.engine import Disambiguator
from repro.model.delta import (
    AddClass,
    AddRelationship,
    RemoveClass,
    SchemaDelta,
    relationship_pair,
)
from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship
from repro.model.schema import Schema
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracer import RecordingTracer, use_tracer


@pytest.fixture(autouse=True)
def clean_registry():
    invalidate()
    yield
    invalidate()


def build_schema():
    """Two disconnected islands: person<->company and city (isolated)."""
    s = Schema("evolve-test")
    s.add_classes(["person", "company", "city"])
    s.add_relationship(
        "person", "company", RelationshipKind.IS_ASSOCIATED_WITH, name="employer"
    )
    s.add_attribute("person", "name")
    s.add_attribute("city", "population", "I")
    return s


def module_delta():
    """A module-local delta: new class wired only to itself/new edges."""
    return SchemaDelta.of(
        AddClass("lab"),
        AddClass("lab_bench"),
        relationship_pair(
            "lab", "lab_bench", RelationshipKind.HAS_PART, name="benches"
        ),
    )


class TestResolveDeltaMode:
    def test_default_and_explicit(self, monkeypatch):
        monkeypatch.delenv("REPRO_DELTA", raising=False)
        assert resolve_delta_mode(None) == "incremental"
        for mode in DELTA_MODES:
            assert resolve_delta_mode(mode) == mode

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA", "rebuild")
        assert resolve_delta_mode(None) == "rebuild"
        assert resolve_delta_mode("incremental") == "incremental"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_delta_mode("sideways")


class TestEvolveSemantics:
    @pytest.mark.parametrize("mode", DELTA_MODES)
    def test_original_artifact_untouched(self, mode):
        compiled = compile_schema(build_schema())
        before = compiled.fingerprint
        evolved = compiled.evolve(SchemaDelta.of(AddClass("annex")), mode=mode)
        assert compiled.fingerprint == before
        assert not compiled.is_stale()
        assert evolved is not compiled
        assert evolved.schema.has_class("annex")
        assert not compiled.schema.has_class("annex")

    @pytest.mark.parametrize("mode", DELTA_MODES)
    def test_lineage_chains(self, mode):
        compiled = compile_schema(build_schema())
        first = compiled.evolve(SchemaDelta.of(AddClass("a")), mode=mode)
        second = first.evolve(SchemaDelta.of(AddClass("b")), mode=mode)
        assert first.lineage == (compiled.fingerprint,)
        assert second.lineage == (compiled.fingerprint, first.fingerprint)

    def test_evolved_registers_in_registry(self):
        compiled = compile_schema(build_schema())
        evolved = compiled.evolve(SchemaDelta.of(AddClass("annex")))
        assert compile_schema(evolved.schema.copy()) is evolved

    def test_invalid_delta_leaves_no_trace(self):
        compiled = compile_schema(build_schema())
        # Removing a referenced class fails during apply; the artifact
        # and registry are unchanged.
        with pytest.raises(Exception):
            compiled.evolve(SchemaDelta.of(RemoveClass("company")))
        assert not compiled.is_stale()

    def test_incremental_reuses_unchanged_pieces(self):
        compiled = compile_schema(build_schema())
        evolved = compiled.evolve(module_delta(), mode="incremental")
        assert evolved.order is compiled.order
        assert evolved.caution_sets is compiled.caution_sets
        assert evolved.order_key == compiled.order_key
        assert evolved.knowledge_key == compiled.knowledge_key

    def test_isa_cycle_rejected_before_compiling(self):
        schema = Schema("cycle")
        schema.add_classes(["a", "b"])
        schema.add_relationship("a", "b", RelationshipKind.ISA, add_inverse=False)
        compiled = compile_schema(schema)
        from repro.model.delta import AddInheritanceEdge

        with pytest.raises(Exception):
            compiled.evolve(SchemaDelta.of(AddInheritanceEdge("b", "a")))


class TestSurgicalCacheAdoption:
    def warm(self, compiled):
        """Prime the cache with one completion per island root."""
        engine = Disambiguator(compiled)
        engine.complete("person ~ name")
        engine.complete("city ~ population")
        return engine

    def test_module_local_delta_carries_everything(self):
        compiled = compile_schema(build_schema())
        self.warm(compiled)
        baseline_hits = compiled.cache.hits
        evolved = compiled.evolve(module_delta(), mode="incremental")
        engine = Disambiguator(evolved)
        warm_person = engine.complete("person ~ name")
        warm_city = engine.complete("city ~ population")
        assert evolved.cache.hits == 2  # both served from the carried cache
        cold = compile_schema(
            evolved.schema.copy(), cache_size=evolved.cache.maxsize
        )
        cold_engine = Disambiguator(cold)
        assert [str(p) for p in warm_person.paths] == [
            str(p) for p in cold_engine.complete("person ~ name").paths
        ]
        assert [str(p) for p in warm_city.paths] == [
            str(p) for p in cold_engine.complete("city ~ population").paths
        ]
        assert compiled.cache.hits == baseline_hits  # old artifact untouched

    def test_frontier_evicts_only_supported_roots(self):
        compiled = compile_schema(build_schema())
        self.warm(compiled)
        # Wire a new class into the person<->company island: the
        # frontier is {lab, person}, which meets person's support but
        # not city's.
        delta = SchemaDelta.of(
            AddClass("lab"),
            relationship_pair(
                "lab", "person", RelationshipKind.IS_ASSOCIATED_WITH,
                name="members",
            ),
        )
        evolved = compiled.evolve(delta, mode="incremental")
        engine = Disambiguator(evolved)
        engine.complete("city ~ population")
        assert evolved.cache.hits == 1  # city carried
        engine.complete("person ~ name")
        assert evolved.cache.misses >= 1  # person was evicted, re-searched

    def test_eviction_counter_increments(self):
        compiled = compile_schema(build_schema())
        self.warm(compiled)
        delta = SchemaDelta.of(
            AddRelationship(
                Relationship(
                    "person", "city", RelationshipKind.IS_ASSOCIATED_WITH,
                    name="home",
                )
            )
        )
        registry = MetricsRegistry()
        with use_metrics(registry):
            compiled.evolve(delta, mode="incremental")
        summary = registry.as_dict()["counters"]
        assert summary["delta.applied"] == 1.0
        assert summary["cache.selective_evictions"] >= 1.0

    def test_rebuild_mode_starts_cold(self):
        compiled = compile_schema(build_schema())
        self.warm(compiled)
        evolved = compiled.evolve(module_delta(), mode="rebuild")
        assert len(evolved.cache) == 0

    def test_adopt_rekeys_fingerprint_prefix(self):
        compiled = compile_schema(build_schema())
        self.warm(compiled)
        evolved = compiled.evolve(module_delta(), mode="incremental")
        for key in evolved.cache._data:
            assert key[0] == evolved.fingerprint


class TestObservability:
    def test_delta_apply_span_recorded(self):
        compiled = compile_schema(build_schema())
        tracer = RecordingTracer()
        with use_tracer(tracer):
            compiled.evolve(SchemaDelta.of(AddClass("annex")))
        rendered = tracer.render()
        assert "delta_apply" in rendered

    def test_incremental_repairs_counter(self):
        compiled = compile_schema(build_schema())
        # Force a reach matrix and a target table so the evolve has
        # something to repair.
        _ = compiled.closure.reach
        from repro.core.target import RelationshipTarget

        assert compiled.closure.tables_for(RelationshipTarget("name"))
        registry = MetricsRegistry()
        with use_metrics(registry):
            compiled.evolve(module_delta(), mode="incremental")
        counters = registry.as_dict()["counters"]
        assert counters.get("closure.incremental_repairs", 0) >= 1.0


@pytest.fixture(autouse=True)
def clean_closure_cache():
    yield
    SchemaClosure.clear_cache()
