"""Tests for the SchemaDelta command tree (repro.model.delta)."""

import pytest

from repro.errors import DeltaError, SchemaError, UnknownClassError
from repro.model.builder import SchemaBuilder
from repro.model.delta import (
    AddClass,
    AddInheritanceEdge,
    AddRelationship,
    RemoveClass,
    RemoveInheritanceEdge,
    RemoveRelationship,
    SchemaDelta,
    relationship_pair,
)
from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship
from repro.model.schema import Schema


@pytest.fixture()
def schema():
    s = Schema("delta-test")
    s.add_classes(["person", "company", "city"])
    s.add_relationship(
        "person", "company", RelationshipKind.IS_ASSOCIATED_WITH, name="employer"
    )
    s.add_attribute("person", "name")
    return s


class TestCommands:
    def test_add_class_applies_and_inverts(self, schema):
        command = AddClass("country", doc="a nation")
        command.apply_to(schema)
        assert schema.has_class("country")
        assert schema.get_class("country").doc == "a nation"
        command.invert().apply_to(schema)
        assert not schema.has_class("country")

    def test_add_relationship_is_single_edge(self, schema):
        rel = Relationship(
            "person", "city", RelationshipKind.IS_ASSOCIATED_WITH, name="home"
        )
        AddRelationship(rel).apply_to(schema)
        assert schema.get_relationship("person", "home").target == "city"
        # No automatic inverse — that is relationship_pair's job.
        assert not any(
            r.name == "person" for r in schema.relationships_from("city")
        )

    def test_remove_relationship_refuses_content_drift(self, schema):
        drifted = Relationship(
            "person", "city", RelationshipKind.IS_ASSOCIATED_WITH, name="employer"
        )
        with pytest.raises(DeltaError):
            RemoveRelationship(drifted).apply_to(schema)
        # The schema is untouched on refusal.
        assert schema.get_relationship("person", "employer").target == "company"

    def test_remove_relationship_snapshot_roundtrips(self, schema):
        rel = schema.get_relationship("person", "employer")
        before = schema.fingerprint()
        command = RemoveRelationship(rel)
        command.apply_to(schema)
        assert schema.fingerprint() != before
        command.invert().apply_to(schema)
        assert schema.fingerprint() == before

    def test_inheritance_edge_commands(self, schema):
        AddInheritanceEdge("person", "company").apply_to(schema)
        stored = schema.get_relationship("person", "company")
        assert stored.kind is RelationshipKind.ISA
        RemoveInheritanceEdge("person", "company").apply_to(schema)
        with pytest.raises(SchemaError):
            schema.get_relationship("person", "company")

    def test_remove_class_requires_isolation(self, schema):
        with pytest.raises(SchemaError):
            RemoveClass("person").apply_to(schema)
        with pytest.raises(UnknownClassError):
            RemoveClass("ghost").apply_to(schema)


class TestSchemaDelta:
    def test_of_flattens_deltas_and_commands(self):
        inner = SchemaDelta.of(AddClass("a"), AddClass("b"))
        outer = SchemaDelta.of(inner, AddClass("c"))
        assert [c.name for c in outer] == ["a", "b", "c"]
        with pytest.raises(TypeError):
            SchemaDelta.of("not a command")

    def test_invert_reverses_and_inverts(self, schema):
        delta = SchemaDelta.of(
            AddClass("lab"),
            relationship_pair(
                "lab", "person", RelationshipKind.IS_ASSOCIATED_WITH,
                name="members",
            ),
        )
        before = schema.fingerprint()
        delta.apply_to(schema)
        assert schema.fingerprint() != before
        delta.invert().apply_to(schema)
        assert schema.fingerprint() == before

    def test_touched_classes_and_eviction_frontier(self):
        delta = SchemaDelta.of(
            AddClass("lab"),
            AddRelationship(
                Relationship(
                    "lab", "person", RelationshipKind.IS_ASSOCIATED_WITH,
                    name="members",
                )
            ),
        )
        assert delta.touched_classes() == frozenset({"lab", "person"})
        # Only the *source* of the relationship command is in the
        # eviction frontier; bare class adds contribute nothing.
        assert delta.eviction_frontier() == frozenset({"lab"})

    def test_describe_and_dunders(self):
        empty = SchemaDelta()
        assert empty.is_empty and not empty and len(empty) == 0
        assert empty.describe() == "(empty delta)"
        delta = SchemaDelta.of(AddClass("x"))
        assert delta and len(delta) == 1
        assert "add class x" in delta.describe()

    def test_then_composes_sequentially(self, schema):
        delta = SchemaDelta.of(AddClass("lab")).then(
            AddInheritanceEdge("lab", "company")
        )
        delta.apply_to(schema)
        assert schema.get_relationship("lab", "company").kind is (
            RelationshipKind.ISA
        )


class TestDiff:
    def test_diff_reconstructs_target_content(self, schema):
        edited = schema.copy()
        edited.add_class("country")
        edited.add_relationship(
            "city", "country", RelationshipKind.IS_PART_OF, name="nation"
        )
        edited.remove_attribute("person", "name")
        delta = SchemaDelta.diff(schema, edited)
        replayed = schema.copy()
        delta.apply_to(replayed)
        assert replayed.fingerprint() == edited.fingerprint()

    def test_diff_orders_removals_before_class_removal(self, schema):
        edited = schema.copy()
        edited.remove_class("city")  # isolated, no cascade needed
        delta = SchemaDelta.diff(schema, edited)
        replayed = schema.copy()
        delta.apply_to(replayed)
        assert replayed.fingerprint() == edited.fingerprint()

    def test_diff_retarget_becomes_remove_plus_add(self, schema):
        edited = schema.copy()
        edited.remove_relationship("person", "employer")
        edited.add_relationship(
            "person", "city", RelationshipKind.IS_ASSOCIATED_WITH,
            name="employer", add_inverse=False,
        )
        delta = SchemaDelta.diff(schema, edited)
        kinds = [type(c).__name__ for c in delta]
        assert kinds.count("RemoveRelationship") == 1
        assert kinds.count("AddRelationship") == 1
        replayed = schema.copy()
        delta.apply_to(replayed)
        assert replayed.fingerprint() == edited.fingerprint()

    def test_diff_renders_default_isa_as_inheritance_commands(self, schema):
        edited = schema.copy()
        edited.add_relationship(
            "person", "company", RelationshipKind.ISA, add_inverse=False
        )
        delta = SchemaDelta.diff(schema, edited)
        assert any(isinstance(c, AddInheritanceEdge) for c in delta)

    def test_builder_diff_against(self):
        base = Schema("scratch")
        base.add_class("depot")
        builder = SchemaBuilder("scratch")
        builder.cls("depot")
        builder.cls("warehouse")
        delta = builder.diff_against(base)
        assert [type(c).__name__ for c in delta] == ["AddClass"]
        assert delta.commands[0].name == "warehouse"


class TestRelationshipPair:
    def test_pair_installs_both_directions(self, schema):
        delta = relationship_pair(
            "city", "company", RelationshipKind.IS_ASSOCIATED_WITH,
            name="tenants",
        )
        assert len(delta) == 2
        delta.apply_to(schema)
        assert schema.get_relationship("city", "tenants").target == "company"
        inverse = schema.get_relationship("company", "city")
        assert inverse.target == "city"
