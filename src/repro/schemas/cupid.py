"""A synthetic stand-in for the paper's CUPID schema.

The paper evaluates on the Moose schema of the input parameters of
CUPID, a Fortran plant-growth simulator: **92 user-defined classes and
364 relationships**, designed by a Soil Sciences researcher.  That
schema is not published, so this module builds a deterministic synthetic
equivalent with the same size and the same structural character the
paper describes:

* a deep part-whole decomposition of a plant-environment simulation's
  inputs (the spine — experimental-science schemas are dominated by
  Has-Part);
* Isa layers grouping instruments, parameters, profiles, specs, and
  physical processes;
* cross-cutting associations between the physics and the structure;
* a handful of *auxiliary hub* classes (units registry, reference
  table, metadata) associated with a plethora of other classes but with
  little semantic content — exactly the classes the paper's schema
  designer later excluded via domain knowledge (Section 5.2).

The build asserts the published size: 92 user classes, 364
relationships (inverses counted, as declared in the schema).
"""

from __future__ import annotations

from repro.model.kinds import RelationshipKind
from repro.model.schema import Schema

__all__ = [
    "build_cupid_schema",
    "CUPID_CLASS_COUNT",
    "CUPID_RELATIONSHIP_COUNT",
    "AUXILIARY_CLASSES",
]

#: Published size of the original CUPID schema (paper Section 5.2).
CUPID_CLASS_COUNT = 92
CUPID_RELATIONSHIP_COUNT = 364

#: The auxiliary hub classes the domain-knowledge experiment excludes.
AUXILIARY_CLASSES = ("units_registry", "reference_table", "metadata")

# ---------------------------------------------------------------------------
# Structure tables (parent -> children) for the part-whole spine.
# ---------------------------------------------------------------------------

_PART_TREE: dict[str, tuple[str, ...]] = {
    "experiment": ("simulation",),
    "simulation": (
        "site",
        "atmosphere",
        "soil_profile",
        "crop",
        "management",
        "numerics",
        "output_spec",
    ),
    "site": ("location", "weather_station", "field"),
    "weather_station": (
        "thermometer",
        "pyranometer",
        "anemometer",
        "hygrometer",
        "rain_gauge",
    ),
    "field": ("plot",),
    "atmosphere": (
        "radiation_regime",
        "wind_profile",
        "temperature_profile",
        "humidity_profile",
        "co2_profile",
    ),
    "radiation_regime": ("solar_radiation", "longwave_radiation"),
    "soil_profile": (
        "soil_surface",
        "soil_layer",
        "root_zone",
        "drainage_system",
    ),
    "soil_surface": ("residue_layer",),
    "soil_layer": (
        "soil_texture",
        "soil_moisture",
        "soil_temperature",
        "hydraulic_properties",
        "thermal_properties",
    ),
    "root_zone": ("root_segment",),
    "crop": ("canopy", "root_system", "phenology", "fruit"),
    "canopy": ("canopy_layer", "canopy_geometry"),
    "canopy_layer": ("leaf_class", "stem_segment"),
    "leaf_class": ("leaf", "leaf_angle"),
    "leaf": ("stomata", "cuticle"),
    "phenology": ("growth_stage", "development_rate"),
    "management": (
        "irrigation_system",
        "fertilization_plan",
        "planting_spec",
        "harvest_spec",
    ),
    "irrigation_system": ("irrigation_event",),
    "fertilization_plan": ("fertilizer_application",),
    "numerics": (
        "time_grid",
        "space_grid",
        "solver",
        "boundary_condition",
        "initial_condition",
    ),
    "solver": ("tolerance_spec",),
    "output_spec": ("report_spec", "plot_spec", "summary_spec"),
}

# Superclass -> subclasses (subclasses may appear in the part tree too).
_ISA_GROUPS: dict[str, tuple[str, ...]] = {
    "instrument": (
        "thermometer",
        "pyranometer",
        "anemometer",
        "hygrometer",
        "rain_gauge",
    ),
    "parameter": (
        "scalar_parameter",
        "vector_parameter",
        "table_parameter",
        "soil_parameter",
        "plant_parameter",
    ),
    "profile": (
        "wind_profile",
        "temperature_profile",
        "humidity_profile",
        "co2_profile",
    ),
    "spec": (
        "planting_spec",
        "harvest_spec",
        "output_spec",
        "report_spec",
        "plot_spec",
        "summary_spec",
        "tolerance_spec",
    ),
    "process": (
        "evapotranspiration",
        "transpiration",
        "evaporation",
        "infiltration",
        "photosynthesis",
        "respiration",
        "energy_balance",
        "water_balance",
    ),
}

# Free-standing classes not introduced by the trees above.
_EXTRA_CLASSES: tuple[str, ...] = (
    "dataset",
    "measurement",
    "calibration",
    "scientist",
    "documentation",
    *AUXILIARY_CLASSES,
)

# Cross-cutting associations: (source, target, name, inverse name).
_ASSOCIATIONS: tuple[tuple[str, str, str, str], ...] = (
    # physics <-> structure
    ("leaf", "photosynthesis", "photosynthesis", "leaf"),
    ("leaf", "respiration", "respiration", "leaf"),
    ("leaf", "transpiration", "transpiration", "leaf"),
    ("soil_surface", "evaporation", "evaporation", "surface"),
    ("soil_layer", "infiltration", "infiltration", "layer"),
    ("canopy", "energy_balance", "energy_balance", "canopy"),
    ("soil_profile", "water_balance", "water_balance", "profile"),
    ("crop", "evapotranspiration", "evapotranspiration", "crop"),
    # parameters parameterize processes and structures
    ("photosynthesis", "plant_parameter", "parameters", "photosynthesis"),
    ("respiration", "plant_parameter", "rate_parameters", "respiration"),
    ("hydraulic_properties", "soil_parameter", "parameters", "hydraulics"),
    ("thermal_properties", "soil_parameter", "conductivities", "thermals"),
    ("solver", "scalar_parameter", "controls", "solver"),
    ("time_grid", "scalar_parameter", "step_size", "time_grid"),
    ("boundary_condition", "table_parameter", "forcing", "condition"),
    ("initial_condition", "vector_parameter", "state", "condition"),
    # measurement chain
    ("instrument", "measurement", "measures", "instrument"),
    ("measurement", "dataset", "dataset", "measurement"),
    ("dataset", "calibration", "calibration", "dataset"),
    ("weather_station", "dataset", "records", "station"),
    ("scientist", "experiment", "runs", "investigator"),
    ("scientist", "dataset", "curates", "curator"),
    ("documentation", "experiment", "documents", "documentation"),
    # radiation couples to the canopy and soil
    ("solar_radiation", "canopy_layer", "intercepted_by", "radiation"),
    ("longwave_radiation", "soil_surface", "emitted_by", "radiation"),
    # water pathway
    ("irrigation_event", "soil_moisture", "wets", "irrigation"),
    ("root_segment", "soil_moisture", "extracts", "roots"),
    ("root_system", "root_zone", "occupies", "occupant"),
    ("stomata", "co2_profile", "exchanges", "stomata"),
    ("fruit", "growth_stage", "matures_at", "fruit"),
    ("plot", "crop", "grows", "plot"),
    ("fertilizer_application", "soil_layer", "amends", "amendment"),
)

# Hub associations: the auxiliary classes connect widely but shallowly.
_HUB_LINKS: dict[str, tuple[str, ...]] = {
    "units_registry": (
        "scalar_parameter",
        "vector_parameter",
        "table_parameter",
        "measurement",
        "soil_moisture",
        "tolerance_spec",
    ),
    "reference_table": (
        "soil_texture",
        "leaf_angle",
        "growth_stage",
        "calibration",
        "albedo_entry",
    ),
    "metadata": (
        "experiment",
        "simulation",
        "dataset",
        "documentation",
        "site",
    ),
}

# One more leaf class referenced only through a hub (keeps hub realism).
_HUB_ONLY_CLASSES: tuple[str, ...] = ("albedo_entry",)

# Attributes: (class, attribute name, primitive).  The list is longer
# than needed; the builder consumes entries until the published
# relationship count is reached exactly.
_ATTRIBUTES: tuple[tuple[str, str, str], ...] = (
    ("experiment", "name", "C"),
    ("experiment", "start_date", "C"),
    ("simulation", "name", "C"),
    ("site", "name", "C"),
    ("location", "latitude", "R"),
    ("location", "longitude", "R"),
    ("location", "elevation", "R"),
    ("soil_layer", "depth", "R"),
    ("soil_layer", "thickness", "R"),
    ("soil_moisture", "value", "R"),
    ("soil_temperature", "value", "R"),
    ("soil_texture", "sand_fraction", "R"),
    ("soil_texture", "clay_fraction", "R"),
    ("leaf", "area", "R"),
    ("leaf", "age", "I"),
    ("leaf_angle", "value", "R"),
    ("stomata", "conductance", "R"),
    ("canopy", "height", "R"),
    ("canopy_layer", "lai", "R"),
    ("growth_stage", "name", "C"),
    ("growth_stage", "index", "I"),
    ("development_rate", "value", "R"),
    ("time_grid", "step_count", "I"),
    ("space_grid", "node_count", "I"),
    ("tolerance_spec", "value", "R"),
    ("irrigation_event", "amount", "R"),
    ("irrigation_event", "day", "I"),
    ("fertilizer_application", "amount", "R"),
    ("plot", "area", "R"),
    ("dataset", "name", "C"),
    ("measurement", "value", "R"),
    ("measurement", "timestamp", "C"),
    ("calibration", "offset", "R"),
    ("scientist", "name", "C"),
    ("scalar_parameter", "value", "R"),
    ("scalar_parameter", "name", "C"),
    ("vector_parameter", "name", "C"),
    ("table_parameter", "name", "C"),
    ("units_registry", "version", "C"),
    ("reference_table", "name", "C"),
    ("metadata", "created", "C"),
    ("solar_radiation", "flux", "R"),
    ("wind_profile", "reference_height", "R"),
    ("co2_profile", "ambient", "R"),
    ("fruit", "dry_mass", "R"),
    ("report_spec", "frequency", "I"),
    ("documentation", "text", "C"),
    ("albedo_entry", "value", "R"),
    ("harvest_spec", "day", "I"),
    ("planting_spec", "density", "R"),
    ("boundary_condition", "kind", "C"),
    ("residue_layer", "coverage", "R"),
    ("drainage_system", "depth", "R"),
    ("cuticle", "thickness", "R"),
    ("stem_segment", "length", "R"),
    ("canopy_geometry", "row_spacing", "R"),
    ("root_segment", "length", "R"),
    ("root_system", "depth", "R"),
    ("anemometer", "height", "R"),
    ("rain_gauge", "height", "R"),
    ("thermometer", "precision", "R"),
    ("pyranometer", "spectral_range", "C"),
    ("hygrometer", "precision", "R"),
    ("field", "area", "R"),
    ("crop", "species", "C"),
    ("phenology", "base_temperature", "R"),
    ("soil_surface", "roughness", "R"),
    ("soil_profile", "total_depth", "R"),
    ("atmosphere", "reference_pressure", "R"),
    ("longwave_radiation", "emissivity", "R"),
    ("humidity_profile", "reference_humidity", "R"),
    ("temperature_profile", "reference_temperature", "R"),
    ("hydraulic_properties", "saturated_conductivity", "R"),
    ("thermal_properties", "heat_capacity", "R"),
    ("leaf_class", "count", "I"),
    ("stomata", "density", "R"),
    ("canopy_layer", "height_fraction", "R"),
    ("space_grid", "spacing", "R"),
    ("solver", "max_iterations", "I"),
    ("irrigation_system", "capacity", "R"),
    ("fertilization_plan", "total_nitrogen", "R"),
    ("plot_spec", "format", "C"),
    ("summary_spec", "interval", "I"),
    ("output_spec", "directory", "C"),
    ("location", "slope", "R"),
    ("site", "description", "C"),
)


def build_cupid_schema() -> Schema:
    """Build the synthetic CUPID schema (deterministic; asserts size)."""
    schema = Schema("cupid")

    # 1. Collect every class name from the structure tables.
    names: dict[str, None] = {}
    for parent, children in _PART_TREE.items():
        names.setdefault(parent, None)
        for child in children:
            names.setdefault(child, None)
    for superclass, subclasses in _ISA_GROUPS.items():
        names.setdefault(superclass, None)
        for subclass in subclasses:
            names.setdefault(subclass, None)
    for name in _EXTRA_CLASSES + _HUB_ONLY_CLASSES:
        names.setdefault(name, None)
    for name in names:
        schema.add_class(name)

    # 2. Part-whole spine.
    for parent, children in _PART_TREE.items():
        for child in children:
            schema.add_relationship(
                parent,
                child,
                RelationshipKind.HAS_PART,
                inverse_name=parent,
            )

    # 3. Isa layers.
    for superclass, subclasses in _ISA_GROUPS.items():
        for subclass in subclasses:
            schema.add_relationship(subclass, superclass, RelationshipKind.ISA)

    # 4. Cross-cutting associations.
    for source, target, name, inverse_name in _ASSOCIATIONS:
        schema.add_relationship(
            source,
            target,
            RelationshipKind.IS_ASSOCIATED_WITH,
            name=name,
            inverse_name=inverse_name,
        )

    # 5. Auxiliary hubs.
    for hub, targets in _HUB_LINKS.items():
        for target in targets:
            schema.add_relationship(
                hub,
                target,
                RelationshipKind.IS_ASSOCIATED_WITH,
                name=target,
                inverse_name=hub,
            )

    # 6. Attributes, consumed until the published count is reached.
    for owner, attr_name, primitive in _ATTRIBUTES:
        if schema.relationship_count >= CUPID_RELATIONSHIP_COUNT:
            break
        schema.add_attribute(owner, attr_name, primitive)

    schema.validate()
    _assert_published_size(schema)
    return schema


def _assert_published_size(schema: Schema) -> None:
    if schema.user_class_count != CUPID_CLASS_COUNT:
        raise AssertionError(
            f"synthetic CUPID has {schema.user_class_count} classes, "
            f"expected {CUPID_CLASS_COUNT}"
        )
    if schema.relationship_count != CUPID_RELATIONSHIP_COUNT:
        raise AssertionError(
            f"synthetic CUPID has {schema.relationship_count} "
            f"relationships, expected {CUPID_RELATIONSHIP_COUNT}"
        )
