"""Bench PR5 — closure-guided pruning and parallel cold completion.

Runs the ten CUPID workload queries cold on the *unrestricted* schema
(no domain-knowledge exclusions — that is where Algorithm 2 actually
hurts) twice per E: once with ``pruning="none"`` (the paper's reference
loop) and once with ``pruning="closure"``.  The contract under test:

* the pruned pass returns byte-identical ranked paths and labels for
  every query at every E — admissibility, not approximation;
* at E=3 the pruned pass is at least 5x faster (measured ~10x); at
  lower E at least 2x (measured ~6x);
* registering the closure on the compiled artifact adds at most 30% to
  ``compile_seconds`` (the reach matrix and per-target tables are lazy,
  so the compile path only pays the index build — well under 1%);
* even the fully *eager* closure (reach + all ten target tables) costs
  less than the single unpruned cold pass it replaces;
* ``complete_batch(..., jobs=4)`` returns byte-identical results in
  input order with at most modest thread-pool overhead (the GIL caps
  the win for this pure-Python CPU-bound search; see the ROADMAP's
  process-pool item — both series are ledger-gated so the numbers
  stay visible).

Timings land in ``BENCH_closure.json`` at the repo root and in the
``BENCH_history.jsonl`` perf ledger (gated by
``python -m repro.obs.perf compare`` in CI).  Set ``BENCH_QUICK=1`` (as
CI does) to run E=1 only.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import pytest

from benchmarks.conftest import emit, record_bench
from repro.core import compiled as compiled_registry
from repro.core.closure import SchemaClosure
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.core.target import RelationshipTarget

_ROOT = pathlib.Path(__file__).parent.parent
_RESULT_FILE = _ROOT / "BENCH_closure.json"

QUICK = os.environ.get("BENCH_QUICK") == "1"
E_VALUES = (1,) if QUICK else (1, 2, 3)
#: Required cold-pass speedup of closure pruning over the reference
#: loop.  The acceptance bar is 5x at E=3; the lower-E bars are sanity
#: floors far below the measured ~6x.
MIN_SPEEDUP = {1: 2.0, 2: 2.0, 3: 5.0}
#: Closure registration may add at most this fraction to compile time.
MAX_COMPILE_OVERHEAD = 0.30


def _snapshots(batch) -> list[tuple]:
    """Everything a caller can observe about each ranked result."""
    return [
        (
            tuple(str(path) for path in result.paths),
            tuple(str(label) for label in result.labels),
            result.exhausted,
            result.truncation_reason,
        )
        for result in batch.results
    ]


def _cold_pass(schema, texts, e, pruning, jobs=1, executor=None):
    """One genuinely cold batch: fresh artifact, empty completion cache.

    With ``executor="process"`` the compile registry is cleared first so
    forked workers cannot inherit a warm artifact — the pass measures a
    genuinely cold shard on every core.
    """
    if executor == "process":
        compiled_registry.invalidate()
    engine = Disambiguator(CompiledSchema(schema), e=e, pruning=pruning)
    start = time.perf_counter()
    batch = engine.complete_batch(texts, jobs=jobs, executor=executor)
    seconds = time.perf_counter() - start
    calls = sum(result.stats.recursive_calls for result in batch)
    pruned = sum(
        result.stats.nodes_pruned_reachability + result.stats.nodes_pruned_bound
        for result in batch
    )
    return batch, seconds, calls, pruned


@pytest.mark.benchmark(group="closure")
def test_closure_pruning_speedup(cupid, oracle):
    texts = [query.text for query in oracle.queries]

    lines = [
        f"workload: {len(texts)} CUPID queries, unrestricted schema"
        + (" (quick mode)" if QUICK else "")
    ]
    by_e = {}
    for e in E_VALUES:
        reference, none_seconds, none_calls, _ = _cold_pass(
            cupid, texts, e, "none"
        )
        pruned, closure_seconds, closure_calls, cuts = _cold_pass(
            cupid, texts, e, "closure"
        )
        speedup = (
            none_seconds / closure_seconds
            if closure_seconds > 0
            else float("inf")
        )
        assert _snapshots(pruned) == _snapshots(reference)
        assert closure_calls < none_calls
        assert cuts > 0
        assert speedup >= MIN_SPEEDUP[e], (
            f"E={e}: {speedup:.2f}x < {MIN_SPEEDUP[e]}x "
            f"({none_seconds * 1000:.0f}ms -> {closure_seconds * 1000:.0f}ms)"
        )
        by_e[e] = {
            "none_seconds": none_seconds,
            "closure_seconds": closure_seconds,
            "speedup": speedup,
            "none_calls": none_calls,
            "closure_calls": closure_calls,
            "nodes_pruned": cuts,
        }
        # The ledger series for the pruned pass is the *steady-state*
        # cold cost: a second fresh artifact whose closure tables are
        # already shared by fingerprint (a long-lived process pays the
        # ~20ms table build once ever, and its variance would dominate
        # a 25%-tolerance gate on a ~50ms series).  The first-touch
        # pass above keeps the assertions honest.
        _, steady_seconds, _, _ = _cold_pass(cupid, texts, e, "closure")
        # E is part of the series name: the ledger's regression gate
        # medians by name, and mixing E levels would blur the baseline.
        # (The speedup itself is not a gated series — "faster than the
        # baseline" would read as a regression — it is derivable from
        # the two timing series and asserted directly above.)
        record_bench(
            f"closure.none_seconds_e{e}", none_seconds, quick=QUICK
        )
        record_bench(
            f"closure.pruned_seconds_e{e}", steady_seconds, quick=QUICK
        )
        by_e[e]["steady_seconds"] = steady_seconds
        lines.append(
            f"E={e}: none {none_seconds * 1000:8.1f} ms "
            f"({none_calls} calls) | closure "
            f"{closure_seconds * 1000:8.1f} ms ({closure_calls} calls, "
            f"{cuts} cuts) | {speedup:5.2f}x "
            f"(required >= {MIN_SPEEDUP[e]:.0f}x)"
        )

    # ------------------------------------------------------------------
    # Compile-time overhead: the closure registered on a fresh artifact
    # must not inflate compile_seconds (reach/tables are lazy), and even
    # built eagerly it must cost less than the unpruned pass it replaces.
    # ------------------------------------------------------------------
    SchemaClosure.clear_cache()
    compiled = CompiledSchema(cupid)
    register_seconds = compiled.closure.build_seconds
    overhead = register_seconds / compiled.compile_seconds
    assert overhead <= MAX_COMPILE_OVERHEAD, (
        f"closure registration is {overhead:.1%} of compile "
        f"(limit {MAX_COMPILE_OVERHEAD:.0%})"
    )
    start = time.perf_counter()
    _ = compiled.closure.reach
    for text in texts:
        relationship = text.split("~")[-1].strip()
        assert compiled.closure.tables_for(RelationshipTarget(relationship))
    eager_seconds = time.perf_counter() - start
    slowest_none = max(point["none_seconds"] for point in by_e.values())
    assert eager_seconds < slowest_none
    # Not ledger series: both are microsecond/millisecond-scale numbers
    # whose scheduler noise dwarfs the 25% gate; the assertions above
    # and BENCH_closure.json carry them instead.
    lines.append(
        f"compile: {compiled.compile_seconds * 1000:8.2f} ms | closure "
        f"registration {register_seconds * 1000:8.3f} ms "
        f"({overhead:.1%}, limit {MAX_COMPILE_OVERHEAD:.0%}) | eager "
        f"reach+tables {eager_seconds * 1000:8.2f} ms"
    )

    # ------------------------------------------------------------------
    # Parallel cold completion: byte-identical always, and the thread
    # pool must never cost more than modest overhead.  A strict "beats
    # sequential" bar is not assertable for this pure-Python CPU-bound
    # search under the GIL (the ROADMAP tracks process-pool escalation
    # for exactly that); both series are recorded and gated so a real
    # win — or a regression — shows up in the ledger.
    # ------------------------------------------------------------------
    e = max(E_VALUES)
    sequential, seq_seconds, _, _ = _cold_pass(cupid, texts, e, "closure")
    threaded, par_seconds, _, _ = _cold_pass(
        cupid, texts, e, "closure", jobs=4
    )
    assert _snapshots(threaded) == _snapshots(sequential)
    cores = os.cpu_count() or 1
    if cores >= 2:
        # On one core thread scheduling can only add overhead, so the
        # cap is not a meaningful contract there; with 2+ cores the
        # pool must at least not cost more than modest overhead.
        assert par_seconds < seq_seconds * 1.5, (
            f"jobs=4 ({par_seconds * 1000:.0f}ms) added pathological "
            f"overhead over sequential ({seq_seconds * 1000:.0f}ms) on "
            f"{cores} core(s)"
        )
    record_bench(
        f"closure.batch_seq_seconds_e{e}", seq_seconds, quick=QUICK
    )
    record_bench(
        f"closure.batch_jobs4_seconds_e{e}", par_seconds, quick=QUICK
    )
    # The process backend rides along as its own ledger series (the
    # speedup assertion itself lives in bench_kernel.py, gated by core
    # count); here the contract is byte-identity with the sequential
    # pass plus ledger visibility.
    process, proc_seconds, _, _ = _cold_pass(
        cupid, texts, e, "closure", jobs=4, executor="process"
    )
    assert _snapshots(process) == _snapshots(sequential)
    record_bench(
        f"closure.batch_process_jobs4_seconds_e{e}",
        proc_seconds,
        quick=QUICK,
        cores=cores,
    )
    lines.append(
        f"batch E={e}: sequential {seq_seconds * 1000:8.1f} ms | jobs=4 "
        f"threads {par_seconds * 1000:8.1f} ms | jobs=4 processes "
        f"{proc_seconds * 1000:8.1f} ms on {cores} core(s)"
    )

    record = {
        "schema": "cupid (unrestricted)",
        "quick": QUICK,
        "queries": len(texts),
        "by_e": {str(e): point for e, point in by_e.items()},
        "compile_seconds": compiled.compile_seconds,
        "closure_register_seconds": register_seconds,
        "closure_eager_build_seconds": eager_seconds,
        "batch": {
            "e": e,
            "sequential_seconds": seq_seconds,
            "jobs4_seconds": par_seconds,
            "process_jobs4_seconds": proc_seconds,
            "cores": cores,
        },
        "python": platform.python_version(),
    }
    _RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    emit("Closure-guided pruning: cold workload, pruned vs reference", "\n".join(lines))
