"""Class definitions of the object-oriented data model (paper Section 2.1).

Real-world entities are modeled by objects grouped into *classes*.  Four
primitive classes are system-provided — Integers ``I``, Reals ``R``,
Character strings ``C``, and Booleans ``B`` — and every other class is
user-defined.  Primitive classes cannot be the root of a path expression
and never have outgoing relationships.
"""

from __future__ import annotations

import dataclasses
import re

from repro.errors import SchemaError

__all__ = [
    "ClassDef",
    "PRIMITIVE_CLASS_NAMES",
    "INTEGER",
    "REAL",
    "STRING",
    "BOOLEAN",
    "primitive_classes",
    "is_valid_class_name",
]

#: Names of the four system-provided primitive classes.
PRIMITIVE_CLASS_NAMES = frozenset({"I", "R", "C", "B"})

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-]*$")


def is_valid_class_name(name: str) -> bool:
    """Return True if ``name`` is a legal class name.

    Class names are identifiers that may also contain dashes (the paper
    uses names like ``teaching-asst``).  Connector characters are excluded
    so that path expressions stay parseable.
    """
    return bool(_NAME_RE.match(name))


@dataclasses.dataclass(frozen=True)
class ClassDef:
    """A class in a schema.

    Parameters
    ----------
    name:
        Unique name of the class within its schema.
    primitive:
        True for the four system-provided classes (I, R, C, B).
    doc:
        Optional human-readable description, carried through
        serialization for tooling.
    """

    name: str
    primitive: bool = False
    doc: str = ""

    def __post_init__(self) -> None:
        if not is_valid_class_name(self.name):
            raise SchemaError(f"invalid class name {self.name!r}")
        if self.primitive and self.name not in PRIMITIVE_CLASS_NAMES:
            raise SchemaError(
                f"{self.name!r} is not one of the primitive classes "
                f"{sorted(PRIMITIVE_CLASS_NAMES)}"
            )
        if not self.primitive and self.name in PRIMITIVE_CLASS_NAMES:
            raise SchemaError(
                f"{self.name!r} is reserved for a primitive class"
            )

    def __str__(self) -> str:
        return self.name


#: The four system-provided primitive classes.
INTEGER = ClassDef("I", primitive=True, doc="system-provided integers")
REAL = ClassDef("R", primitive=True, doc="system-provided reals")
STRING = ClassDef("C", primitive=True, doc="system-provided character strings")
BOOLEAN = ClassDef("B", primitive=True, doc="system-provided booleans")


def primitive_classes() -> tuple[ClassDef, ClassDef, ClassDef, ClassDef]:
    """Return the four primitive classes, in I, R, C, B order."""
    return (INTEGER, REAL, STRING, BOOLEAN)
