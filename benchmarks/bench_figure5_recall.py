"""Bench E1 — regenerates Figure 5 (average recall fraction vs E).

Paper: average recall ~90%, unaffected by E.  One full sweep is timed
(single round — the experiment is minutes-scale, not microseconds).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.figure5 import render_figure5, run_figure5

E_VALUES = (1, 2, 3, 4)


@pytest.mark.benchmark(group="figure5")
def test_figure5_recall_sweep(benchmark, cupid, oracle):
    result = benchmark.pedantic(
        run_figure5,
        args=(cupid, oracle),
        kwargs={"e_values": E_VALUES},
        rounds=1,
        iterations=1,
    )
    emit("Figure 5: Average Recall Fraction", render_figure5(result))
    # the paper's two headline observations
    assert result.is_flat
    for e, recall in result.recall_series:
        assert recall == pytest.approx(0.9)
