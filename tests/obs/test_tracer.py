"""Tests for the span tracer (repro.obs.tracer)."""

import io
import json
import threading
import time

from repro.obs.schema import validate_trace_events
from repro.obs.tracer import (
    NullTracer,
    RecordingTracer,
    get_tracer,
    use_tracer,
)


class TestNullTracer:
    def test_default_tracer_is_noop(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled

    def test_null_span_supports_full_interface(self):
        with get_tracer().span("anything", key="value") as span:
            span.set(more=1)
            span.event("point", detail="x")

    def test_null_spans_are_one_shared_object(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")


class TestRecordingTracer:
    def test_nesting_builds_a_tree(self):
        tracer = RecordingTracer()
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert [child.name for child in root.children] == ["child_a", "child_b"]
        assert root.children[0].children[0].name == "grandchild"
        assert tracer.span_count == 4

    def test_durations_are_positive_and_nested(self):
        tracer = RecordingTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert inner.duration >= 0.002
        assert outer.duration >= inner.duration

    def test_attrs_and_events(self):
        tracer = RecordingTracer()
        with tracer.span("work", e=3) as span:
            span.set(calls=10)
            span.event("cache", hit=True)
        span = tracer.roots[0]
        assert span.attrs == {"e": 3, "calls": 10}
        assert span.events[0][1] == "cache"
        assert span.events[0][2] == {"hit": True}

    def test_multiple_roots(self):
        tracer = RecordingTracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_find_by_name(self):
        tracer = RecordingTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(tracer.find("b")) == 2
        assert tracer.find("missing") == []

    def test_use_tracer_scopes_installation(self):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert isinstance(get_tracer(), NullTracer)

    def test_summary_aggregates_self_time(self):
        tracer = RecordingTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        summary = tracer.summary()
        assert summary["inner"]["count"] == 1
        assert summary["outer"]["self_seconds"] < summary["outer"]["total_seconds"]

    def test_thread_safety_separate_stacks(self):
        tracer = RecordingTracer()

        def worker(name):
            with tracer.span(name):
                with tracer.span(f"{name}.child"):
                    time.sleep(0.001)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Each thread produced its own root with exactly one child.
        assert len(tracer.roots) == 4
        for root in tracer.roots:
            assert len(root.children) == 1
            assert root.children[0].name == f"{root.name}.child"


class TestExporters:
    def _sample(self):
        tracer = RecordingTracer()
        with tracer.span("complete", expression="ta ~ name") as span:
            with tracer.span("parse"):
                pass
            with tracer.span("traverse", root="ta") as traverse:
                traverse.event("prune", reason="visited")
            span.set(paths=2)
        return tracer

    def test_render_tree_shows_names_attrs_and_times(self):
        rendered = self._sample().render()
        lines = rendered.splitlines()
        assert lines[0].startswith("complete")
        assert "ms" in lines[0]
        assert "expression='ta ~ name'" in lines[0]
        assert any(line.strip().startswith("parse") for line in lines)
        assert any("* prune" in line for line in lines)

    def test_jsonl_round_trip(self):
        tracer = self._sample()
        buffer = io.StringIO()
        count = tracer.write_jsonl(buffer)
        records = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        assert len(records) == count == 4  # 3 spans + 1 event
        spans = [r for r in records if r["type"] == "span"]
        events = [r for r in records if r["type"] == "event"]
        assert [span["name"] for span in spans] == [
            "complete",
            "parse",
            "traverse",
        ]
        root = spans[0]
        assert root["parent"] is None and root["depth"] == 0
        for child in spans[1:]:
            assert child["parent"] == root["id"]
            assert child["depth"] == 1
        assert events[0]["span"] == spans[2]["id"]

    def test_jsonl_records_revalidate_against_schema(self):
        # Round-trip: every exported event must re-validate against the
        # checked-in trace_event schema after a JSON round-trip.
        tracer = self._sample()
        buffer = io.StringIO()
        tracer.write_jsonl(buffer)
        records = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        validate_trace_events(records)

    def test_jsonl_nesting_matches_walk_order(self):
        # Parent/child structure reconstructed from the event log must
        # match the in-memory Span.walk() traversal exactly.
        tracer = RecordingTracer()
        with tracer.span("complete") as outer:
            with tracer.span("parse"):
                pass
            with tracer.span("traverse"):
                with tracer.span("agg_select"):
                    pass
                with tracer.span("rank"):
                    pass
            outer.set(paths=1)
        records = tracer.to_events()
        spans = [r for r in records if r["type"] == "span"]

        walk = [
            (span.name, depth)
            for root in tracer.roots
            for span, depth in root.walk()
        ]
        assert [(r["name"], r["depth"]) for r in spans] == walk

        # Rebuild the tree from parent pointers and compare child lists
        # (in order) with the recorded Span objects.
        children: dict = {}
        for record in spans:
            children.setdefault(record["parent"], []).append(record["name"])
        root = tracer.roots[0]
        assert children[None] == [root.name]
        by_name = {r["name"]: r["id"] for r in spans}
        for span, _ in root.walk():
            expected = [child.name for child in span.children]
            assert children.get(by_name[span.name], []) == expected

    def test_to_events_roots_subset(self):
        tracer = RecordingTracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        subset = tracer.to_events(roots=[tracer.roots[1]])
        assert [r["name"] for r in subset] == ["second"]
        assert len(tracer.to_events()) == 2

    def test_jsonl_attrs_are_json_safe(self):
        tracer = RecordingTracer()
        with tracer.span("s", obj=object(), ok=1):
            pass
        record = tracer.to_events()[0]
        json.dumps(record)  # must not raise
        assert record["attrs"]["ok"] == 1
        assert isinstance(record["attrs"]["obj"], str)
