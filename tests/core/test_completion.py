"""Tests for Algorithm 2 — the completion search.

Ground truth throughout: exhaustive enumeration + AGG* + preemption.
"""

import pytest

from repro.algebra.agg import Aggregator
from repro.algebra.order import flat_order
from repro.core.completion import CompletionSearch, complete_paths
from repro.core.inheritance_criterion import apply_preemption
from repro.core.enumerate import enumerate_consistent_paths
from repro.core.target import ClassTarget, RelationshipTarget
from repro.model.builder import SchemaBuilder
from repro.model.graph import SchemaGraph
from repro.schemas.generator import GeneratorConfig, generate_schema


def ground_truth(graph, root, target, e=1):
    """Enumerate, filter by AGG*, apply preemption."""
    aggregator = Aggregator(e=e)
    everything = enumerate_consistent_paths(graph, root, target)
    keys = {
        label.key
        for label in aggregator.aggregate([p.label() for p in everything])
    }
    optimal = [p for p in everything if p.label().key in keys]
    optimal, _ = apply_preemption(optimal)
    return optimal


class TestFlagshipExample:
    def test_ta_name_returns_exactly_the_two_isa_chains(self, university_graph):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        assert result.expressions == [
            "ta@>grad@>student@>person.name",
            "ta@>instructor@>teacher@>employee@>person.name",
        ]

    def test_both_completions_carry_the_same_label(self, university_graph):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        assert {str(path.label()) for path in result.paths} == {"[.,1]"}

    def test_less_intuitive_alternatives_are_not_returned(
        self, university_graph
    ):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        rejected = {
            "ta@>grad@>student.take.student@>person.name",
            "ta@>grad@>student.take.name",
            "ta@>instructor@>teacher.teach.name",
            "ta@>grad@>student.department.name",
        }
        assert not rejected & set(result.expressions)

    def test_result_metadata(self, university_graph):
        result = complete_paths(
            university_graph, "ta", RelationshipTarget("name")
        )
        assert not result.is_empty
        assert not result.is_unique
        assert result.stats.recursive_calls > 0
        assert result.stats.complete_paths_found >= 2


class TestAgainstGroundTruth:
    @pytest.mark.parametrize("root,name", [
        ("ta", "name"),
        ("ta", "take"),
        ("ta", "teach"),
        ("department", "name"),
        ("student", "teach"),
        ("university", "ssn"),
        ("course", "ssn"),
    ])
    @pytest.mark.parametrize("e", [1, 2])
    def test_university_queries_match_enumeration(
        self, university_graph, root, name, e
    ):
        target = RelationshipTarget(name)
        result = complete_paths(university_graph, root, target, e=e)
        optimal = ground_truth(university_graph, root, target, e=e)
        # label keys must agree exactly; the algorithm may return fewer
        # tied paths (deliberate best[]-bound pruning, Section 4).
        assert {p.label().key for p in result.paths} == {
            p.label().key for p in optimal
        }
        assert set(result.expressions) <= {str(p) for p in optimal}
        assert result.paths  # something must be found for these queries

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_schemas_sound_wrt_enumeration(self, seed):
        """On arbitrary schemas Algorithm 2 is *sound* — every returned
        path is globally AGG*-optimal — but not complete for optimal
        labels whose only realizations route through prefixes dominated
        at some node by a label that cannot acyclically continue (the
        caution sets are label-level, per the paper's Section 4.1
        definition, and cannot see graph-structural cycles).  Exact
        equality is asserted separately on the hand-verified university
        queries."""
        schema = generate_schema(
            GeneratorConfig(classes=14, seed=seed, association_factor=1.0)
        )
        graph = SchemaGraph(schema)
        target = RelationshipTarget("label")
        roots = [
            cls.name
            for cls in schema.classes(include_primitives=False)
            if graph.edges_from(cls.name)
        ][:6]
        for root in roots:
            result = complete_paths(graph, root, target, e=1)
            optimal = ground_truth(graph, root, target, e=1)
            optimal_keys = {p.label().key for p in optimal}
            assert {p.label().key for p in result.paths} <= optimal_keys, (
                f"unsound answer: root={root} seed={seed}"
            )
            assert set(result.expressions) <= {str(p) for p in optimal}
            assert bool(result.paths) == bool(optimal), (
                f"found nothing for root={root} seed={seed}"
            )


class TestClassTargets:
    def test_node_to_node_completion(self, university_graph):
        result = complete_paths(
            university_graph, "ta", ClassTarget("course")
        )
        assert result.paths
        assert all(
            path.edges[-1].target == "course" for path in result.paths
        )

    def test_unreachable_target_returns_empty(self, university_graph):
        result = complete_paths(
            university_graph, "course", ClassTarget("university")
        )
        # course -> ... -> university exists via department, so use a
        # genuinely unreachable one: a fresh schema would be needed;
        # instead check the ghost relationship case.
        ghost = complete_paths(
            university_graph, "course", RelationshipTarget("ghost")
        )
        assert ghost.is_empty


class TestEParameter:
    def test_larger_e_returns_superset(self, university_graph):
        target = RelationshipTarget("name")
        small = complete_paths(university_graph, "department", target, e=1)
        large = complete_paths(university_graph, "department", target, e=3)
        assert set(small.expressions) <= set(large.expressions)

    def test_e_admits_longer_semantic_lengths(self, university_graph):
        target = RelationshipTarget("ssn")
        small = complete_paths(university_graph, "department", target, e=1)
        large = complete_paths(university_graph, "department", target, e=3)
        assert len({p.semantic_length for p in small.paths}) == 1
        assert len({p.semantic_length for p in large.paths}) >= 2


class TestCycles:
    def test_completions_are_acyclic(self, university_graph):
        for name in ("name", "take", "teach", "ssn"):
            result = complete_paths(
                university_graph, "ta", RelationshipTarget(name)
            )
            assert all(path.is_acyclic for path in result.paths)

    def test_self_referencing_schema(self):
        schema = (
            SchemaBuilder("loop")
            .cls("a").assoc("b", name="next", inverse_name="prev")
            .cls("b").assoc("a", name="next2", inverse_name="prev2")
            .cls("a").attr("label")
            .build()
        )
        graph = SchemaGraph(schema)
        result = complete_paths(graph, "b", RelationshipTarget("label"))
        # both one-hop associations into `a` tie at [..,2]; the cycles
        # b -> a -> b -> ... must not appear
        assert result.expressions == ["b.next2.label", "b.prev.label"]
        assert all(path.is_acyclic for path in result.paths)


class TestDepthBound:
    def test_max_depth_limits_results(self, university_graph):
        target = RelationshipTarget("name")
        bounded = complete_paths(
            university_graph, "ta", target, max_depth=3
        )
        assert all(path.length <= 3 for path in bounded.paths)


class TestAlternativeOrders:
    def test_flat_order_degenerates_to_semantically_shortest(
        self, university_graph
    ):
        target = RelationshipTarget("name")
        result = complete_paths(
            university_graph, "ta", target, order=flat_order()
        )
        assert result.paths
        lengths = {path.semantic_length for path in result.paths}
        assert len(lengths) == 1


class TestCautionSetsRescue:
    """Section 4.1's warning made concrete: without caution sets the
    distributivity-style pruning loses plausible answers.  On the CUPID
    schema, ``output_spec ~ capacity``'s *correct* completion (up to the
    simulation, down to the irrigation system) is found only because a
    caution-set rescue re-explores a node whose best[] holds a label
    that later diverges into incomparability."""

    GOOD = (
        "output_spec<$simulation$>management$>irrigation_system.capacity"
    )

    def test_with_caution_the_plausible_path_is_found(self, cupid_graph):
        result = complete_paths(
            cupid_graph,
            "output_spec",
            RelationshipTarget("capacity"),
            use_caution_sets=True,
        )
        assert self.GOOD in result.expressions
        assert result.stats.rescued_by_caution > 0

    def test_without_caution_it_is_lost(self, cupid_graph):
        result = complete_paths(
            cupid_graph,
            "output_spec",
            RelationshipTarget("capacity"),
            use_caution_sets=False,
        )
        assert self.GOOD not in result.expressions
        # what survives is the implausible Possibly sibling-hop
        assert all("@>spec<@" in text for text in result.expressions)


class TestDeterminism:
    def test_repeated_runs_identical(self, university_graph):
        target = RelationshipTarget("name")
        first = complete_paths(university_graph, "ta", target)
        second = complete_paths(university_graph, "ta", target)
        assert first.expressions == second.expressions

    def test_search_object_reusable(self, university_graph):
        search = CompletionSearch(university_graph)
        first = search.run("ta", RelationshipTarget("name"))
        second = search.run("ta", RelationshipTarget("name"))
        assert first.expressions == second.expressions
