"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

The serving tier needs exactly enough HTTP to speak JSON with curl,
the bundled client, and a Prometheus scraper: request-line + headers +
``Content-Length`` bodies in, status + headers + body out, optional
keep-alive.  Everything else (chunked transfer, continuations,
multipart) is rejected with a clean status code rather than guessed at
— malformed framing from one client must never take down the
connection loop for the others.

Parsing is deliberately strict and bounded: header blocks and bodies
have size limits so a hostile peer cannot balloon server memory, and
every parse failure raises :class:`HttpError` carrying the status the
connection handler should answer with before closing.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from email.utils import formatdate

__all__ = [
    "HttpError",
    "Request",
    "STATUS_PHRASES",
    "json_body",
    "json_response",
    "read_request",
    "render_response",
]

STATUS_PHRASES = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Bound on the request line plus header block.
MAX_HEADER_BYTES = 16 * 1024


class HttpError(Exception):
    """A protocol-level failure with the status code to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclasses.dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: str
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to persistent connections."""
        return self.headers.get("connection", "").lower() != "close"


def json_body(request: Request) -> dict:
    """The request body decoded as a JSON object (else ``HttpError 400``)."""
    if not request.body:
        raise HttpError(400, "a JSON request body is required")
    try:
        payload = json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise HttpError(400, f"invalid JSON body: {error}") from error
    if not isinstance(payload, dict):
        raise HttpError(400, "the JSON body must be an object")
    return payload


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = 1 << 20,
) -> Request | None:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF before any bytes (the peer closed a
    keep-alive connection between requests).  Raises :class:`HttpError`
    on malformed or oversized input, and lets ``asyncio`` timeouts
    propagate to the caller (which maps them to ``408``).
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise HttpError(400, "truncated request") from error
    except asyncio.LimitOverrunError as error:
        raise HttpError(413, "header block too large") from error
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(413, "header block too large")
    try:
        text = header_block.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable header block") from error
    request_line, _, header_text = text.partition("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol version: {version!r}")
    headers: dict[str, str] = {}
    for line in header_text.split("\r\n"):
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator or not name.strip():
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked transfer encoding is not supported")
    path, _, query = target.partition("?")
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as error:
            raise HttpError(
                400, f"invalid Content-Length: {raw_length!r}"
            ) from error
        if length < 0:
            raise HttpError(400, f"invalid Content-Length: {raw_length!r}")
        if length > max_body_bytes:
            raise HttpError(413, f"request body over {max_body_bytes} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise HttpError(400, "truncated request body") from error
    return Request(
        method=method.upper(),
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """One full response as bytes (status line, headers, body)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Date: {formatdate(usegmt=True)}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1")
    return head + b"\r\n\r\n" + body


def json_response(
    status: int,
    payload: dict,
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """A JSON response (sorted keys, trailing newline for curl)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return render_response(
        status,
        body,
        extra_headers=extra_headers,
        keep_alive=keep_alive,
    )
