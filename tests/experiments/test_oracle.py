"""Tests for the simulated designer oracle."""

import pytest

from repro.experiments.oracle import DesignerOracle, WorkloadQuery


def make_query(qid="q1", **kwargs):
    defaults = dict(
        query_id=qid,
        text="a ~ b",
        intended=("a.x.b",),
    )
    defaults.update(kwargs)
    return WorkloadQuery(**defaults)


class TestWorkloadQuery:
    def test_final_intent_without_extension(self):
        query = make_query()
        assert query.final_intent(["a.x.b", "a.y.b"]) == {"a.x.b"}

    def test_also_plausible_joins_only_when_returned(self):
        query = make_query(also_plausible=("a.z.b",))
        assert query.final_intent(["a.x.b"]) == {"a.x.b"}
        assert query.final_intent(["a.x.b", "a.z.b"]) == {"a.x.b", "a.z.b"}

    def test_idiosyncratic_intent_survives_even_if_never_returned(self):
        query = make_query(intended=("a.x.b", "weird.path.b"))
        assert "weird.path.b" in query.final_intent(["a.x.b"])


class TestOracle:
    def test_lookup_by_id(self):
        oracle = DesignerOracle([make_query("q1"), make_query("q2")])
        assert oracle.query("q2").query_id == "q2"
        with pytest.raises(KeyError):
            oracle.query("q9")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            DesignerOracle([make_query("q1"), make_query("q1")])

    def test_iteration_and_len(self):
        oracle = DesignerOracle([make_query("q1"), make_query("q2")])
        assert len(oracle) == 2
        assert [q.query_id for q in oracle] == ["q1", "q2"]

    def test_intended_union(self):
        oracle = DesignerOracle(
            [
                make_query("q1", intended=("p1",)),
                make_query("q2", intended=("p2", "p3")),
            ]
        )
        assert oracle.intended_union() == {"p1", "p2", "p3"}
