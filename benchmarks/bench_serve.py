"""Bench E7 — end-to-end serving latency through the resilient tier.

Boots a real :class:`~repro.serve.app.ServingTier` in a background
thread — asyncio front end, admission queue, executor pool, per-request
metrics — and measures what a caller of ``POST /v1/complete`` actually
experiences:

* *cold*: the first completion of each expression (engine traversal
  plus HTTP overhead);
* *warm*: repeated completions answered from the artifact's completion
  cache (p50/p95 over many requests — the steady-state serving cost);
* *overhead*: warm serving latency vs calling
  :meth:`Disambiguator.complete` directly in-process, i.e. what the
  HTTP/admission/executor stack costs on top of the engine.

The tier must return byte-identical ranked paths to the direct engine
call — the benchmark asserts it, so the numbers can't come from a
server quietly serving something cheaper.

Results land in ``BENCH_serve.json`` at the repo root and in the
``BENCH_history.jsonl`` perf ledger (gated by
``python -m repro.obs.perf compare`` in CI).  Set ``BENCH_QUICK=1``
for a fast smoke-sized run.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import time

import pytest

from benchmarks.conftest import emit, record_bench
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.serve import ServeConfig, ServeClient, ServingTier, TenantRegistry
from repro.resilience.retry import RetryPolicy

_ROOT = pathlib.Path(__file__).parent.parent
_RESULT_FILE = _ROOT / "BENCH_serve.json"

QUICK = os.environ.get("BENCH_QUICK") == "1"
WARM_REQUESTS = 40 if QUICK else 200

EXPRESSIONS = [
    "ta ~ name",
    "student.take.teacher",
    "student ~ dept",
    "teacher ~ name",
]


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


@pytest.mark.benchmark(group="serving")
def test_serving_latency(university):
    tenants = TenantRegistry(max_cache_bytes=64 * 1024 * 1024)
    tenants.add("university", CompiledSchema(university))
    tier = ServingTier(
        tenants,
        config=ServeConfig(queue_limit=64, workers=4),
    )
    tier.run_in_thread()
    try:
        host, port = tier.address
        client = ServeClient(
            host, port, policy=RetryPolicy(max_attempts=3, base_delay=0.05)
        )

        # -- cold: first completion of each expression ------------------
        cold_ms: dict[str, float] = {}
        for expression in EXPRESSIONS:
            started = time.perf_counter()
            response = client.complete(expression)
            cold_ms[expression] = (time.perf_counter() - started) * 1000.0
            assert response.status == 200, response.body

        # -- warm: cache-hit serving, p50/p95 ---------------------------
        warm_ms: list[float] = []
        for index in range(WARM_REQUESTS):
            expression = EXPRESSIONS[index % len(EXPRESSIONS)]
            started = time.perf_counter()
            response = client.complete(expression)
            warm_ms.append((time.perf_counter() - started) * 1000.0)
            assert response.status == 200

        p50 = _percentile(warm_ms, 0.50)
        p95 = _percentile(warm_ms, 0.95)

        # -- fidelity: served answers == direct engine answers ----------
        reference = Disambiguator(CompiledSchema(university))
        for expression in EXPRESSIONS:
            served = client.complete(expression)
            expected = [str(p) for p in reference.complete(expression).paths]
            assert served.json["paths"] == expected, expression

        # -- overhead vs in-process completion --------------------------
        engine = tenants.get("university").engine(1)
        direct_ms: list[float] = []
        for index in range(WARM_REQUESTS):
            expression = EXPRESSIONS[index % len(EXPRESSIONS)]
            started = time.perf_counter()
            engine.complete(expression)
            direct_ms.append((time.perf_counter() - started) * 1000.0)
        direct_p50 = _percentile(direct_ms, 0.50)
    finally:
        tier.stop(drain=True)

    record_bench(
        "serve.warm_p50", p50 / 1000.0, queue_limit=64, workers=4
    )
    record_bench(
        "serve.warm_p95", p95 / 1000.0, queue_limit=64, workers=4
    )

    record = {
        "quick": QUICK,
        "warm_requests": WARM_REQUESTS,
        "cold_ms": {k: round(v, 3) for k, v in cold_ms.items()},
        "warm_p50_ms": round(p50, 3),
        "warm_p95_ms": round(p95, 3),
        "warm_mean_ms": round(statistics.fmean(warm_ms), 3),
        "direct_p50_ms": round(direct_p50, 4),
        "http_overhead_p50_ms": round(p50 - direct_p50, 3),
    }
    _RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")

    lines = [
        f"warm p50 {p50:.3f} ms   p95 {p95:.3f} ms"
        f"   ({WARM_REQUESTS} requests, 4 workers)",
        f"direct engine p50 {direct_p50:.4f} ms"
        f"   -> HTTP/admission overhead ~{p50 - direct_p50:.3f} ms",
        "cold first-requests: "
        + ", ".join(f"{v:.1f}ms" for v in cold_ms.values()),
    ]
    emit("Serving tier: end-to-end completion latency", "\n".join(lines))
