"""Property tests: incremental maintenance equals from-scratch rebuilds.

Random edit scripts over generated schemas (seeds 0-3) drive the two
contracts of the delta layer:

* the incrementally maintained :class:`SchemaClosure` (reach matrix and
  every warm per-target table) is field-for-field equal to a closure
  built from scratch over the evolved graph after every step;
* completions served by an evolved :class:`CompiledSchema` — including
  entries carried across the delta by the support-set test — are
  byte-identical to a cold compile of the final schema, at E=1..3, in
  both pruning modes.

The incremental mode is passed explicitly so the suite still tests the
patching path under CI's ``REPRO_DELTA=rebuild`` matrix leg.
"""

import random

import pytest

from repro.core.closure import SchemaClosure, _target_from_cache_key
from repro.core.compiled import CompiledSchema, invalidate
from repro.core.target import RelationshipTarget
from repro.model.delta import (
    AddClass,
    AddInheritanceEdge,
    AddRelationship,
    RemoveClass,
    RemoveRelationship,
    SchemaDelta,
)
from repro.model.graph import SchemaGraph
from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship
from repro.schemas.generator import GeneratorConfig, generate_schema

SEEDS = (0, 1, 2, 3)
STEPS = 8
E_VALUES = (1, 2, 3)


@pytest.fixture(autouse=True)
def clean_global_caches():
    invalidate()
    yield
    invalidate()
    SchemaClosure.clear_cache()


class EditScript:
    """Generates applicable random deltas against a live schema."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.counter = 0

    def fresh_name(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}_{self.counter:03d}"

    def random_delta(self, schema) -> SchemaDelta:
        """One delta of 1-3 commands, each applicable in sequence."""
        work = schema.copy()
        commands = []
        for _ in range(self.rng.randint(1, 3)):
            command = self._random_command(work)
            if command is None:
                continue
            try:
                command.apply_to(work)
                work.validate()
            except Exception:
                continue  # e.g. an Isa edge that would close a cycle
            commands.append(command)
        if not commands:
            commands = [AddClass(self.fresh_name("fz"))]
            commands[0].apply_to(work)
        return SchemaDelta.of(*commands)

    def _random_command(self, schema):
        user_classes = [c.name for c in schema.classes(False)]
        kind = self.rng.choice(
            ("add_class", "add_edge", "add_attr", "add_isa",
             "remove_rel", "remove_class")
        )
        if kind == "add_class":
            return AddClass(self.fresh_name("fz"))
        if kind == "add_edge":
            source, target = self.rng.choices(user_classes, k=2)
            return AddRelationship(
                Relationship(
                    source,
                    target,
                    self.rng.choice(
                        (
                            RelationshipKind.IS_ASSOCIATED_WITH,
                            RelationshipKind.HAS_PART,
                            RelationshipKind.IS_PART_OF,
                        )
                    ),
                    name=self.fresh_name("edge"),
                )
            )
        if kind == "add_attr":
            return AddRelationship(
                Relationship(
                    self.rng.choice(user_classes),
                    self.rng.choice(("I", "R", "C", "B")),
                    RelationshipKind.IS_ASSOCIATED_WITH,
                    name=self.fresh_name("attr"),
                )
            )
        if kind == "add_isa":
            sub, sup = self.rng.sample(user_classes, 2)
            return AddInheritanceEdge(sub, sup)
        if kind == "remove_rel":
            rels = schema.relationships()
            if not rels:
                return None
            return RemoveRelationship(self.rng.choice(rels))
        # remove_class: only isolated classes are removable.
        isolated = [
            name
            for name in user_classes
            if not schema.relationships_from(name)
            and not schema.relationships_into(name)
        ]
        if not isolated:
            return None
        return RemoveClass(self.rng.choice(isolated))


def small_schema(seed: int):
    return generate_schema(GeneratorConfig(classes=14, seed=seed))


def assert_closures_equal(evolved: SchemaClosure, scratch: SchemaClosure):
    assert evolved.nodes == scratch.nodes
    assert evolved.index == scratch.index
    assert list(evolved.reach) == list(scratch.reach)
    for key, tables in evolved._tables.items():
        expected = scratch.tables_for(_target_from_cache_key(key))
        if tables is None or expected is None:
            assert tables == expected
            continue
        assert tables.reach_mask == expected.reach_mask, key
        assert tables.rows == expected.rows, key
        assert tables.conns == expected.conns, key
        assert tables.completing == expected.completing, key
        assert tables.interior == expected.interior, key
        assert tables.reach_pruned == expected.reach_pruned, key


@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_closure_matches_scratch(seed):
    rng = random.Random(seed)
    script = EditScript(rng)
    schema = small_schema(seed)
    graph = SchemaGraph(schema)
    closure = SchemaClosure(graph)
    _ = closure.reach
    for step in range(STEPS):
        # Keep a couple of target tables warm so table repair is always
        # exercised (relationship names drift as edits accumulate).
        names = sorted({rel.name for rel in schema.relationships()})
        for name in rng.sample(names, min(3, len(names))):
            closure.tables_for(RelationshipTarget(name))
        delta = script.random_delta(schema)
        evolved_schema = schema.copy()
        evolved_schema.apply(delta)
        new_graph = graph.evolved(evolved_schema, delta.touched_classes())
        evolved = closure.evolved(new_graph)
        SchemaClosure.clear_cache()  # cold rebuild must not see the evolved one
        scratch = SchemaClosure(new_graph)
        assert_closures_equal(evolved, scratch)
        schema, graph, closure = evolved_schema, new_graph, evolved


def snapshot(result):
    return (
        tuple(str(path) for path in result.paths),
        tuple(str(label) for label in result.labels),
        result.exhausted,
    )


@pytest.mark.parametrize("pruning", ("none", "closure"))
@pytest.mark.parametrize("seed", SEEDS)
def test_evolved_completions_match_cold_compile(seed, pruning):
    rng = random.Random(1000 + seed)
    script = EditScript(rng)
    compiled = CompiledSchema(small_schema(seed))
    for step in range(4):
        # Warm the cache on the current artifact so carried entries are
        # part of what the next step serves.
        roots = [c.name for c in compiled.schema.classes(False)]
        names = sorted({rel.name for rel in compiled.schema.relationships()})
        queries = [
            (rng.choice(roots), rng.choice(names)) for _ in range(4)
        ]
        for root, name in queries:
            compiled.complete_simple(root, name, e=1, pruning=pruning)
        delta = script.random_delta(compiled.schema)
        compiled = compiled.evolve(delta, mode="incremental")
        SchemaClosure.clear_cache()
        cold = CompiledSchema(compiled.schema.copy())
        for e in E_VALUES:
            for root, name in queries:
                if not compiled.schema.has_class(root):
                    continue
                warm = compiled.complete_simple(root, name, e=e, pruning=pruning)
                reference = cold.complete_simple(root, name, e=e, pruning=pruning)
                assert snapshot(warm) == snapshot(reference), (
                    f"seed={seed} step={step} {root}~{name} e={e}"
                )
