"""Tests for completion targets."""

import pytest

from repro.core.ast import ConcretePath
from repro.core.parser import parse_path_expression
from repro.core.target import (
    ClassTarget,
    RelationshipTarget,
    is_consistent,
    target_for_expression,
)
from repro.errors import PathExpressionError


def _edge(graph, source, name):
    return next(e for e in graph.edges_from(source) if e.name == name)


class TestRelationshipTarget:
    def test_matches_edges_by_name(self, university_graph):
        target = RelationshipTarget("name")
        assert target.is_completing_edge(
            _edge(university_graph, "person", "name")
        )
        assert target.is_completing_edge(
            _edge(university_graph, "course", "name")
        )
        assert not target.is_completing_edge(
            _edge(university_graph, "student", "take")
        )

    def test_exists_in(self, university_graph):
        assert RelationshipTarget("name").exists_in(university_graph)
        assert not RelationshipTarget("ghost").exists_in(university_graph)


class TestClassTarget:
    def test_matches_edges_by_target_class(self, university_graph):
        target = ClassTarget("course")
        assert target.is_completing_edge(
            _edge(university_graph, "student", "take")
        )
        assert not target.is_completing_edge(
            _edge(university_graph, "ta", "grad")
        )

    def test_describe(self):
        assert "course" in ClassTarget("course").describe()
        assert "name" in RelationshipTarget("name").describe()


class TestTargetForExpression:
    def test_simple_incomplete(self):
        expression = parse_path_expression("ta ~ name")
        target = target_for_expression(expression)
        assert target.relationship_name == "name"

    def test_general_expression_rejected(self):
        expression = parse_path_expression("ta~take~name")
        with pytest.raises(PathExpressionError):
            target_for_expression(expression)


class TestConsistency:
    def test_paper_definition(self, university_graph):
        # consistent with ta ~ name: root is ta, last name is name
        path = ConcretePath.start("ta")
        for source, name in (
            ("ta", "grad"),
            ("grad", "student"),
            ("student", "person"),
            ("person", "name"),
        ):
            path = path.extend(_edge(university_graph, source, name))
        assert is_consistent(path, "ta", RelationshipTarget("name"))
        assert not is_consistent(path, "grad", RelationshipTarget("name"))
        assert not is_consistent(path, "ta", RelationshipTarget("take"))

    def test_empty_path_is_never_consistent(self):
        assert not is_consistent(
            ConcretePath.start("ta"), "ta", RelationshipTarget("name")
        )
