"""The process-pool batch backend — hand-off protocol and fallbacks.

The contract: ``executor="process"`` is a *transparent* escalation of
``complete_batch``/``prewarm``.  Results, ordering, exception choice,
and cache hygiene are identical to the thread backend; whenever the
hand-off cannot carry the ambient state (live tracer/audit/slow-log, a
budget with a cancel signal or injected clock), the backend declines —
``worker_spec_for`` returns ``None`` and the caller silently falls back
to threads — rather than degrade those semantics.

The end-to-end tests here spin up real worker processes (the pool
prefers ``fork``, so start cost is milliseconds on Linux); they assert
correctness, not speed — the speedup contract lives in
``benchmarks/bench_kernel.py`` where it can be gated by core count.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.core import compiled as compiled_mod
from repro.core.audit import SearchAuditLog, use_audit
from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.core.parallel import prewarm
from repro.core.procpool import (
    EXECUTOR_ENV_VAR,
    EXECUTOR_MODES,
    WorkerSpec,
    process_batch,
    resolve_executor,
    worker_spec_for,
)
from repro.errors import PathSyntaxError, ReproError
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.slowlog import SlowQueryLog, use_slowlog
from repro.obs.tracer import RecordingTracer, use_tracer
from repro.resilience.budget import Budget, CancelSignal, use_budget
from repro.serve.config import ServeConfig

QUERIES = [
    "ta ~ name",
    "student.take.teacher",
    "student ~ dept",
    "teacher ~ name",
]


def _fresh_engine(schema, **kwargs):
    compiled_mod.invalidate()
    return Disambiguator(CompiledSchema(schema), **kwargs)


def _snapshot(result):
    return (
        tuple(str(path) for path in result.paths),
        tuple(str(label) for label in result.labels),
        result.exhausted,
        result.truncation_reason,
    )


class TestResolveExecutor:
    def test_explicit_env_and_default(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert resolve_executor(None) == "thread"
        assert resolve_executor("process") == "process"
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "process")
        assert resolve_executor(None) == "process"
        assert resolve_executor("thread") == "thread"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="executor"):
            resolve_executor("greenlet")

    def test_serve_config_validates_executor(self):
        assert ServeConfig(executor="process").executor == "process"
        with pytest.raises(ValueError, match="executor"):
            ServeConfig(executor="fiber")


class TestWorkerSpec:
    def test_spec_is_picklable_and_rebuilds_the_budget(self, university):
        engine = _fresh_engine(university, e=2, max_depth=7)
        budget = Budget(
            max_seconds=1.5, max_nodes=100, partial_ok=True
        )
        spec = worker_spec_for(engine, budget)
        assert spec is not None
        clone = pickle.loads(pickle.dumps(spec))
        # Schemas compare by identity, not value; the scalar
        # configuration is what must survive the round-trip exactly.
        assert clone.e == spec.e
        assert clone.max_depth == spec.max_depth
        assert clone.pruning == spec.pruning
        assert clone.kernel == spec.kernel
        assert clone.budget_limits == spec.budget_limits
        assert clone.schema.name == spec.schema.name
        rebuilt = clone.build_budget()
        assert rebuilt.max_seconds == 1.5
        assert rebuilt.max_nodes == 100
        assert rebuilt.partial_ok is True
        assert rebuilt.clock is time.monotonic
        assert worker_spec_for(engine, None).build_budget() is None

    def test_spec_captures_engine_configuration(self, university):
        engine = _fresh_engine(
            university, e=3, use_caution_sets=False, kernel="flat"
        )
        spec = worker_spec_for(engine, None)
        assert spec.e == 3
        assert spec.use_caution_sets is False
        assert spec.kernel == "flat"
        assert spec.pruning == engine.pruning

    def test_live_observability_declines_the_handoff(self, university):
        engine = _fresh_engine(university)
        assert worker_spec_for(engine, None) is not None
        with use_tracer(RecordingTracer()):
            assert worker_spec_for(engine, None) is None
        with use_audit(SearchAuditLog()):
            assert worker_spec_for(engine, None) is None
        with use_slowlog(SlowQueryLog(threshold_ms=0.0)):
            assert worker_spec_for(engine, None) is None
        assert worker_spec_for(engine, None) is not None

    def test_parent_bound_budget_state_declines_the_handoff(
        self, university
    ):
        engine = _fresh_engine(university)
        cancellable = Budget(max_nodes=10, cancel=CancelSignal())
        assert worker_spec_for(engine, cancellable) is None
        fake_clock = Budget(max_seconds=1.0, clock=lambda: 0.0)
        assert worker_spec_for(engine, fake_clock) is None

    def test_declined_handoff_is_counted_and_threads_still_serve(
        self, university
    ):
        """process_batch → None under a tracer; complete_batch then
        falls back to the thread backend and still answers."""
        engine = _fresh_engine(university)
        with use_metrics(MetricsRegistry()) as metrics:
            with use_tracer(RecordingTracer()):
                assert process_batch(engine, QUERIES, jobs=2, budget=None) is None
                batch = engine.complete_batch(
                    QUERIES, jobs=2, executor="process"
                )
            assert metrics.counter("parallel.process_fallbacks").value >= 1
        assert [r.exhausted for r in batch.results] == [True] * len(QUERIES)


class TestProcessBatchEndToEnd:
    def test_results_match_sequential_and_cache_is_adopted(
        self, university
    ):
        reference = _fresh_engine(university)
        expected = [_snapshot(reference.complete(q)) for q in QUERIES]

        engine = _fresh_engine(university)
        batch = engine.complete_batch(QUERIES, jobs=2, executor="process")
        assert [_snapshot(r) for r in batch.results] == expected
        # Adoption: the parent cache now holds every completion, so a
        # rerun is served entirely warm — no worker dispatch, no misses.
        with use_metrics(MetricsRegistry()) as metrics:
            again = engine.complete_batch(QUERIES, jobs=2, executor="process")
            assert metrics.counter("cache.misses").value == 0
            assert metrics.counter("cache.hits").value == len(
                QUERIES
            )
        assert [_snapshot(r) for r in again.results] == expected

    def test_earliest_failing_input_in_submission_order(self, university):
        engine = _fresh_engine(university)
        inputs = [
            "ta ~ name",
            "zzz_first_bad ~ nope",
            "student.take.teacher",
            "zzz_second_bad ~ nope",
        ]
        for _ in range(3):
            with pytest.raises(ReproError) as exc:
                engine.complete_batch(inputs, jobs=2, executor="process")
            assert "zzz_first_bad" in str(exc.value)
            assert "zzz_second_bad" not in str(exc.value)

    def test_parse_errors_never_reach_the_pool(self, university):
        """A syntactically invalid input fails in the parent with the
        full PathSyntaxError context (that type carries source spans and
        is deliberately not shipped across the pickle boundary)."""
        engine = _fresh_engine(university)
        with pytest.raises(PathSyntaxError):
            engine.complete_batch(
                ["ta ~ name", "~~~nonsense~~~"], jobs=2, executor="process"
            )

    def test_truncated_worker_results_are_never_adopted(self, cupid):
        engine = _fresh_engine(cupid, e=2)
        budget = Budget(max_nodes=5, partial_ok=True)
        with use_budget(budget):
            batch = engine.complete_batch(
                ["experiment ~ conductance", "experiment ~ temperature"],
                jobs=2,
                executor="process",
            )
        assert any(not r.exhausted for r in batch.results)
        # Exhausted results may be adopted; truncated ones never are.
        for _, value in engine.compiled.cache.entries():
            assert value.exhausted, value.truncation_reason

    def test_flat_kernel_crosses_the_boundary(self, university):
        """kernel='flat' engines shard like interpreted ones — the spec
        carries the knob and workers honor it."""
        reference = _fresh_engine(university)
        expected = [_snapshot(reference.complete(q)) for q in QUERIES]
        engine = _fresh_engine(university, kernel="flat")
        batch = engine.complete_batch(QUERIES, jobs=2, executor="process")
        assert [_snapshot(r) for r in batch.results] == expected

    def test_env_knob_selects_the_process_backend(
        self, university, monkeypatch
    ):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "process")
        engine = _fresh_engine(university)
        batch = engine.complete_batch(QUERIES, jobs=2)
        assert [r.exhausted for r in batch.results] == [True] * len(QUERIES)
        assert len(engine.compiled.cache) == len(QUERIES)


class TestPrewarm:
    def test_prewarm_dedupes_repeated_expressions(self, university):
        """Satellite: a prewarm list with duplicates completes each
        distinct expression once — both backends."""
        for executor in EXECUTOR_MODES:
            engine = _fresh_engine(university)
            with use_metrics(MetricsRegistry()) as metrics:
                warmed = prewarm(
                    engine,
                    ["ta ~ name", "ta ~ name", "student ~ dept", "ta ~ name"],
                    jobs=2,
                    executor=executor,
                )
                misses = metrics.counter("cache.misses").value
            assert warmed == 2, executor
            assert len(engine.compiled.cache) == 2, executor
            # Thread backend: each unique expression computed exactly
            # once in-parent.  (Worker-side metrics stay in the worker,
            # so the process assertion is the cache shape above.)
            if executor == "thread":
                assert misses == 2

    def test_prewarm_process_warms_the_parent_cache(self, university):
        engine = _fresh_engine(university)
        warmed = prewarm(engine, QUERIES, jobs=2, executor="process")
        assert warmed == len(QUERIES)
        assert len(engine.compiled.cache) == len(QUERIES)
        # Everything is now a warm hit for the sequential path.
        with use_metrics(MetricsRegistry()) as metrics:
            for query in QUERIES:
                assert engine.complete(query).exhausted
            assert metrics.counter("cache.misses").value == 0
