"""End-to-end behaviour of the serving tier over real sockets."""

import json

import pytest

from repro.core.compiled import CompiledSchema
from repro.core.engine import Disambiguator
from repro.model.instances import Database
from repro.serve import ServeConfig
from repro.serve.config import ServeConfig as _ServeConfig

from tests.serve.conftest import make_tier, raw_client


class TestComplete:
    def test_paths_match_direct_engine_byte_for_byte(
        self, university_client, university
    ):
        """The acceptance contract: the HTTP answer is the engine's
        answer — same paths, same ranking, rendered identically."""
        direct = Disambiguator(university).complete("ta ~ name")
        response = university_client.complete("ta ~ name")
        assert response.status == 200
        assert response.json["paths"] == [str(p) for p in direct.paths]
        assert response.json["labels"] == [str(l) for l in direct.labels]
        assert response.json["exhausted"] is True

    def test_repeat_requests_are_cache_hits(self, university_client):
        first = university_client.complete("ta ~ name")
        second = university_client.complete("ta ~ name")
        assert first.json["paths"] == second.json["paths"]
        assert second.json["stats"]["cache_hits"] >= 1

    def test_budget_tripped_request_returns_206(self, university_client):
        response = university_client.complete("ta ~ name", max_nodes=1)
        assert response.status == 206
        assert response.json["exhausted"] is False
        assert response.json["truncation_reason"]

    def test_e_parameter_is_honoured(self, university_client):
        response = university_client.complete("ta ~ name", e=2)
        assert response.status == 200
        assert response.json["e"] == 2

    def test_invalid_expression_is_400_with_kind(self, university_client):
        response = university_client.complete("student.ghost")
        assert response.status == 400
        assert "kind" in response.json

    def test_unknown_tenant_is_404(self, university_client):
        response = university_client.complete("ta ~ name", tenant="ghost")
        assert response.status == 404
        assert "ghost" in response.json["error"]

    def test_bad_deadline_header_is_400(self, university_client):
        response = university_client.request(
            "POST",
            "/v1/complete",
            {"expression": "ta ~ name"},
            {"X-Deadline-Ms": "soon"},
        )
        assert response.status == 400

    def test_missing_expression_is_400(self, university_client):
        response = university_client.request(
            "POST", "/v1/complete", {"tenant": "university"}
        )
        assert response.status == 400

    def test_single_tenant_is_the_default(self, university_client):
        response = university_client.complete("ta ~ name")
        assert response.json["tenant"] == "university"


class TestRouting:
    def test_unknown_route_is_404(self, university_client):
        assert university_client.request("GET", "/nope").status == 404

    def test_wrong_method_is_405(self, university_client):
        assert (
            university_client.request("GET", "/v1/complete").status == 405
        )
        assert university_client.request("POST", "/healthz").status == 405

    def test_schemas_lists_tenants(self, university_client):
        response = university_client.schemas()
        assert response.status == 200
        (entry,) = response.json["tenants"]
        assert entry["tenant"] == "university"
        assert entry["classes"] > 0
        assert entry["has_database"] is False

    def test_healthz_reports_serving_state(self, university_client):
        response = university_client.healthz()
        assert response.status == 200
        serving = response.json["serving"]
        assert serving["state"] == "serving"
        assert serving["tenants"] == ["university"]
        assert serving["pending"] == 0


class TestMultiTenant:
    def test_tenant_must_be_named_when_ambiguous(
        self, university, cupid
    ):
        tier = make_tier({"university": university, "cupid": cupid})
        try:
            client = raw_client(tier)
            response = client.complete("ta ~ name")
            assert response.status == 400
            assert "tenant" in response.json["error"]
            named = client.complete("ta ~ name", tenant="university")
            assert named.status == 200
        finally:
            tier.stop(drain=False)


class TestObservability:
    def test_metrics_are_labelled_per_route_and_status(
        self, university_client
    ):
        university_client.complete("ta ~ name")
        university_client.complete("student.ghost")  # 400
        text = university_client.metrics_text()
        assert (
            'repro_serve_requests_total{route="POST /v1/complete",'
            'status="200"}' in text
        )
        assert (
            'repro_serve_requests_total{route="POST /v1/complete",'
            'status="400"}' in text
        )
        assert 'repro_serve_latency_ms' in text

    def test_every_request_leaves_a_slowlog_entry(
        self, university_tier, university_client
    ):
        university_client.complete("ta ~ name")
        university_client.complete("ta ~ name", e=2)
        entries = university_tier.slowlog.entries()
        served = [e for e in entries if e.kind == "serve.complete"]
        assert len(served) == 2
        assert all(e.query == "ta ~ name" for e in served)

    def test_engine_metrics_land_in_the_tier_registry(
        self, university_tier, university_client
    ):
        university_client.complete("ta ~ name")
        summary = university_tier.metrics.as_dict()
        assert summary["counters"].get("completions", 0) >= 1


class TestQuery:
    def test_query_against_tenant_database(self, university):
        database = Database(university)
        student = database.create("student")
        database.set_attribute(student, "name", "Ana")
        tier = make_tier(
            {"university": university},
            databases={"university": database},
        )
        try:
            client = raw_client(tier)
            response = client.query("get ta ~ name")
            assert response.status == 200
            assert response.json["completions"]
            assert isinstance(response.json["values"], list)
        finally:
            tier.stop(drain=False)

    def test_query_without_database_is_400(self, university_client):
        response = university_client.query("get ta ~ name")
        assert response.status == 400
        assert "database" in response.json["error"]


class TestKeepAliveConnections:
    def test_many_requests_share_one_connection(self, university_tier):
        import http.client

        host, port = university_tier.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for _ in range(3):
                connection.request(
                    "POST",
                    "/v1/complete",
                    body=json.dumps({"expression": "ta ~ name"}),
                )
                raw = connection.getresponse()
                payload = json.loads(raw.read())
                assert raw.status == 200
                assert payload["paths"]
        finally:
            connection.close()


class TestConfigValidation:
    def test_rejects_nonpositive_queue(self):
        with pytest.raises(ValueError):
            _ServeConfig(queue_limit=0)

    def test_rejects_default_deadline_above_max(self):
        with pytest.raises(ValueError):
            _ServeConfig(default_deadline_ms=20_000.0)

    def test_header_deadline_is_clamped_to_max(self):
        config = ServeConfig(max_deadline_ms=2000.0)
        budget = config.budget_for({"x-deadline-ms": "999999"})
        assert budget.max_seconds == pytest.approx(2.0)

    def test_header_max_nodes_is_parsed(self):
        budget = ServeConfig().budget_for({"x-max-nodes": "77"})
        assert budget.max_nodes == 77
        assert budget.partial_ok is True
