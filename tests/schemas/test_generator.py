"""Tests for the random schema generator."""

import pytest

from repro.model.kinds import RelationshipKind
from repro.schemas.generator import GeneratorConfig, generate_schema


class TestDeterminism:
    def test_same_seed_same_schema(self):
        first = generate_schema(GeneratorConfig(classes=20, seed=7))
        second = generate_schema(GeneratorConfig(classes=20, seed=7))
        assert sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in first.relationships()
        ) == sorted(
            (r.source, r.name, r.target, r.kind.symbol)
            for r in second.relationships()
        )

    def test_different_seeds_differ(self):
        first = generate_schema(GeneratorConfig(classes=20, seed=0))
        second = generate_schema(GeneratorConfig(classes=20, seed=1))
        assert sorted(
            (r.source, r.name, r.target) for r in first.relationships()
        ) != sorted(
            (r.source, r.name, r.target) for r in second.relationships()
        )


class TestShape:
    @pytest.mark.parametrize("classes", [5, 25, 60])
    def test_class_count_honored(self, classes):
        schema = generate_schema(GeneratorConfig(classes=classes, seed=0))
        # base_* superclass layer adds isa_fraction extra classes
        expected_supers = int(classes * 0.25)
        assert schema.user_class_count == classes + expected_supers

    def test_part_tree_spans_all_core_classes(self):
        schema = generate_schema(GeneratorConfig(classes=30, seed=3))
        part_edges = [
            r
            for r in schema.relationships()
            if r.kind is RelationshipKind.HAS_PART
        ]
        assert len(part_edges) == 29  # a tree over 30 nodes

    def test_schema_validates(self):
        for seed in range(3):
            schema = generate_schema(GeneratorConfig(classes=15, seed=seed))
            assert schema.validate() == []

    def test_label_attribute_present_for_queries(self):
        schema = generate_schema(GeneratorConfig(classes=30, seed=0))
        assert schema.relationships_named("label")

    def test_too_few_classes_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(classes=1)


class TestCompletability:
    def test_generated_schemas_support_completion(self):
        from repro.core.completion import complete_paths
        from repro.core.target import RelationshipTarget
        from repro.model.graph import SchemaGraph

        schema = generate_schema(GeneratorConfig(classes=20, seed=2))
        graph = SchemaGraph(schema)
        result = complete_paths(
            graph, "cls_000", RelationshipTarget("label")
        )
        assert all(path.is_acyclic for path in result.paths)
