"""Deterministic, seeded fault injection for chaos testing.

The resilience contract — budgets trip cleanly, truncated results never
reach the completion cache, sessions and experiment runners survive
mid-traversal failures — is only trustworthy if it is *exercised*.
This module wraps the three dependencies the completion pipeline leans
on and makes each one misbehave on a deterministic schedule:

* :class:`FaultyGraph` — proxies a
  :class:`~repro.model.graph.SchemaGraph`; ``edges_from`` can raise
  :class:`~repro.errors.InjectedFaultError` mid-traversal and/or add
  latency by advancing a :class:`FakeClock` (so deadline trips are
  reproducible without real sleeping);
* :class:`FaultyCache` — proxies a
  :class:`~repro.core.compiled.CompletionCache`; lookups can be forced
  to miss and stores can be silently dropped (a cache is a *cache* —
  the pipeline must stay correct when it degrades to a no-op);
* :class:`FakeClock` — a callable virtual monotonic clock, pluggable as
  ``Budget.clock``.

Everything is driven by a :class:`FaultPlan` holding one
``random.Random(seed)`` stream, so a failing chaos test reproduces from
its seed alone.  :func:`inject` rewires an existing
:class:`~repro.core.compiled.CompiledSchema` in place (graph, cache,
and memoized searchers) and returns a restore handle.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING

from repro.errors import InjectedFaultError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.compiled import CompiledSchema
    from repro.model.graph import SchemaEdge, SchemaGraph

__all__ = [
    "FakeClock",
    "FaultPlan",
    "FaultyCache",
    "FaultyGraph",
    "inject",
]


class FakeClock:
    """A virtual monotonic clock.

    Calling the instance returns the current virtual time, so it plugs
    directly into ``Budget(clock=...)``; :meth:`advance` moves time
    forward (time never goes backward, matching a monotonic clock).
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot move a monotonic clock back {seconds!r}")
        self.now += seconds
        return self.now

    def __repr__(self) -> str:
        return f"FakeClock(now={self.now:g})"


@dataclasses.dataclass
class FaultPlan:
    """A seeded schedule of injected failures and latency.

    Rates are per-call probabilities drawn from one ``Random(seed)``
    stream; a plan with the same seed and the same call sequence
    injects identically.  ``clock`` (when set) is advanced by
    ``edge_latency``/``cache_latency`` on each wrapped call, simulating
    slow storage against a virtual deadline.

    ``armed_after`` delays injection by that many wrapped calls — used
    to let a traversal get provably *mid-way* before the first fault.
    """

    seed: int = 0
    edge_fail_rate: float = 0.0
    edge_latency: float = 0.0
    cache_miss_rate: float = 0.0
    cache_drop_rate: float = 0.0
    cache_latency: float = 0.0
    clock: FakeClock | None = None
    armed_after: int = 0

    def __post_init__(self) -> None:
        for name in ("edge_fail_rate", "cache_miss_rate", "cache_drop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.edge_latency < 0 or self.cache_latency < 0:
            raise ValueError("latencies must be >= 0")
        self._random = random.Random(self.seed)
        self._calls = 0
        self.injected: list[str] = []

    # -- the injection stream ------------------------------------------

    def _tick(self, latency: float) -> bool:
        """Advance latency/armed counters; True when injection is live."""
        self._calls += 1
        if self.clock is not None and latency:
            self.clock.advance(latency)
        return self._calls > self.armed_after

    def should_fail_edge(self) -> bool:
        live = self._tick(self.edge_latency)
        if live and self.edge_fail_rate and (
            self._random.random() < self.edge_fail_rate
        ):
            self.injected.append("graph.edges_from")
            return True
        return False

    def should_miss_cache(self) -> bool:
        live = self._tick(self.cache_latency)
        if live and self.cache_miss_rate and (
            self._random.random() < self.cache_miss_rate
        ):
            self.injected.append("cache.get")
            return True
        return False

    def should_drop_put(self) -> bool:
        live = self._tick(self.cache_latency)
        if live and self.cache_drop_rate and (
            self._random.random() < self.cache_drop_rate
        ):
            self.injected.append("cache.put")
            return True
        return False

    @property
    def injection_count(self) -> int:
        return len(self.injected)


class FaultyGraph:
    """A :class:`~repro.model.graph.SchemaGraph` proxy with scheduled
    ``edges_from`` failures and latency.

    Only the traversal-facing adjacency read is intercepted; every
    other attribute (``schema``, ``nodes``, ``fingerprint``, ...)
    delegates to the wrapped graph, so the proxy drops into
    :class:`~repro.core.completion.CompletionSearch` unchanged.
    """

    def __init__(self, graph: "SchemaGraph", plan: FaultPlan) -> None:
        self._graph = graph
        self._plan = plan

    def edges_from(self, node: str) -> "list[SchemaEdge]":
        if self._plan.should_fail_edge():
            raise InjectedFaultError(
                "graph.edges_from", f"adjacency read for {node!r}"
            )
        return self._graph.edges_from(node)

    def __getattr__(self, name: str):
        return getattr(self._graph, name)

    def __repr__(self) -> str:
        return f"FaultyGraph({self._graph!r}, injected={self._plan.injection_count})"


class FaultyCache:
    """A :class:`~repro.core.compiled.CompletionCache` proxy that can
    forget: scheduled lookup misses and dropped stores.

    Deliberately *not* able to raise — the cache contract downstream is
    "may lose entries, never lies" — so chaos runs distinguish degraded
    performance (this wrapper) from hard faults (:class:`FaultyGraph`).
    """

    def __init__(self, cache, plan: FaultPlan) -> None:
        self._cache = cache
        self._plan = plan

    def get(self, key: tuple):
        if self._plan.should_miss_cache():
            return None
        return self._cache.get(key)

    def put(self, key: tuple, value) -> None:
        if self._plan.should_drop_put():
            return
        self._cache.put(key, value)

    def __getattr__(self, name: str):
        return getattr(self._cache, name)

    def __len__(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:
        return f"FaultyCache({self._cache!r}, injected={self._plan.injection_count})"


class _Injection:
    """Restore handle returned by :func:`inject` (context manager)."""

    def __init__(self, compiled: "CompiledSchema", plan: FaultPlan) -> None:
        self.compiled = compiled
        self.plan = plan
        self._graph = compiled.graph
        self._cache = compiled.cache

    def restore(self) -> None:
        self.compiled.graph = self._graph
        self.compiled.cache = self._cache
        self.compiled._searches.clear()

    def __enter__(self) -> FaultPlan:
        return self.plan

    def __exit__(self, *exc_info: object) -> None:
        self.restore()


def inject(compiled: "CompiledSchema", plan: FaultPlan) -> _Injection:
    """Rewire a compiled artifact's graph and cache through ``plan``.

    Memoized searchers are cleared so every search built afterwards
    traverses the faulty graph.  Use as a context manager (or call
    ``.restore()``) to undo — shared registry artifacts must not leak
    faults into other tests::

        with inject(compiled, FaultPlan(seed=7, edge_fail_rate=0.05)):
            ...  # chaos

    The artifact is mutated in place; do not use on an artifact other
    sessions are concurrently querying.
    """
    handle = _Injection(compiled, plan)
    compiled.graph = FaultyGraph(compiled.graph, plan)
    compiled.cache = FaultyCache(compiled.cache, plan)
    compiled._searches.clear()
    return handle
