"""Bench E8 — the cost of request-scoped observability in the tier.

Boots the serving tier twice against the same schema and measures warm
``POST /v1/complete`` latency through a real socket:

* *off*: access log disabled, trace sampling off — the configuration
  the <5%-overhead contract is stated against;
* *traced*: the access log on plus ``trace_sample_rate=0.1`` (seeded),
  the shipping observability posture.

Both series land in the ``BENCH_history.jsonl`` ledger (gated by
``python -m repro.obs.perf compare`` in CI), and the traced tier's
telemetry is exported as validated artifacts: ``BENCH_access.jsonl``
(the structured access log) and ``BENCH_slo.json`` (the SLO burn-rate
payload straight off ``GET /v1/debug``).  Every exported record is
validated in-bench against the checked-in schemas — an artifact that
does not validate fails the benchmark, not just the downstream CI step.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from benchmarks.conftest import emit, record_bench
from repro.core.compiled import CompiledSchema
from repro.obs.schema import validate_access_records, validate_slo_status
from repro.resilience.retry import RetryPolicy
from repro.serve import ServeClient, ServeConfig, ServingTier, TenantRegistry

_ROOT = pathlib.Path(__file__).parent.parent
_ACCESS_FILE = _ROOT / "BENCH_access.jsonl"
_SLO_FILE = _ROOT / "BENCH_slo.json"

QUICK = os.environ.get("BENCH_QUICK") == "1"
WARM_REQUESTS = 40 if QUICK else 200

EXPRESSIONS = [
    "ta ~ name",
    "student.take.teacher",
    "student ~ dept",
    "teacher ~ name",
]


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _measure(university, config: ServeConfig):
    """(p50_ms, p95_ms, tier-snapshot dict) for warm serving latency."""
    tenants = TenantRegistry(max_cache_bytes=64 * 1024 * 1024)
    tenants.add("university", CompiledSchema(university))
    tier = ServingTier(tenants, config=config)
    tier.run_in_thread()
    try:
        host, port = tier.address
        client = ServeClient(
            host, port, policy=RetryPolicy(max_attempts=3, base_delay=0.05)
        )
        for expression in EXPRESSIONS:  # warm the completion cache
            assert client.complete(expression).status == 200
        samples: list[float] = []
        for index in range(WARM_REQUESTS):
            expression = EXPRESSIONS[index % len(EXPRESSIONS)]
            started = time.perf_counter()
            response = client.complete(expression)
            samples.append((time.perf_counter() - started) * 1000.0)
            assert response.status == 200
        snapshot = {
            "access_records": tier.access_log.records(),
            "sampler": tier.sampler.stats(),
            "slo": client.debug().json["slo"],
            "slowlog_retained": len(tier.slowlog.entries()),
        }
        return (
            _percentile(samples, 0.50),
            _percentile(samples, 0.95),
            snapshot,
        )
    finally:
        tier.stop(drain=True)


@pytest.mark.benchmark(group="serving")
def test_observability_overhead(university):
    off_p50, off_p95, _ = _measure(
        university,
        ServeConfig(
            queue_limit=64,
            workers=4,
            access_log=False,
            trace_sample_rate=0.0,
        ),
    )
    traced_p50, traced_p95, snapshot = _measure(
        university,
        ServeConfig(
            queue_limit=64,
            workers=4,
            access_log=True,
            trace_sample_rate=0.1,
            trace_sample_seed=42,
        ),
    )

    # -- export + validate the traced tier's telemetry -----------------
    records = snapshot["access_records"]
    assert len(records) >= WARM_REQUESTS
    validate_access_records(records)
    with open(_ACCESS_FILE, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    slo_payload = snapshot["slo"]
    validate_slo_status(slo_payload)
    _SLO_FILE.write_text(json.dumps(slo_payload, indent=2) + "\n")

    sampled = snapshot["sampler"]["sampled"]
    assert sampled > 0, "0.1 sampling over the run picked nothing"
    assert snapshot["slowlog_retained"] >= 1

    record_bench(
        "serve.obs_off_p50", off_p50 / 1000.0, queue_limit=64, workers=4
    )
    record_bench(
        "serve.obs_off_p95", off_p95 / 1000.0, queue_limit=64, workers=4
    )
    record_bench(
        "serve.traced_p50",
        traced_p50 / 1000.0,
        sample_rate=0.1,
        queue_limit=64,
        workers=4,
    )
    record_bench(
        "serve.traced_p95",
        traced_p95 / 1000.0,
        sample_rate=0.1,
        queue_limit=64,
        workers=4,
    )

    # Loose in-run sanity bound (the tight cross-run bound is the perf
    # ledger's job): tracing a tenth of requests plus logging all of
    # them must not blow serving latency up wholesale.
    ratio = traced_p50 / off_p50 if off_p50 > 0 else 1.0
    assert ratio < 3.0, f"traced p50 {ratio:.2f}x the untraced p50"

    lines = [
        f"off:    p50 {off_p50:.3f} ms   p95 {off_p95:.3f} ms"
        f"   (no access log, no sampling)",
        f"traced: p50 {traced_p50:.3f} ms   p95 {traced_p95:.3f} ms"
        f"   (access log + 10% head sampling)",
        f"overhead: p50 {ratio:.2f}x"
        f"   sampled {sampled}/{snapshot['sampler']['decisions']}"
        f"   slowlog retained {snapshot['slowlog_retained']}",
        f"artifacts: {len(records)} access records -> {_ACCESS_FILE.name},"
        f" slo state {slo_payload['state']!r} -> {_SLO_FILE.name}",
    ]
    emit(
        "Serving observability: request-scoped telemetry overhead",
        "\n".join(lines),
    )
