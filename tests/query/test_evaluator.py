"""Tests for path-expression evaluation over instances."""

import pytest

from repro.errors import EvaluationError
from repro.model.instances import Database
from repro.query.evaluator import evaluate, evaluate_from


@pytest.fixture()
def db(university):
    """A small populated university database."""
    db = Database(university)
    alice = db.create("student")
    bob = db.create("ta")
    carol = db.create("professor")
    cs101 = db.create("course")
    cs202 = db.create("course")
    art = db.create("department")

    db.set_attribute(alice, "name", "alice")
    db.set_attribute(bob, "name", "bob")
    db.set_attribute(carol, "name", "carol")
    db.set_attribute(cs101, "name", "cs101")
    db.set_attribute(art, "name", "arts")

    db.link(alice, "take", cs101)
    db.link(bob, "take", cs202)
    db.link(carol, "teach", cs101)
    db.link(bob, "teach", cs202)  # bob the TA also teaches
    db.link(art, "professor", carol)
    db.link(alice, "department", art)
    return db


class TestAttributeEvaluation:
    def test_names_of_students(self, db):
        assert evaluate(db, "student@>person.name") == {"alice", "bob"}

    def test_names_of_tas_via_both_chains(self, db):
        grad_chain = evaluate(db, "ta@>grad@>student@>person.name")
        instructor_chain = evaluate(
            db, "ta@>instructor@>teacher@>employee@>person.name"
        )
        assert grad_chain == instructor_chain == {"bob"}

    def test_unset_attributes_skipped(self, db):
        # cs202 has no name set
        assert evaluate(db, "course.name") == {"cs101"}


class TestLinkEvaluation:
    def test_teachers_of_courses_taken(self, db):
        teachers = evaluate(db, "student.take.teacher")
        assert {t.class_name for t in teachers} == {"professor", "ta"}

    def test_maybe_filters_to_subclass(self, db):
        students = evaluate(db, "person<@student")
        assert {s.class_name for s in students} == {"student", "ta"}

    def test_haspart_follows_links(self, db):
        professors = evaluate(db, "department$>professor")
        assert len(professors) == 1

    def test_empty_extent_empty_result(self, db):
        assert evaluate(db, "university$>department") == set()


class TestEvaluateFrom:
    def test_restricting_roots(self, db):
        bob = next(o for o in db.extent("ta"))
        names = evaluate_from(db, "ta@>grad@>student@>person.name", [bob])
        assert names == {"bob"}

    def test_empty_roots(self, db):
        assert evaluate_from(db, "student.take", []) == set()


class TestErrors:
    def test_incomplete_expression_rejected(self, db):
        with pytest.raises(EvaluationError):
            evaluate(db, "ta~name")

    def test_unknown_relationship(self, db):
        with pytest.raises(EvaluationError):
            evaluate(db, "student.ghost")

    def test_wrong_connector_kind(self, db):
        with pytest.raises(EvaluationError):
            evaluate(db, "student$>take")

    def test_attribute_must_be_last(self, db, university_graph):
        from repro.core.ast import ConcretePath

        name_edge = next(
            e for e in university_graph.edges_from("person") if e.name == "name"
        )
        path = ConcretePath.start("person").extend(name_edge)
        # artificially impossible to extend past a primitive: no edges
        # exist from C, so just check evaluation of the valid one works
        assert evaluate(db, path) == {"alice", "bob", "carol"}
