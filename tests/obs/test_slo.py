"""Unit tests for multi-window burn-rate SLO monitoring."""

import pytest

from repro.obs.metrics import MetricsRegistry, labelled
from repro.obs.schema import validate_slo_status
from repro.obs.slo import SLO_STATUS_VERSION, Objective, SLOMonitor
from repro.resilience.faults import FakeClock


def _objective(payload: dict, name: str) -> dict:
    return next(o for o in payload["objectives"] if o["name"] == name)


def _window(objective: dict, window_s: float) -> dict:
    return next(
        w for w in objective["windows"] if w["window_s"] == window_s
    )


class TestObjective:
    def test_target_bounds(self):
        with pytest.raises(ValueError):
            Objective("x", 0.0)
        with pytest.raises(ValueError):
            Objective("x", 1.0)
        with pytest.raises(ValueError):
            Objective("x", 0.99, threshold_ms=0.0)

    def test_availability_badness(self):
        availability = Objective("availability", 0.999)
        assert availability.is_bad(500, 1.0)
        assert availability.is_bad(503, 1.0)
        assert availability.is_bad(429, 1.0)
        assert not availability.is_bad(200, 9999.0)
        assert not availability.is_bad(206, 1.0)
        assert not availability.is_bad(404, 1.0)

    def test_latency_badness(self):
        latency = Objective("latency", 0.99, threshold_ms=250.0)
        assert latency.is_bad(200, 251.0)
        assert not latency.is_bad(200, 250.0)
        assert not latency.is_bad(500, 1.0)

    def test_error_budget(self):
        assert Objective("x", 0.99).error_budget == pytest.approx(0.01)


class TestSLOMonitor:
    def _monitor(self, clock, **overrides):
        defaults = dict(
            availability_target=0.9,
            latency_threshold_ms=100.0,
            latency_target=0.9,
            windows=(60.0, 3600.0),
            bucket_s=5.0,
            clock=clock,
        )
        defaults.update(overrides)
        return SLOMonitor(**defaults)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SLOMonitor(windows=())
        with pytest.raises(ValueError):
            SLOMonitor(windows=(60.0, -1.0))
        with pytest.raises(ValueError):
            SLOMonitor(bucket_s=0.0)
        with pytest.raises(ValueError):
            SLOMonitor(page_burn=2.0, warn_burn=3.0)

    def test_empty_monitor_is_ok_with_zero_burn(self):
        monitor = self._monitor(FakeClock())
        payload = monitor.status()
        assert payload["version"] == SLO_STATUS_VERSION
        assert payload["state"] == "ok"
        for objective in payload["objectives"]:
            for window in objective["windows"]:
                assert window == {
                    "window_s": window["window_s"],
                    "total": 0,
                    "bad": 0,
                    "error_rate": 0.0,
                    "burn_rate": 0.0,
                }
        validate_slo_status(payload)

    def test_all_success_traffic_stays_ok(self):
        clock = FakeClock()
        monitor = self._monitor(clock)
        for _ in range(100):
            monitor.record(200, 5.0)
            clock.advance(0.1)
        payload = monitor.status()
        assert payload["state"] == "ok"
        availability = _objective(payload, "availability")
        assert _window(availability, 60.0)["total"] == 100
        assert _window(availability, 60.0)["burn_rate"] == 0.0
        validate_slo_status(payload)

    def test_sustained_failures_page_on_both_windows(self):
        clock = FakeClock()
        monitor = self._monitor(clock)
        # 50% failure rate against a 10% error budget: burn 5.0 — then
        # crank it: all failures burn at 10.0 > warn 6.0; make them all
        # fail for burn 1/0.1 = 10 > 6 (warn) but < 14.4 (page), so use
        # a tighter budget for the paging case below.
        for _ in range(40):
            monitor.record(500, 5.0)
            clock.advance(0.5)
        payload = monitor.status()
        availability = _objective(payload, "availability")
        fast = _window(availability, 60.0)
        assert fast["bad"] == fast["total"] == 40
        assert fast["burn_rate"] == pytest.approx(10.0)
        assert availability["state"] == "warn"
        validate_slo_status(payload)

    def test_total_failure_pages_with_tight_budget(self):
        clock = FakeClock()
        monitor = self._monitor(clock, availability_target=0.999)
        for _ in range(40):
            monitor.record(503, 5.0)
            clock.advance(0.5)
        payload = monitor.status()
        assert _objective(payload, "availability")["state"] == "page"
        assert payload["state"] == "page"
        validate_slo_status(payload)

    def test_recovered_incident_stops_paging(self):
        clock = FakeClock()
        monitor = self._monitor(clock, availability_target=0.999)
        for _ in range(40):
            monitor.record(500, 5.0)
            clock.advance(0.5)
        assert monitor.status()["state"] == "page"
        # The incident ends; healthy traffic refills the short window.
        clock.advance(70.0)
        for _ in range(40):
            monitor.record(200, 5.0)
            clock.advance(0.5)
        payload = monitor.status()
        availability = _objective(payload, "availability")
        # Long window still remembers the damage...
        assert _window(availability, 3600.0)["bad"] == 40
        # ...but the short window is clean, so no page (multi-window).
        assert _window(availability, 60.0)["bad"] == 0
        assert availability["state"] == "ok"

    def test_latency_objective_counts_slow_answers(self):
        clock = FakeClock()
        monitor = self._monitor(clock, availability_target=0.9)
        for _ in range(10):
            monitor.record(200, 500.0)  # slow but successful
            clock.advance(0.1)
        payload = monitor.status()
        assert _objective(payload, "availability")["state"] == "ok"
        latency = _window(_objective(payload, "latency"), 60.0)
        assert latency["bad"] == 10
        assert latency["burn_rate"] == pytest.approx(10.0)

    def test_buckets_expire_past_longest_window(self):
        clock = FakeClock()
        monitor = self._monitor(clock)
        for _ in range(10):
            monitor.record(500, 5.0)
        clock.advance(4000.0)  # past the 3600s window
        monitor.record(200, 5.0)  # opens a new bucket, triggers prune
        payload = monitor.status()
        long_window = _window(_objective(payload, "availability"), 3600.0)
        assert long_window["total"] == 1
        assert long_window["bad"] == 0
        assert len(monitor._buckets) == 1

    def test_export_gauges_mirrors_payload(self):
        clock = FakeClock()
        monitor = self._monitor(clock)
        for _ in range(10):
            monitor.record(500, 500.0)
            clock.advance(0.1)
        metrics = MetricsRegistry()
        monitor.export_gauges(metrics)
        gauges = metrics.as_dict()["gauges"]
        assert gauges["slo.state"] == 1.0  # warn
        burn = labelled(
            "slo.burn_rate", objective="availability", window="60s"
        )
        assert gauges[burn] == pytest.approx(10.0)
        rate = labelled(
            "slo.error_rate", objective="latency", window="3600s"
        )
        assert gauges[rate] == pytest.approx(1.0)

    def test_repr_mentions_state(self):
        assert "state=ok" in repr(self._monitor(FakeClock()))
