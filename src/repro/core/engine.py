"""The :class:`Disambiguator` facade — the path-expression completion
module of the paper's Figure 1.

Bundles a schema, the path algebra configuration (partial order, E,
caution sets, inheritance criterion), and optional domain knowledge into
one object with a single entry point, :meth:`Disambiguator.complete`:

* complete input expressions are validated and passed through;
* simple incomplete expressions (``s ~ N``) run Algorithm 2 directly;
* general incomplete expressions (multiple ``~``, mixed connectors)
  are delegated to :mod:`repro.core.multi`.
"""

from __future__ import annotations

from repro.algebra.order import DEFAULT_ORDER, PartialOrder
from repro.core.ast import ConcretePath, PathExpression
from repro.core.completion import CompletionResult, CompletionSearch
from repro.core.domain import DomainKnowledge
from repro.core.multi import complete_general
from repro.core.parser import parse_path_expression
from repro.core.stats import TraversalStats
from repro.core.target import ClassTarget, RelationshipTarget, Target
from repro.errors import EvaluationError, NoCompletionError
from repro.model.graph import SchemaGraph
from repro.model.schema import Schema
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - circular at runtime
    from repro.core.explain import Explanation

__all__ = ["Disambiguator"]


class Disambiguator:
    """Completes incomplete path expressions over one schema.

    Parameters
    ----------
    schema:
        The schema to disambiguate against.
    order:
        Better-than partial order; defaults to the paper's Figure 3
        reconstruction.
    e:
        AGG* relaxation parameter (Section 4.4); E=1 reproduces plain
        AGG.
    domain_knowledge:
        Optional :class:`~repro.core.domain.DomainKnowledge`
        (Section 5.2).
    use_caution_sets, apply_inheritance_criterion:
        Ablation switches; both on by default as in the paper.

    Examples
    --------
    >>> from repro.schemas.university import build_university_schema
    >>> engine = Disambiguator(build_university_schema())
    >>> result = engine.complete("ta ~ name")
    >>> len(result.paths)
    2
    """

    def __init__(
        self,
        schema: Schema,
        order: PartialOrder | None = None,
        e: int = 1,
        domain_knowledge: DomainKnowledge | None = None,
        use_caution_sets: bool = True,
        apply_inheritance_criterion: bool = True,
        max_depth: int | None = None,
    ) -> None:
        self.schema = schema
        self.order = order if order is not None else DEFAULT_ORDER
        self.e = e
        self.domain_knowledge = (
            domain_knowledge
            if domain_knowledge is not None
            else DomainKnowledge.none()
        )
        problems = self.domain_knowledge.validate_against(schema)
        if problems:
            raise EvaluationError(
                "domain knowledge does not match schema: "
                + "; ".join(problems)
            )
        self.graph = self.domain_knowledge.restrict(SchemaGraph(schema))
        self._search = CompletionSearch(
            self.graph,
            order=self.order,
            e=e,
            use_caution_sets=use_caution_sets,
            apply_inheritance_criterion=apply_inheritance_criterion,
            max_depth=max_depth,
        )
        self.use_caution_sets = use_caution_sets
        self.apply_inheritance_criterion = apply_inheritance_criterion

    # ------------------------------------------------------------------
    # Completion entry points
    # ------------------------------------------------------------------

    def complete(
        self, expression: str | PathExpression
    ) -> CompletionResult:
        """Complete an expression given as text or AST.

        Returns a :class:`~repro.core.completion.CompletionResult` whose
        ``paths`` are the optimal completions the user is asked to
        approve (paper Figure 1's loop).  For already-complete input the
        result contains exactly that path, validated against the schema.
        """
        if isinstance(expression, str):
            expression = parse_path_expression(expression)
        if expression.is_complete:
            return self._validate_complete(expression)
        if expression.is_simple_incomplete:
            return self._search.run(
                expression.root, RelationshipTarget(expression.last_name)
            )
        general = complete_general(
            self.graph,
            expression,
            order=self.order,
            e=self.e,
            use_caution_sets=self.use_caution_sets,
            apply_inheritance_criterion=self.apply_inheritance_criterion,
        )
        return CompletionResult(
            root=expression.root,
            target_description=f"pattern {expression}",
            paths=general.paths,
            labels=tuple(
                {path.label().key: path.label() for path in general.paths}.values()
            ),
            stats=general.stats,
        )

    def complete_between(self, root: str, target_class: str) -> CompletionResult:
        """Class-to-class completion (the formalization's node target)."""
        return self._search.run(root, ClassTarget(target_class))

    def complete_to_target(self, root: str, target: Target) -> CompletionResult:
        """Completion with an explicit target specification."""
        return self._search.run(root, target)

    def explain(
        self, query_text: str, candidate_text: str
    ) -> "Explanation":
        """Why is ``candidate_text`` (not) an answer to ``query_text``?

        Convenience wrapper over
        :func:`repro.core.explain.explain_candidate` bound to this
        engine's graph, order, and E.
        """
        from repro.core.explain import explain_candidate

        return explain_candidate(
            self.graph,
            query_text,
            candidate_text,
            e=self.e,
            order=self.order,
        )

    def with_e(self, e: int) -> "Disambiguator":
        """A copy of this engine with a different E (for sweeps)."""
        return Disambiguator(
            self.schema,
            order=self.order,
            e=e,
            domain_knowledge=self.domain_knowledge,
            use_caution_sets=self.use_caution_sets,
            apply_inheritance_criterion=self.apply_inheritance_criterion,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _validate_complete(
        self, expression: PathExpression
    ) -> CompletionResult:
        """Resolve a complete expression's steps to schema edges."""
        path = ConcretePath.start(expression.root)
        for step in expression.steps:
            anchor = path.target_class
            if not self.schema.has_relationship(anchor, step.name):
                raise NoCompletionError(
                    f"class {anchor!r} has no relationship {step.name!r} "
                    f"(in {expression})"
                )
            edge = next(
                (
                    candidate
                    for candidate in self.graph.edges_from(anchor)
                    if candidate.name == step.name
                ),
                None,
            )
            if edge is None:
                raise NoCompletionError(
                    f"relationship {anchor}.{step.name} is excluded by "
                    "domain knowledge"
                )
            if edge.connector is not step.connector:
                raise NoCompletionError(
                    f"step {step} uses connector {step.symbol!r} but "
                    f"{anchor}.{step.name} is a {edge.kind.name} "
                    "relationship"
                )
            path = path.extend(edge)
        label = path.label()
        return CompletionResult(
            root=expression.root,
            target_description="(already complete)",
            paths=(path,),
            labels=(label,),
            stats=TraversalStats(),
        )

    def __repr__(self) -> str:
        return (
            f"Disambiguator(schema={self.schema.name!r}, "
            f"order={self.order.name!r}, e={self.e}, "
            f"domain_knowledge={'yes' if not self.domain_knowledge.is_empty else 'no'})"
        )
