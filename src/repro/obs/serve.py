"""A stdlib HTTP scrape endpoint for the metrics registry.

``python -m repro.obs.serve`` starts a :class:`MetricsServer` on
localhost and replays the paper's CUPID workload in a loop, so a
Prometheus instance (or plain ``curl``) can scrape live counters while
the disambiguator works::

    $ python -m repro.obs.serve --port 9464 &
    $ curl -s localhost:9464/metrics | head
    # HELP repro_cache_hits_total repro.obs counter 'cache.hits'
    # TYPE repro_cache_hits_total counter
    ...

Endpoints:

* ``GET /metrics`` — the registry in Prometheus text exposition format
  (``Content-Type: text/plain; version=0.0.4``);
* ``GET /healthz`` — liveness plus occupancy as JSON: how many
  compiled artifacts the process-wide registry holds, each one's
  fingerprint prefix, evolution-lineage depth, and completion-cache
  counters.  A healthy-but-bloated process (runaway schema evolution,
  a cache that never hits) is visible from one curl.

The server is a daemon-threaded ``ThreadingHTTPServer``: scrapes never
block the pipeline, and the pipeline never blocks scrapes (the registry
is internally locked).  Library users embed it directly::

    registry = MetricsRegistry()
    server = MetricsServer(registry, port=0)   # port 0 = ephemeral
    server.start()
    ... with use_metrics(registry): serve traffic ...
    server.stop()
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry, use_metrics
from repro.obs.promtext import render_prometheus

__all__ = ["MetricsServer", "health_snapshot", "main"]


def health_snapshot() -> dict:
    """The ``/healthz`` payload: liveness plus registry occupancy.

    Reads the process-wide compiled-artifact registry (imported lazily
    so the server module stays importable without pulling in the whole
    core) and reports, per artifact, the fingerprint prefix, how many
    evolution steps produced it, and its completion cache's counters.
    """
    from repro.core.compiled import registered_artifacts

    artifacts = []
    for compiled in registered_artifacts():
        artifacts.append(
            {
                "fingerprint": compiled.fingerprint[:12],
                "lineage_depth": len(compiled.lineage),
                "completion_cache": compiled.cache.info(),
            }
        )
    artifacts.sort(key=lambda entry: entry["fingerprint"])
    return {
        "status": "ok",
        "registry": {
            "artifacts": len(artifacts),
            "max_lineage_depth": max(
                (entry["lineage_depth"] for entry in artifacts), default=0
            ),
            "cached_completions": sum(
                entry["completion_cache"]["size"] for entry in artifacts
            ),
            "entries": artifacts,
        },
    }


class _ScrapeHandler(BaseHTTPRequestHandler):
    """Serves /metrics and /healthz from the server's registry."""

    #: Prometheus text exposition content type.
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.split("?")[0] == "/metrics":
            body = render_prometheus(
                self.server.registry,  # type: ignore[attr-defined]
                namespace=self.server.namespace,  # type: ignore[attr-defined]
            ).encode("utf-8")
            self._reply(200, body)
        elif self.path.split("?")[0] == "/healthz":
            body = (
                json.dumps(health_snapshot(), sort_keys=True) + "\n"
            ).encode("utf-8")
            self._reply(200, body, content_type="application/json")
        else:
            self._reply(404, b"not found (try /metrics)\n")

    def _reply(
        self, status: int, body: bytes, content_type: str | None = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type or self.CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # scrapes every few seconds would spam stderr


class MetricsServer:
    """A background Prometheus scrape endpoint over one registry."""

    def __init__(
        self,
        registry: MetricsRegistry | NullMetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "repro",
    ) -> None:
        self.registry = registry
        self.namespace = namespace
        self._httpd = ThreadingHTTPServer((host, port), _ScrapeHandler)
        self._httpd.daemon_threads = True
        self._httpd.registry = registry  # type: ignore[attr-defined]
        self._httpd.namespace = namespace  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound (port 0 resolves on bind)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/metrics"

    @property
    def running(self) -> bool:
        """True while the serving thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the listening socket."""
        return self._closed

    def start(self) -> "MetricsServer":
        if self._closed:
            raise RuntimeError("MetricsServer is closed; construct a new one")
        if self._thread is not None:
            return self  # already serving — start is idempotent
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop serving and release the socket.  Safe to call twice.

        The serve loop is asked to shut down, the listening socket is
        closed, and the daemonized thread is joined with ``timeout`` —
        a scrape handler wedged on a dead client cannot wedge the
        caller (the daemon thread dies with the process regardless).
        """
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            # shutdown() blocks until serve_forever exits, so only call
            # it when the serve loop actually ran.
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def close(self) -> None:
        """Alias of :meth:`stop` for close-style resource management."""
        self.stop()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def main(argv: list[str] | None = None) -> int:
    """Serve /metrics while replaying a builtin workload in a loop."""
    from repro.experiments.harness import run_workload
    from repro.experiments.workload import build_cupid_workload
    from repro.schemas.cupid import build_cupid_schema

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.serve",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--port", type=int, default=9464, help="port to bind (default 9464)"
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default localhost)"
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="pause between workload replays (default 2s)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N replays (default: run until interrupted)",
    )
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    server = MetricsServer(registry, host=args.host, port=args.port)
    server.start()
    print(f"serving Prometheus metrics at {server.url}")

    schema = build_cupid_schema()
    oracle = build_cupid_workload()
    replays = 0
    try:
        with use_metrics(registry):
            while args.iterations <= 0 or replays < args.iterations:
                run_workload(schema, oracle, e=1, continue_on_error=True)
                registry.counter("serve.replays").inc()
                replays += 1
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(f"stopped after {replays} workload replay(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
