"""Tests for the relationship kinds."""

from repro.model.kinds import KIND_BY_SYMBOL, RelationshipKind


class TestInverses:
    def test_isa_maybe(self):
        assert RelationshipKind.ISA.inverse is RelationshipKind.MAY_BE
        assert RelationshipKind.MAY_BE.inverse is RelationshipKind.ISA

    def test_part_whole(self):
        assert RelationshipKind.HAS_PART.inverse is RelationshipKind.IS_PART_OF
        assert RelationshipKind.IS_PART_OF.inverse is RelationshipKind.HAS_PART

    def test_association_is_self_inverse(self):
        kind = RelationshipKind.IS_ASSOCIATED_WITH
        assert kind.inverse is kind

    def test_inverse_is_involutive(self):
        for kind in RelationshipKind:
            assert kind.inverse.inverse is kind


class TestSemanticLength:
    def test_taxonomic_kinds_are_free(self):
        assert RelationshipKind.ISA.semantic_length == 0
        assert RelationshipKind.MAY_BE.semantic_length == 0

    def test_other_kinds_cost_one(self):
        assert RelationshipKind.HAS_PART.semantic_length == 1
        assert RelationshipKind.IS_PART_OF.semantic_length == 1
        assert RelationshipKind.IS_ASSOCIATED_WITH.semantic_length == 1


class TestClassification:
    def test_taxonomic_flags(self):
        taxonomic = {k for k in RelationshipKind if k.is_taxonomic}
        assert taxonomic == {RelationshipKind.ISA, RelationshipKind.MAY_BE}

    def test_structural_flags(self):
        structural = {k for k in RelationshipKind if k.is_structural}
        assert structural == {
            RelationshipKind.HAS_PART,
            RelationshipKind.IS_PART_OF,
        }


class TestSymbols:
    def test_symbols_match_the_paper(self):
        assert RelationshipKind.ISA.symbol == "@>"
        assert RelationshipKind.MAY_BE.symbol == "<@"
        assert RelationshipKind.HAS_PART.symbol == "$>"
        assert RelationshipKind.IS_PART_OF.symbol == "<$"
        assert RelationshipKind.IS_ASSOCIATED_WITH.symbol == "."

    def test_lookup_by_symbol(self):
        for kind in RelationshipKind:
            assert KIND_BY_SYMBOL[kind.symbol] is kind
            assert RelationshipKind.from_symbol(kind.symbol) is kind
