"""Tests for the Prometheus exposition renderer and scrape server."""

import json
import math
import urllib.error
import urllib.request

from repro.core.compiled import compile_schema, invalidate
from repro.obs.metrics import RESERVOIR_SIZE, MetricsRegistry
from repro.schemas.university import build_university_schema
from repro.obs.promtext import (
    DEFAULT_BUCKET_BOUNDS,
    render_prometheus,
    write_prometheus,
)
from repro.obs.serve import MetricsServer


def _parse_exposition(text: str):
    """A minimal pure-stdlib parser for exposition format 0.0.4.

    Returns ``(types, samples)``: family name -> declared type, and
    sample name -> list of ``(labels_dict, value)``.
    """
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE"):
            _, _, family, kind = line.split(maxsplit=3)
            types[family] = kind
            continue
        name_part, value_part = line.rsplit(" ", 1)
        labels: dict = {}
        if "{" in name_part:
            name, raw = name_part[:-1].split("{", 1)
            for pair in raw.split(","):
                key, raw_value = pair.split("=", 1)
                labels[key] = raw_value.strip('"')
        else:
            name = name_part
        value = float(value_part) if value_part != "+Inf" else math.inf
        samples.setdefault(name, []).append((labels, value))
    return types, samples


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(7)
    registry.counter("budget.trips").inc(2)
    registry.gauge("cache.hit_ratio").set(0.875)
    latency = registry.histogram("query.elapsed_seconds")
    for value in [0.0001, 0.004, 0.004, 0.2, 3.0]:
        latency.observe(value)
    return registry


class TestRenderRoundTrip:
    def test_counts_match_as_dict_exactly(self):
        registry = _populated_registry()
        types, samples = _parse_exposition(render_prometheus(registry))
        summary = registry.as_dict()

        for name, value in summary["counters"].items():
            family = "repro_" + name.replace(".", "_") + "_total"
            assert types[family] == "counter"
            assert samples[family] == [({}, value)]
        for name, value in summary["gauges"].items():
            family = "repro_" + name.replace(".", "_")
            assert types[family] == "gauge"
            assert samples[family] == [({}, value)]
        for name, snapshot in summary["histograms"].items():
            family = "repro_" + name.replace(".", "_")
            assert types[family] == "histogram"
            assert samples[family + "_count"] == [({}, snapshot["count"])]
            assert samples[family + "_sum"] == [({}, snapshot["sum"])]

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = _populated_registry()
        _, samples = _parse_exposition(render_prometheus(registry))
        buckets = samples["repro_query_elapsed_seconds_bucket"]
        assert all(set(labels) == {"le"} for labels, _ in buckets)
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)  # cumulative => monotone
        last_labels, last_count = buckets[-1]
        assert last_labels["le"] == "+Inf"
        assert last_count == 5  # exactly the observation count
        # bounds parse back as increasing floats (the +Inf label aside)
        bounds = [float(labels["le"]) for labels, _ in buckets[:-1]]
        assert bounds == sorted(bounds)

    def test_bucket_counts_are_exact_while_unsaturated(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        values = [0.5, 1.0, 2.0, 7.0, 7.0, 1000.0]
        for value in values:
            histogram.observe(value)
        assert len(values) < RESERVOIR_SIZE
        _, samples = _parse_exposition(render_prometheus(registry))
        for labels, count in samples["repro_h_bucket"]:
            bound = (
                math.inf if labels["le"] == "+Inf" else float(labels["le"])
            )
            assert count == sum(1 for v in values if v <= bound)

    def test_names_are_sanitized_to_prometheus_grammar(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-with~chars").inc()
        text = render_prometheus(registry)
        types, samples = _parse_exposition(text)
        assert "repro_weird_name_with_chars_total" in types
        import re

        for family in samples:
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", family)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_write_prometheus_to_file(self, tmp_path):
        target = tmp_path / "metrics.prom"
        count = write_prometheus(_populated_registry(), target)
        text = target.read_text()
        assert count == len(text.splitlines()) > 0
        assert "# TYPE repro_cache_hits_total counter" in text

    def test_default_bounds_are_sorted_and_finite(self):
        assert list(DEFAULT_BUCKET_BOUNDS) == sorted(DEFAULT_BUCKET_BOUNDS)
        assert all(math.isfinite(bound) for bound in DEFAULT_BUCKET_BOUNDS)


class TestMetricsServer:
    def test_scrape_matches_direct_render(self):
        registry = _populated_registry()
        with MetricsServer(registry, port=0) as server:
            with urllib.request.urlopen(server.url, timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = response.read().decode("utf-8")
        assert body == render_prometheus(registry)

    def test_healthz_and_404(self):
        registry = MetricsRegistry()
        # Start from an empty artifact registry so the snapshot holds
        # exactly what this test compiles, whatever ran before it.
        invalidate()
        compiled = compile_schema(build_university_schema())
        compiled.complete_simple("ta", "name")
        with MetricsServer(registry, port=0) as server:
            host, port = server.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=10
            ) as response:
                assert response.headers["Content-Type"] == "application/json"
                payload = json.loads(response.read())
            assert payload["status"] == "ok"
            registry_info = payload["registry"]
            assert registry_info["artifacts"] >= 1
            assert registry_info["artifacts"] == len(registry_info["entries"])
            ours = [
                entry
                for entry in registry_info["entries"]
                if entry["fingerprint"] == compiled.fingerprint[:12]
            ]
            assert len(ours) == 1
            assert ours[0]["lineage_depth"] == len(compiled.lineage)
            assert ours[0]["completion_cache"]["size"] == len(compiled.cache)
            assert registry_info["cached_completions"] >= 1
            assert registry_info["max_lineage_depth"] >= 0
            try:
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=10
                )
                raise AssertionError("expected HTTP 404")
            except urllib.error.HTTPError as error:
                assert error.code == 404

    def test_scrape_sees_live_updates(self):
        registry = MetricsRegistry()
        with MetricsServer(registry, port=0) as server:
            registry.counter("ticks").inc()
            with urllib.request.urlopen(server.url, timeout=10) as response:
                first = response.read().decode()
            registry.counter("ticks").inc(4)
            with urllib.request.urlopen(server.url, timeout=10) as response:
                second = response.read().decode()
        assert "repro_ticks_total 1" in first
        assert "repro_ticks_total 5" in second
