"""Tests for schema structural analysis."""

from repro.model.analysis import (
    isa_depth_of,
    profile_schema,
    suggest_hub_exclusions,
)
from repro.schemas.cupid import AUXILIARY_CLASSES


class TestProfile:
    def test_university_profile(self, university):
        profile = profile_schema(university)
        assert profile.user_classes == 12
        assert profile.relationships == 33
        assert profile.max_isa_depth == 4  # ta -> instructor -> teacher
        # -> employee -> person
        assert profile.max_part_depth == 2  # university $> department
        # $> professor

    def test_kind_histogram_sums_to_relationship_count(self, university):
        profile = profile_schema(university)
        assert sum(count for _, count in profile.kind_histogram) == (
            university.relationship_count
        )

    def test_cupid_profile_matches_design_claims(self, cupid):
        profile = profile_schema(cupid)
        assert profile.user_classes == 92
        assert profile.relationships == 364
        assert profile.max_part_depth >= 7  # experiment..stomata chain
        by_kind = dict(profile.kind_histogram)
        assert by_kind["$>"] > by_kind["@>"]

    def test_hubs_are_reported_by_degree(self, cupid):
        profile = profile_schema(cupid, hub_count=8)
        hub_names = [name for name, _ in profile.hub_classes]
        degrees = [degree for _, degree in profile.hub_classes]
        assert degrees == sorted(degrees, reverse=True)
        assert "simulation" in hub_names  # the part-tree root is a hub

    def test_render(self, university):
        text = profile_schema(university).render()
        assert "user classes" in text
        assert "kind mix" in text


class TestHubSuggestions:
    def test_cupid_auxiliary_classes_are_suggested(self, cupid):
        suggestions = suggest_hub_exclusions(cupid, degree_threshold=8)
        for hub in AUXILIARY_CLASSES:
            assert hub in suggestions

    def test_structural_classes_are_not_suggested(self, cupid):
        suggestions = suggest_hub_exclusions(cupid, degree_threshold=8)
        # the part-tree spine has Has-Part structure -> never auxiliary
        assert "simulation" not in suggestions
        assert "crop" not in suggestions

    def test_university_has_no_hub_candidates(self, university):
        assert suggest_hub_exclusions(university, degree_threshold=8) == []


class TestIsaDepth:
    def test_depths(self, university):
        assert isa_depth_of(university, "person") == 0
        assert isa_depth_of(university, "student") == 1
        assert isa_depth_of(university, "ta") == 6  # all six ancestors
