"""Tests for the second-domain (hospital) workload — the paper's §7
generalization check."""

import pytest

from repro.core.engine import Disambiguator
from repro.experiments.harness import run_workload, sweep_e
from repro.experiments.hospital_workload import (
    build_hospital_workload,
    hospital_domain_knowledge,
)
from repro.schemas.hospital import build_hospital_schema


@pytest.fixture(scope="module")
def hospital():
    return build_hospital_schema()


@pytest.fixture(scope="module")
def oracle():
    return build_hospital_workload()


class TestSchema:
    def test_size_and_validity(self, hospital):
        assert hospital.user_class_count == 29
        assert hospital.validate() == []

    def test_diamond_inheritance(self, hospital):
        from repro.model.inheritance import ancestors

        assert set(hospital.isa_parents("chief_resident")) == {
            "resident",
            "administrator",
        }
        assert "person" in ancestors(hospital, "chief_resident")

    def test_hub_is_detectable(self, hospital):
        from repro.model.analysis import suggest_hub_exclusions

        assert "code_registry" in suggest_hub_exclusions(
            hospital, degree_threshold=8
        )


class TestIntentValidity:
    def test_intents_resolve(self, hospital, oracle):
        engine = Disambiguator(hospital)
        for query in oracle:
            for text in query.intended + query.also_plausible:
                assert engine.complete(text).expressions == [text]


class TestEffectiveness:
    def test_perfect_operating_point_at_e1(self, hospital, oracle):
        outcomes = run_workload(hospital, oracle, e=1)
        for outcome in outcomes:
            assert outcome.recall == 1.0, outcome.query.query_id
            assert outcome.precision == 1.0, outcome.query.query_id

    def test_precision_declines_with_e(self, hospital, oracle):
        points = sweep_e(hospital, oracle, e_values=(1, 2))
        assert points[0].average_precision == 1.0
        assert points[1].average_precision < 1.0
        assert points[1].average_recall == 1.0  # recall stays perfect

    def test_domain_knowledge_improves_precision(self, hospital, oracle):
        plain = sweep_e(hospital, oracle, e_values=(2,))
        with_dk = sweep_e(
            hospital,
            oracle,
            e_values=(2,),
            domain_knowledge=hospital_domain_knowledge(),
        )
        assert (
            with_dk[0].average_precision > plain[0].average_precision
        )
        assert with_dk[0].average_recall == plain[0].average_recall

    def test_attribute_query_is_connector_stable(self, hospital):
        """ward ~ name stays a singleton at every E — the connector
        filter, not the length window, is doing the work."""
        for e in (1, 2, 3):
            result = Disambiguator(hospital, e=e).complete("ward ~ name")
            assert result.expressions == ["ward.name"]
