"""Object instances — the database underneath a schema.

Completed path expressions must be *evaluable* (the paper's Figure 1
feeds them to a path-expression evaluator), so the substrate includes a
small in-memory object store:

* objects belong to exactly one *most-specific* class and are implicitly
  instances of all its Isa ancestors (inclusion semantics);
* relationship links are stored per declaring relationship and are kept
  symmetric with their inverse automatically;
* attribute values (associations into primitive classes) are plain
  Python values.

The evaluator (:mod:`repro.query.evaluator`) traverses these links;
Isa steps keep the object, May-Be steps filter to instances of the
subclass.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import defaultdict
from collections.abc import Iterable

from repro.errors import (
    EvaluationError,
    InstanceError,
    UnknownObjectError,
)
from repro.model.inheritance import ancestors, is_subclass_of
from repro.model.kinds import RelationshipKind
from repro.model.relationships import Relationship
from repro.model.schema import Schema

__all__ = ["DBObject", "Database"]


@dataclasses.dataclass(frozen=True)
class DBObject:
    """A stored object: an opaque id plus its most-specific class."""

    oid: int
    class_name: str

    def __str__(self) -> str:
        return f"{self.class_name}#{self.oid}"


class Database:
    """An in-memory object database conforming to a schema.

    Parameters
    ----------
    schema:
        The schema instances must conform to.

    Examples
    --------
    >>> from repro.schemas.university import build_university_schema
    >>> db = Database(build_university_schema())
    >>> alice = db.create("student")
    >>> db.set_attribute(alice, "name", "alice")  # inherited from person
    >>> db.get_attribute(alice, "name")
    'alice'
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._next_oid = itertools.count(1)
        self._objects: dict[int, DBObject] = {}
        self._extents: dict[str, set[int]] = defaultdict(set)
        # links[(source_class, rel_name)][oid] -> set of target oids
        self._links: dict[tuple[str, str], dict[int, set[int]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._attributes: dict[tuple[int, str], object] = {}

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def create(self, class_name: str) -> DBObject:
        """Create an object whose most-specific class is ``class_name``."""
        cls = self.schema.get_class(class_name)
        if cls.primitive:
            raise InstanceError(
                f"cannot instantiate primitive class {class_name!r}"
            )
        obj = DBObject(next(self._next_oid), class_name)
        self._objects[obj.oid] = obj
        self._extents[class_name].add(obj.oid)
        for ancestor in ancestors(self.schema, class_name):
            self._extents[ancestor].add(obj.oid)
        return obj

    def create_many(self, class_name: str, count: int) -> list[DBObject]:
        """Create ``count`` objects of the given class."""
        return [self.create(class_name) for _ in range(count)]

    def get(self, oid: int) -> DBObject:
        """Fetch an object by id."""
        try:
            return self._objects[oid]
        except KeyError:
            raise UnknownObjectError(oid) from None

    def extent(self, class_name: str) -> set[DBObject]:
        """All instances of a class, subclass instances included."""
        self.schema.get_class(class_name)
        return {self._objects[oid] for oid in self._extents[class_name]}

    def is_instance(self, obj: DBObject, class_name: str) -> bool:
        """True if ``obj`` is a (possibly inherited) instance."""
        return obj.oid in self._extents[class_name]

    def __len__(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------

    def _resolve_relationship(
        self, obj: DBObject, name: str
    ) -> Relationship:
        """Resolve a relationship name on the object's class, inherited
        relationships included."""
        from repro.model.inheritance import resolve_inherited

        rel = resolve_inherited(self.schema, obj.class_name, name)
        if rel is None:
            raise EvaluationError(
                f"class {obj.class_name!r} has no relationship {name!r} "
                "(own or inherited)"
            )
        return rel

    def link(self, source: DBObject, name: str, target: DBObject) -> None:
        """Add a relationship link and its inverse link (when declared).

        ``name`` may be inherited.  Both endpoints must be instances of
        the declaring relationship's classes.
        """
        rel = self._resolve_relationship(source, name)
        if rel.kind.is_taxonomic:
            raise InstanceError(
                "Isa/May-Be relationships are class-level; objects are not "
                "linked through them"
            )
        if not self.is_instance(source, rel.source):
            raise InstanceError(f"{source} is not a {rel.source}")
        if not is_subclass_of(self.schema, target.class_name, rel.target):
            raise InstanceError(f"{target} is not a {rel.target}")
        self._links[rel.key][source.oid].add(target.oid)
        inverse = next(
            (
                other
                for other in self.schema.relationships_from(rel.target)
                if other.is_inverse_of(rel)
            ),
            None,
        )
        if inverse is not None:
            self._links[inverse.key][target.oid].add(source.oid)

    def linked(self, source: DBObject, name: str) -> set[DBObject]:
        """Objects reachable from ``source`` via the named relationship.

        Resolution walks the declaring class chain (inheritance); links
        stored on any ancestor's declaration are found.
        """
        rel = self._resolve_relationship(source, name)
        oids = self._links[rel.key].get(source.oid, set())
        return {self._objects[oid] for oid in oids}

    def link_count(self) -> int:
        """Total number of stored directed links."""
        return sum(
            len(targets)
            for by_source in self._links.values()
            for targets in by_source.values()
        )

    # ------------------------------------------------------------------
    # Iteration (used by persistence and analysis)
    # ------------------------------------------------------------------

    def objects(self) -> list[DBObject]:
        """All stored objects, by ascending id."""
        return [self._objects[oid] for oid in sorted(self._objects)]

    def iter_links(self) -> Iterable[tuple[tuple[str, str], int, int]]:
        """Yield ``(relationship key, source oid, target oid)`` for every
        stored directed link (inverse directions included)."""
        for key in sorted(self._links):
            by_source = self._links[key]
            for source_oid in sorted(by_source):
                for target_oid in sorted(by_source[source_oid]):
                    yield key, source_oid, target_oid

    def iter_attributes(self) -> Iterable[tuple[int, str, str, object]]:
        """Yield ``(oid, declaring class, attribute name, value)``."""
        for (oid, qualified), value in sorted(
            self._attributes.items(), key=lambda item: item[0]
        ):
            owner, _, name = qualified.partition(".")
            yield oid, owner, name, value

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------

    def set_attribute(self, obj: DBObject, name: str, value: object) -> None:
        """Set an attribute (association into a primitive class)."""
        rel = self._resolve_relationship(obj, name)
        if not self.schema.get_class(rel.target).primitive:
            raise InstanceError(
                f"{rel.name!r} targets class {rel.target!r}; use link()"
            )
        _check_primitive_value(rel.target, value, name)
        self._attributes[(obj.oid, rel.key[0] + "." + rel.key[1])] = value

    def get_attribute(self, obj: DBObject, name: str) -> object:
        """Read an attribute value (None if unset)."""
        rel = self._resolve_relationship(obj, name)
        return self._attributes.get(
            (obj.oid, rel.key[0] + "." + rel.key[1])
        )

    def attribute_values(
        self, objects: Iterable[DBObject], name: str
    ) -> set[object]:
        """Attribute values over a set of objects, unset ones skipped."""
        values = set()
        for obj in objects:
            value = self.get_attribute(obj, name)
            if value is not None:
                values.add(value)
        return values


def _check_primitive_value(primitive: str, value: object, name: str) -> None:
    expected: tuple[type, ...] = {
        "I": (int,),
        "R": (int, float),
        "C": (str,),
        "B": (bool,),
    }[primitive]
    # bool is an int subclass; keep I strictly integral but non-boolean.
    if primitive == "I" and isinstance(value, bool):
        raise InstanceError(f"attribute {name!r} expects an integer")
    if not isinstance(value, expected):
        raise InstanceError(
            f"attribute {name!r} expects {primitive}, got {type(value).__name__}"
        )
