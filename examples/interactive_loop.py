"""The Figure 1 loop, interactively.

Populates the university database and drops into a tiny REPL: type an
incomplete (or complete) path expression, pick the completions you
mean, and see the evaluated answer.  The session records rejections —
the raw material for the user-feedback learning the paper's Section 7
proposes — and prints the tally on exit.

Run with::

    python examples/interactive_loop.py            # interactive
    echo "ta ~ name" | python examples/interactive_loop.py   # scripted
"""

from __future__ import annotations

import sys

from repro import CompletionSession, Database, build_university_schema
from repro.core.printer import format_candidates
from repro.query.session import RecordingChooser, approve_all


def populate(db: Database) -> None:
    art = db.create("department")
    db.set_attribute(art, "name", "arts")
    cs = db.create("department")
    db.set_attribute(cs, "name", "cs")

    carol = db.create("professor")
    db.set_attribute(carol, "name", "carol")
    db.link(art, "professor", carol)

    bob = db.create("ta")
    db.set_attribute(bob, "name", "bob")
    db.set_attribute(bob, "ssn", 4242)

    painting = db.create("course")
    db.set_attribute(painting, "name", "painting-101")
    db.link(carol, "teach", painting)
    db.link(bob, "take", painting)
    db.link(bob, "department", cs)


def interactive_chooser(candidates):
    """Ask on stdin which completions to keep ('a' = all)."""
    if len(candidates) <= 1:
        return list(candidates)
    print(format_candidates(candidates))
    try:
        answer = input("approve which? (numbers / 'a' for all) > ").strip()
    except EOFError:
        answer = "a"
    if answer.lower() in ("", "a", "all"):
        return list(candidates)
    chosen = []
    for token in answer.replace(",", " ").split():
        if token.isdigit() and 1 <= int(token) <= len(candidates):
            chosen.append(candidates[int(token) - 1])
    return chosen


def main() -> None:
    schema = build_university_schema()
    db = Database(schema)
    populate(db)

    interactive = sys.stdin.isatty()
    chooser = RecordingChooser(
        interactive_chooser if interactive else approve_all
    )
    session = CompletionSession(db, chooser=chooser)

    print(f"{schema.summary()}")
    print("Ask with incomplete path expressions, e.g.  ta ~ name")
    print("(empty line or Ctrl-D quits)\n")

    for line in sys.stdin if not interactive else iter(
        lambda: input("query > "), ""
    ):
        text = line.strip()
        if not text:
            break
        try:
            interaction = session.ask(text)
        except Exception as error:  # surface, keep the loop alive
            print(f"  ! {error}")
            continue
        if not interaction.candidates:
            print("  (no completion consistent with that)")
            continue
        for expression, values in interaction.results:
            rendered = sorted(map(str, values)) if values else "(empty)"
            print(f"  {expression} = {rendered}")

    rejected = chooser.rejection_counts()
    if rejected:
        print("\nClasses in rejected completions (learning signal):")
        for name, count in sorted(rejected.items(), key=lambda kv: -kv[1]):
            print(f"  {name}: {count}")


if __name__ == "__main__":
    main()
