"""Query substrate: the evaluator, a tiny query language, and the
interactive completion loop of the paper's Figure 1."""

from repro.query.evaluator import evaluate, evaluate_from
from repro.query.fox import FoxQuery, FoxRow, parse_fox, run_fox
from repro.query.language import Query, QueryResult, parse_query, run_query
from repro.query.session import (
    CompletionSession,
    Interaction,
    RecordingChooser,
    approve_all,
    approve_first,
)

__all__ = [
    "CompletionSession",
    "FoxQuery",
    "FoxRow",
    "Interaction",
    "Query",
    "QueryResult",
    "RecordingChooser",
    "approve_all",
    "approve_first",
    "evaluate",
    "evaluate_from",
    "parse_fox",
    "parse_query",
    "run_fox",
    "run_query",
]
