"""Smoke test for the all-experiments runner (wiring only — the heavy
sweeps are exercised by the benchmarks)."""

import io
import types

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.figure5 import Figure5Result
from repro.experiments.harness import SweepPoint


class TestRunnerWiring:
    def test_run_all_streams_every_section(self, monkeypatch):
        """Patch the heavy experiment functions with stubs and check the
        report skeleton renders every section in order."""
        point = SweepPoint(
            e=1,
            average_recall=0.9,
            average_precision=1.0,
            average_returned=1.4,
            outcomes=(),
        )

        monkeypatch.setattr(
            runner_module,
            "run_figure5",
            lambda schema, oracle, e_values, **kwargs: Figure5Result(
                points=(point,)
            ),
        )
        monkeypatch.setattr(
            runner_module, "render_figure5", lambda result: "[stub figure5]"
        )
        monkeypatch.setattr(
            runner_module,
            "run_figure6",
            lambda *args, **kwargs: types.SimpleNamespace(
                without_dk=(point,), with_dk=(point,)
            ),
        )
        monkeypatch.setattr(
            runner_module, "render_figure6", lambda result: "[stub figure6]"
        )
        monkeypatch.setattr(
            runner_module,
            "run_figure7",
            lambda *a, **k: types.SimpleNamespace(outcomes=()),
        )
        monkeypatch.setattr(
            runner_module, "render_figure7", lambda result: "[stub figure7]"
        )
        monkeypatch.setattr(
            runner_module, "run_intext_stats", lambda *a, **k: None
        )
        monkeypatch.setattr(
            runner_module,
            "render_intext_stats",
            lambda stats: "[stub intext]",
        )
        monkeypatch.setattr(
            runner_module, "run_order_ablation", lambda *a, **k: []
        )
        monkeypatch.setattr(
            runner_module, "run_caution_ablation", lambda *a, **k: []
        )
        monkeypatch.setattr(
            runner_module, "run_exhaustive_comparison", lambda *a, **k: []
        )

        out = io.StringIO()
        runner_module.run_all(quick=True, out=out)
        report = out.getvalue()
        for marker in (
            "Schema under test",
            "[stub figure5]",
            "[stub figure6]",
            "[stub figure7]",
            "[stub intext]",
            "ta ~ name ->",
            "Ablation A1",
            "Ablation A2",
            "Ablation A4",
            "Failures",
            "none — every section and query completed",
            "total experiment time",
        ):
            assert marker in report

    def test_main_rejects_unknown_flags(self):
        with pytest.raises(SystemExit):
            runner_module.main(["--bogus"])
