"""A bundled stdlib client for the serving tier, with retries.

:class:`ServeClient` speaks the tier's JSON protocol over
:mod:`http.client` and layers the shared
:class:`~repro.resilience.retry.RetryPolicy` on top: connection
failures and the tier's *transient* answers — ``429`` (shed) and
``503`` (draining or injected fault) — are retried with jittered
exponential backoff, and a server-supplied ``Retry-After`` header
overrides the computed delay (the server knows its own queue better
than our backoff curve does).  Definitive answers (``200``, ``206``,
``4xx`` protocol errors) are returned immediately.

Pass ``policy=RetryPolicy.none()`` to observe raw shed/drain responses
(the admission tests do), or a seeded policy for deterministic backoff.
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Callable, Mapping

from repro.errors import ReproError
from repro.resilience.retry import RetryExhaustedError, RetryPolicy

__all__ = ["ServeClient", "ServerResponse", "TransientServerError"]

#: Statuses worth retrying: the server explicitly said "come back".
TRANSIENT_STATUSES = frozenset({429, 503})


class ServerResponse:
    """One decoded server answer: status, headers, parsed JSON body."""

    def __init__(
        self, status: int, headers: Mapping[str, str], body: bytes
    ) -> None:
        self.status = status
        self.headers = {key.lower(): value for key, value in headers.items()}
        self.body = body

    @property
    def json(self) -> dict:
        if not self.body:
            return {}
        return json.loads(self.body.decode("utf-8"))

    @property
    def retry_after(self) -> float | None:
        raw = self.headers.get("retry-after")
        if raw is None:
            return None
        try:
            return max(0.0, float(raw))
        except ValueError:
            return None

    @property
    def ok(self) -> bool:
        """True for definitive success, partial (206) included."""
        return self.status in (200, 206)


class TransientServerError(ReproError):
    """A retryable server answer (shed, draining, injected fault).

    Carries the server's ``Retry-After`` hint as ``retry_after`` —
    :meth:`RetryPolicy.call <repro.resilience.retry.RetryPolicy.call>`
    honours that attribute over its own computed backoff.
    """

    def __init__(self, response: ServerResponse) -> None:
        detail = ""
        try:
            detail = response.json.get("error", "")
        except ValueError:  # pragma: no cover - non-JSON transient body
            pass
        super().__init__(
            f"transient server response {response.status}"
            + (f": {detail}" if detail else "")
        )
        self.response = response
        self.status = response.status
        self.retry_after = response.retry_after


class ServeClient:
    """A small synchronous client for one serving-tier address."""

    def __init__(
        self,
        host: str,
        port: int,
        policy: RetryPolicy | None = None,
        timeout: float = 30.0,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy if policy is not None else RetryPolicy()
        self.timeout = timeout
        self._sleep = sleep

    # -- endpoints -----------------------------------------------------

    def complete(
        self,
        expression: str,
        tenant: str | None = None,
        e: int = 1,
        deadline_ms: float | None = None,
        max_nodes: int | None = None,
    ) -> ServerResponse:
        """``POST /v1/complete`` with optional budget headers."""
        payload: dict = {"expression": expression, "e": e}
        if tenant is not None:
            payload["tenant"] = tenant
        headers = {}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        if max_nodes is not None:
            headers["X-Max-Nodes"] = str(max_nodes)
        return self._retrying_request(
            "POST", "/v1/complete", payload, headers
        )

    def query(
        self,
        text: str,
        tenant: str | None = None,
        jobs: int = 1,
        deadline_ms: float | None = None,
    ) -> ServerResponse:
        """``POST /v1/query`` against a tenant with a database."""
        payload: dict = {"query": text, "jobs": jobs}
        if tenant is not None:
            payload["tenant"] = tenant
        headers = {}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        return self._retrying_request("POST", "/v1/query", payload, headers)

    def schemas(self) -> ServerResponse:
        return self._retrying_request("GET", "/v1/schemas")

    def healthz(self) -> ServerResponse:
        return self._retrying_request("GET", "/healthz")

    def debug(self) -> ServerResponse:
        """The ``GET /v1/debug`` ops snapshot (SLO, sampler, residency)."""
        return self._retrying_request("GET", "/v1/debug")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``GET /metrics``."""
        response = self.request("GET", "/metrics")
        return response.body.decode("utf-8")

    # -- transport -----------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> ServerResponse:
        """One raw request-response exchange, no retries."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            send_headers = dict(headers or {})
            if payload is not None:
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                send_headers.setdefault("Content-Type", "application/json")
            connection.request(method, path, body=body, headers=send_headers)
            raw = connection.getresponse()
            data = raw.read()
            return ServerResponse(raw.status, dict(raw.getheaders()), data)
        finally:
            connection.close()

    def _retrying_request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> ServerResponse:
        """The raw exchange under the retry policy.

        Transport errors (refused, reset, timeout) and transient
        statuses retry with backoff; the server's ``Retry-After``
        overrides the computed delay.  Definitive responses — including
        error statuses like ``400``/``404`` — return as-is; mapping
        them to exceptions is the caller's policy, not the client's.
        When retries run out on a *transient status*, the last ``429``/
        ``503`` response is returned (so callers and tests can inspect
        the shed/drain answer); exhausted *transport* failures raise
        :class:`~repro.resilience.retry.RetryExhaustedError` with its
        structured surface filled in — ``response``, ``status``, and
        ``retry_after`` carry the last *server* answer observed across
        the attempts (``None`` if no attempt ever reached the server),
        so a caller deciding when to come back does not have to parse
        the exception message.
        """
        last_transient: list[ServerResponse] = []

        def attempt() -> ServerResponse:
            response = self.request(method, path, payload, headers)
            if response.status in TRANSIENT_STATUSES:
                last_transient[:] = [response]
                raise TransientServerError(response)
            return response

        kwargs: dict = {
            "retry_on": (TransientServerError, ConnectionError, OSError)
        }
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        try:
            return self.policy.call(attempt, **kwargs)
        except RetryExhaustedError as error:
            if isinstance(error.last, TransientServerError):
                return error.last.response
            if last_transient:
                response = last_transient[0]
                error.response = response
                error.status = response.status
                error.retry_after = response.retry_after
            raise
