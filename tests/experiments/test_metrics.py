"""Tests for recall/precision metrics."""

import hypothesis.strategies as st
from hypothesis import given

from repro.experiments.metrics import average, precision, recall


class TestRecall:
    def test_perfect(self):
        assert recall({"a", "b"}, {"a", "b", "c"}) == 1.0

    def test_half(self):
        assert recall({"a", "b"}, {"a"}) == 0.5

    def test_zero(self):
        assert recall({"a"}, {"b"}) == 0.0

    def test_empty_intent_is_vacuously_perfect(self):
        assert recall(set(), {"a"}) == 1.0


class TestPrecision:
    def test_perfect(self):
        assert precision({"a", "b", "c"}, {"a", "b"}) == 1.0

    def test_half(self):
        assert precision({"a"}, {"a", "b"}) == 0.5

    def test_empty_answer_is_vacuously_clean(self):
        assert precision({"a"}, set()) == 1.0


class TestProperties:
    strings = st.sets(st.sampled_from(list("abcdefgh")))

    @given(strings, strings)
    def test_bounds(self, intent, returned):
        assert 0.0 <= recall(intent, returned) <= 1.0
        assert 0.0 <= precision(intent, returned) <= 1.0

    @given(strings)
    def test_identity_sets_are_perfect(self, items):
        assert recall(items, items) == 1.0
        assert precision(items, items) == 1.0

    @given(strings, strings)
    def test_symmetry_between_the_two_metrics(self, intent, returned):
        """recall(U, S) == precision(S, U) whenever both denominators
        are nonempty (|U∩S| is symmetric)."""
        if intent and returned:
            assert recall(intent, returned) == precision(returned, intent)


class TestAverage:
    def test_plain(self):
        assert average([1.0, 0.0]) == 0.5

    def test_empty(self):
        assert average([]) == 0.0
